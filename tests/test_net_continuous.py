"""Continuous queries: firing semantics and trace context."""

import pytest

from repro.net import UpdateMessage
from repro.obs.tracing import (
    TRACER,
    TraceContext,
    disable_tracing,
    enable_tracing,
)

from tests.conftest import OAKLAND, SHADYSIDE

OAK_QUERY = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
             "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
             "/block[@id='1']/parkingSpace[available='yes']")

OAK_SPACE_1 = OAKLAND + (("block", "1"), ("parkingSpace", "1"))
SHADY_SPACE_1 = SHADYSIDE + (("block", "1"), ("parkingSpace", "1"))


def _update(cluster, space, **values):
    reply = cluster.network.request(
        "sa-test", cluster.owner_map[space],
        UpdateMessage(space, values=values, sender="sa-test"))
    assert reply.ok


class TestContinuousQueries:
    def test_fires_on_matching_update(self, paper_cluster):
        fired = []
        site, sub_id = paper_cluster.subscribe(
            OAK_QUERY, fired.append, fire_immediately=True)
        assert site == "oak"
        assert len(fired) == 1  # the initial answer
        assert {r.id for r in fired[0]} == {"1"}
        # Space 1 becomes unavailable: the answer changes, so it fires.
        _update(paper_cluster, OAK_SPACE_1, available="no")
        assert len(fired) == 2
        assert fired[1] == []
        manager = paper_cluster.agents[site].continuous
        assert manager.stats["notifications"] == 2

    def test_no_fire_on_non_matching_update(self, paper_cluster):
        fired = []
        site, _sub = paper_cluster.subscribe(
            OAK_QUERY, fired.append, fire_immediately=False)
        # An update in Shadyside is outside the query's region: the
        # subscription is not even re-evaluated at `oak`.
        _update(paper_cluster, SHADY_SPACE_1, available="no")
        assert fired == []
        assert paper_cluster.agents[site].continuous.stats[
            "evaluations"] == 0

    def test_no_fire_when_answer_unchanged(self, paper_cluster):
        fired = []
        site, _sub = paper_cluster.subscribe(
            OAK_QUERY, fired.append, fire_immediately=True)
        assert len(fired) == 1  # the digest-establishing initial answer
        # The update touches the region but leaves the answer as-is:
        # re-evaluated, digest unchanged, no new notification.
        _update(paper_cluster, OAK_SPACE_1, available="yes")
        manager = paper_cluster.agents[site].continuous
        assert manager.stats["evaluations"] == 2
        assert len(fired) == 1

    def test_unsubscribe_stops_delivery(self, paper_cluster):
        fired = []
        site, sub_id = paper_cluster.subscribe(
            OAK_QUERY, fired.append, fire_immediately=False)
        paper_cluster.unsubscribe(site, sub_id)
        _update(paper_cluster, OAK_SPACE_1, available="no")
        assert fired == []
        assert len(paper_cluster.agents[site].continuous) == 0

    def test_unknown_unsubscribe_is_noop(self, paper_cluster):
        paper_cluster.unsubscribe("oak", 99999)


class TestNotificationTraceContext:
    @pytest.fixture
    def tracing(self):
        TRACER.reset()
        enable_tracing()
        yield TRACER
        disable_tracing()
        TRACER.reset()

    def test_notification_carries_trace_context(self, paper_cluster,
                                                tracing):
        seen = []

        def callback(_results):
            # The callback runs under the evaluation span, so anything
            # it does joins the gather's trace.
            seen.append(tracing.current_trace_id())

        site, sub_id = paper_cluster.subscribe(
            OAK_QUERY, callback, fire_immediately=True)
        subscription = paper_cluster.agents[site].continuous \
            ._subscriptions[sub_id]
        assert isinstance(subscription.last_trace, TraceContext)
        assert seen == [subscription.last_trace.trace_id]
        spans = tracing.spans(subscription.last_trace.trace_id)
        assert "continuous-eval" in {span.name for span in spans}
        first_trace = subscription.last_trace
        _update(paper_cluster, OAK_SPACE_1, available="no")
        # A new evaluation, a new trace context on the subscription.
        assert subscription.last_trace != first_trace

    def test_no_trace_context_while_disabled(self, paper_cluster):
        site, sub_id = paper_cluster.subscribe(
            OAK_QUERY, lambda results: None, fire_immediately=True)
        subscription = paper_cluster.agents[site].continuous \
            ._subscriptions[sub_id]
        assert subscription.last_trace is None
