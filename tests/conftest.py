"""Shared fixtures: paper-figure documents and small deployments."""

import pytest

from repro.core import HierarchySchema, PartitionPlan
from repro.net import Cluster
from repro.xmlkit import parse_fragment

#: The document of the paper's Figures 3/4, extended with a second
#: neighborhood and city so multi-site scenarios are interesting.
PAPER_DOCUMENT = """
<usRegion id='NE'>
  <state id='PA'>
    <county id='Allegheny'>
      <city id='Pittsburgh'>
        <neighborhood id='Oakland' zipcode='15213'>
          <available-spaces>8</available-spaces>
          <block id='1'>
            <parkingSpace id='1'>
              <available>yes</available><price>25</price>
            </parkingSpace>
            <parkingSpace id='2'>
              <available>no</available><price>0</price>
            </parkingSpace>
          </block>
          <block id='2'>
            <parkingSpace id='1'>
              <available>yes</available><price>0</price>
            </parkingSpace>
          </block>
        </neighborhood>
        <neighborhood id='Shadyside' zipcode='15232'>
          <available-spaces>3</available-spaces>
          <block id='1'>
            <parkingSpace id='1'>
              <available>yes</available><price>50</price>
            </parkingSpace>
            <parkingSpace id='2'>
              <available>yes</available><price>25</price>
            </parkingSpace>
          </block>
        </neighborhood>
      </city>
      <city id='Etna'>
        <neighborhood id='Riverfront' zipcode='15223'>
          <available-spaces>1</available-spaces>
          <block id='1'>
            <parkingSpace id='1'>
              <available>no</available><price>25</price>
            </parkingSpace>
          </block>
        </neighborhood>
      </city>
    </county>
  </state>
</usRegion>
"""

FIGURE2_QUERY = (
    "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
    "/city[@id='Pittsburgh']"
    "/neighborhood[@id='Oakland' or @id='Shadyside']"
    "/block[@id='1']/parkingSpace[available='yes']"
)


def id_path(spec):
    """``'usRegion=NE/state=PA'`` -> ``(('usRegion','NE'), ('state','PA'))``."""
    return tuple(tuple(entry.split("=", 1)) for entry in spec.split("/"))


PITTSBURGH = id_path(
    "usRegion=NE/state=PA/county=Allegheny/city=Pittsburgh")
OAKLAND = PITTSBURGH + (("neighborhood", "Oakland"),)
SHADYSIDE = PITTSBURGH + (("neighborhood", "Shadyside"),)
ETNA = id_path("usRegion=NE/state=PA/county=Allegheny/city=Etna")


@pytest.fixture
def paper_doc():
    """A fresh copy of the paper's example document."""
    return parse_fragment(PAPER_DOCUMENT)


@pytest.fixture
def paper_schema(paper_doc):
    return HierarchySchema.from_document(paper_doc)


@pytest.fixture
def paper_plan():
    """Top / Oakland / Shadyside / Etna on four sites."""
    return PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
        "shady": [SHADYSIDE],
        "etna": [ETNA],
    })


@pytest.fixture
def paper_cluster(paper_doc, paper_plan):
    """A four-site cluster over the paper document."""
    return Cluster(paper_doc, paper_plan)


@pytest.fixture
def settable_clock():
    """A controllable clock: ``clock.now`` is mutable."""

    class _Clock:
        def __init__(self):
            self.now = 1000.0

        def __call__(self):
            return self.now

        def advance(self, seconds):
            self.now += seconds

    return _Clock()
