"""Unit tests for the XML parser."""

import pytest

from repro.xmlkit import (
    Document,
    XmlParseError,
    parse_document,
    parse_fragment,
    serialize,
)


class TestBasics:
    def test_empty_element(self):
        element = parse_fragment("<a/>")
        assert element.tag == "a"
        assert element.children == []

    def test_open_close(self):
        assert parse_fragment("<a></a>").tag == "a"

    def test_attributes_double_and_single_quotes(self):
        element = parse_fragment('<a x="1" y=\'2\'/>')
        assert element.get("x") == "1"
        assert element.get("y") == "2"

    def test_paper_at_notation(self):
        """The paper writes <usRegion @id='NE'>; the @ is accepted."""
        element = parse_fragment("<usRegion @id='NE'/>")
        assert element.id == "NE"

    def test_nested_elements(self):
        element = parse_fragment("<a><b><c/></b><b/></a>")
        assert len(list(element.element_children("b"))) == 2

    def test_text_content(self):
        element = parse_fragment("<a>  hello world  </a>")
        assert element.text == "hello world"

    def test_mixed_text_and_elements(self):
        element = parse_fragment("<a>pre<b/>post</a>")
        # Data-centric model: text is consolidated.
        assert element.child("b") is not None
        assert "pre" in element.string_value()

    def test_whitespace_only_text_dropped(self):
        element = parse_fragment("<a>\n  <b/>\n</a>")
        assert element.text is None

    def test_prolog_and_comments(self):
        element = parse_fragment(
            "<?xml version='1.0'?><!-- hi --><a/><!-- bye -->")
        assert element.tag == "a"

    def test_inner_comments_ignored(self):
        element = parse_fragment("<a><!-- note --><b/></a>")
        assert element.child("b") is not None

    def test_doctype_skipped(self):
        assert parse_fragment("<!DOCTYPE a><a/>").tag == "a"

    def test_cdata(self):
        element = parse_fragment("<a><![CDATA[x < y & z]]></a>")
        assert element.text == "x < y & z"

    def test_processing_instruction_inside(self):
        element = parse_fragment("<a><?pi data?><b/></a>")
        assert element.child("b") is not None


class TestEntities:
    def test_predefined_entities(self):
        element = parse_fragment("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert element.text == "<>&\"'"

    def test_numeric_entities(self):
        assert parse_fragment("<a>&#65;&#x42;</a>").text == "AB"

    def test_entities_in_attributes(self):
        assert parse_fragment("<a x='&amp;&lt;'/>").get("x") == "&<"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a>&nope;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a>&amp</a>")

    def test_bad_char_reference_rejected(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a>&#xZZ;</a>")


class TestErrors:
    def test_mismatched_close_tag(self):
        with pytest.raises(XmlParseError) as info:
            parse_fragment("<a><b></a></b>")
        assert "mismatched" in str(info.value)

    def test_unclosed_element(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a><b>")

    def test_unquoted_attribute(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a x=1/>")

    def test_duplicate_attribute(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a x='1' x='2'/>")

    def test_trailing_garbage(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a/><b/>")

    def test_not_an_element(self):
        with pytest.raises(XmlParseError):
            parse_fragment("just text")

    def test_error_carries_position(self):
        with pytest.raises(XmlParseError) as info:
            parse_fragment("<a>\n<a x=></a></a>")
        assert info.value.line == 2
        assert info.value.column > 0

    def test_lt_in_attribute_rejected(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a x='<'/>")

    def test_invalid_element_name(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<1a/>")


class TestRoundtrip:
    def test_serialize_parse_roundtrip(self, paper_doc):
        text = serialize(paper_doc)
        again = parse_fragment(text)
        assert serialize(again) == text

    def test_pretty_roundtrip(self, paper_doc):
        from repro.xmlkit import trees_equal

        pretty = serialize(paper_doc, pretty=True)
        assert trees_equal(parse_fragment(pretty), paper_doc)

    def test_parse_document_wraps(self):
        doc = parse_document("<a/>")
        assert isinstance(doc, Document)
        assert doc.root.tag == "a"

    def test_parse_file(self, tmp_path):
        from repro.xmlkit import parse_file, write_file

        path = tmp_path / "doc.xml"
        write_file(parse_fragment("<a><b id='1'>x</b></a>"), str(path))
        doc = parse_file(str(path))
        assert doc.root.child("b").text == "x"
