"""Unit tests for the shared bounded LRU cache and the executors."""

import pytest

from repro.core import LRUCache, SerialExecutor, ThreadedExecutor, \
    resolve_executor


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("ghost") is None
        assert cache.stats["misses"] == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")      # touch: "b" is now the LRU entry
        cache.put("c", 3)   # evicts "b"
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats["evictions"] == 1

    def test_bounded_size(self):
        cache = LRUCache(max_entries=3)
        for index in range(10):
            cache.put(index, index)
        assert len(cache) == 3
        assert cache.stats["evictions"] == 7

    def test_clear(self):
        cache = LRUCache(max_entries=3)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_hit_and_miss_counters(self):
        cache = LRUCache(max_entries=3)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("zz")
        assert cache.stats["hits"] == 2
        assert cache.stats["misses"] == 1


class TestExecutors:
    def test_serial_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_threaded_preserves_order(self):
        executor = ThreadedExecutor(max_workers=4)
        assert executor.map(lambda x: x * 2, list(range(20))) == \
            [x * 2 for x in range(20)]

    def test_threaded_runs_concurrently(self):
        import threading
        barrier = threading.Barrier(3, timeout=5)

        def rendezvous(_item):
            barrier.wait()  # deadlocks unless 3 run at once
            return True

        assert ThreadedExecutor(max_workers=3).map(rendezvous,
                                                   [1, 2, 3]) == [True] * 3

    def test_threaded_raises_earliest_failure(self):
        def boom(item):
            if item % 2:
                raise ValueError(f"item {item}")
            return item

        with pytest.raises(ValueError, match="item 1"):
            ThreadedExecutor(max_workers=4).map(boom, [0, 1, 2, 3])

    def test_resolve_executor_specs(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadedExecutor)
        assert isinstance(resolve_executor("threaded"), ThreadedExecutor)
        default = resolve_executor(None)
        assert hasattr(default, "map")
        custom = SerialExecutor()
        assert resolve_executor(custom) is custom

    def test_resolve_executor_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_executor("warp-drive")
