"""Tests that the XSLT QEG programs agree with the core walker."""

import pytest

from repro.core import PartitionPlan, compile_pattern, run_qeg
from repro.xslt import (
    FastQEGCodegen,
    StylesheetError,
    create_naive,
    generate_qeg_stylesheet,
    run_qeg_stylesheet,
    subquery_strings,
)

from tests.conftest import OAKLAND, SHADYSIDE, id_path

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


@pytest.fixture
def dbs(paper_doc):
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
        "shady": [SHADYSIDE],
    })
    return plan.build_databases(paper_doc)


QUERIES = [
    PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']",
    PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
             "/parkingSpace[available='yes']",
    PREFIX + "/neighborhood[@id='Oakland' or @id='Shadyside']"
             "/block[@id='1']/parkingSpace[available='yes']",
    PREFIX + "/neighborhood/block[@id='2']",
    PREFIX + "/neighborhood[@id='Nowhere']/block",
]


class TestEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("site", ["top", "oak", "shady"])
    def test_same_subqueries_as_walker(self, dbs, paper_schema, site, query):
        pattern = compile_pattern(query, schema=paper_schema)
        stylesheet, variables = create_naive(pattern)
        _roots, placeholders = run_qeg_stylesheet(
            stylesheet, dbs[site], variables=variables)
        xslt_subqueries = set(subquery_strings(pattern, placeholders))
        walker = run_qeg(dbs[site], pattern)
        walker_subqueries = {s.query for s in walker.subqueries}
        assert xslt_subqueries == walker_subqueries

    def test_annotated_answer_contains_result(self, dbs, paper_schema):
        pattern = compile_pattern(QUERIES[1], schema=paper_schema)
        stylesheet, variables = create_naive(pattern)
        roots, _ = run_qeg_stylesheet(stylesheet, dbs["oak"],
                                      variables=variables)
        spaces = [n for n in roots[0].iter("parkingSpace")]
        assert [s.id for s in spaces] == ["1"]


class TestFastCreation:
    def test_cache_hit_on_same_shape(self, dbs, paper_schema):
        codegen = FastQEGCodegen()
        first = compile_pattern(QUERIES[0], schema=paper_schema)
        other = compile_pattern(
            PREFIX.replace("Pittsburgh", "Etna")
            + "/neighborhood[@id='Riverfront']/block[@id='3']",
            schema=paper_schema)
        codegen.create(first)
        codegen.create(other)
        assert codegen.stats == {"hits": 1, "misses": 1}

    def test_different_shapes_miss(self, dbs, paper_schema):
        codegen = FastQEGCodegen()
        codegen.create(compile_pattern(QUERIES[0], schema=paper_schema))
        codegen.create(compile_pattern(QUERIES[1], schema=paper_schema))
        assert codegen.stats["misses"] == 2

    def test_fast_and_naive_agree(self, dbs, paper_schema):
        pattern = compile_pattern(QUERIES[2], schema=paper_schema)
        naive_sheet, naive_vars = create_naive(pattern)
        codegen = FastQEGCodegen()
        codegen.create(compile_pattern(QUERIES[2], schema=paper_schema))
        fast_sheet, fast_vars = codegen.create(pattern)
        for site in ("top", "oak"):
            _r1, p1 = run_qeg_stylesheet(naive_sheet, dbs[site],
                                         variables=naive_vars)
            _r2, p2 = run_qeg_stylesheet(fast_sheet, dbs[site],
                                         variables=fast_vars)
            assert sorted(subquery_strings(pattern, p1)) == \
                sorted(subquery_strings(pattern, p2))

    def test_fast_is_much_cheaper(self, paper_schema):
        import time

        codegen = FastQEGCodegen()
        pattern = compile_pattern(QUERIES[0], schema=paper_schema)
        started = time.perf_counter()
        codegen.create(pattern)
        miss_cost = time.perf_counter() - started
        started = time.perf_counter()
        codegen.create(pattern)
        hit_cost = time.perf_counter() - started
        assert hit_cost < miss_cost


class TestLimitations:
    def test_descendant_queries_delegated_to_walker(self, paper_schema):
        pattern = compile_pattern("/usRegion[@id='NE']//parkingSpace",
                                  schema=paper_schema)
        with pytest.raises(StylesheetError):
            generate_qeg_stylesheet(pattern)

    def test_unseparable_predicates_delegated(self, paper_schema):
        pattern = compile_pattern(
            PREFIX + "/neighborhood[@id='Oakland' or @zipcode='15213']",
            schema=paper_schema)
        with pytest.raises(StylesheetError):
            generate_qeg_stylesheet(pattern)


class TestConsistencyCodegen:
    """The XSLT programs honour consistency predicates like the walker."""

    def _cache_oakland_at_top(self, dbs, paper_schema, timestamp):
        from repro.core import run_qeg

        remote = run_qeg(dbs["oak"], compile_pattern(
            PREFIX + "/neighborhood[@id='Oakland']", paper_schema))
        dbs["top"].store_fragment(remote.answer)
        dbs["top"].find(
            tuple(PREFIX_PATH)).set("timestamp", repr(float(timestamp)))

    def test_stale_cache_asks_fresh_cache_answers(self, dbs, paper_schema):
        from repro.core import run_qeg
        from tests.conftest import OAKLAND as OAK_PATH

        remote = run_qeg(dbs["oak"], compile_pattern(
            PREFIX + "/neighborhood[@id='Oakland']", paper_schema))
        dbs["top"].store_fragment(remote.answer)
        element = dbs["top"].find(OAK_PATH)

        query = (PREFIX + "/neighborhood[@id='Oakland']"
                 "[timestamp() > current-time() - 30]/block")
        pattern = compile_pattern(query, schema=paper_schema)
        stylesheet, variables = create_naive(pattern)

        for timestamp, expect_ask in ((995.0, False), (900.0, True)):
            element.set("timestamp", repr(timestamp))
            _roots, placeholders = run_qeg_stylesheet(
                stylesheet, dbs["top"], variables=variables, now=1000.0)
            walker = run_qeg(dbs["top"], pattern, now=1000.0)
            assert bool(placeholders) == expect_ask
            assert sorted(subquery_strings(pattern, placeholders)) == \
                sorted(s.query for s in walker.subqueries)


PREFIX_PATH = (("usRegion", "NE"), ("state", "PA"),
               ("county", "Allegheny"), ("city", "Pittsburgh"),
               ("neighborhood", "Oakland"))
