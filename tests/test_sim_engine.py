"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Environment, SimulationError


class TestEventsAndTimeouts:
    def test_timeout_advances_clock(self):
        env = Environment()
        log = []

        def process():
            yield env.timeout(5)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(process())
        env.run()
        assert log == [5.0, 7.5]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_event_value_passed_to_process(self):
        env = Environment()
        event = env.event()
        got = []

        def waiter():
            value = yield event
            got.append(value)

        def firer():
            yield env.timeout(1)
            event.succeed("payload")

        env.process(waiter())
        env.process(firer())
        env.run()
        assert got == ["payload"]

    def test_double_succeed_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_run_until_stops_clock(self):
        env = Environment()

        def ticker():
            while True:
                yield env.timeout(1)

        env.process(ticker())
        env.run(until=10)
        assert env.now == 10

    def test_process_return_value(self):
        env = Environment()

        def worker():
            yield env.timeout(1)
            return 42

        process = env.process(worker())
        env.run()
        assert process.value == 42

    def test_yielding_non_event_fails(self):
        env = Environment()

        def bad():
            yield "not an event"

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_add_callback_after_processing(self):
        env = Environment()
        event = env.event()
        event.succeed("v")
        env.run()
        late = []
        event.add_callback(lambda e: late.append(e.value))
        env.run()
        assert late == ["v"]


class TestAllOf:
    def test_waits_for_all(self):
        env = Environment()
        done_at = []

        def child(delay):
            yield env.timeout(delay)

        def parent():
            children = [env.process(child(d)) for d in (3, 1, 2)]
            yield env.all_of(children)
            done_at.append(env.now)

        env.process(parent())
        env.run()
        assert done_at == [3.0]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        hit = []

        def parent():
            yield env.all_of([])
            hit.append(env.now)

        env.process(parent())
        env.run()
        assert hit == [0.0]

    def test_all_of_with_already_finished(self):
        env = Environment()
        order = []

        def quick():
            yield env.timeout(1)

        def parent(done):
            yield env.timeout(5)
            yield env.all_of([done])
            order.append(env.now)

        done = env.process(quick())
        env.process(parent(done))
        env.run()
        assert order == [5.0]


class TestResource:
    def test_fifo_queueing(self):
        env = Environment()
        server = env.resource(capacity=1)
        order = []

        def job(name, work):
            grant = server.request()
            yield grant
            yield env.timeout(work)
            server.release()
            order.append((name, env.now))

        env.process(job("a", 2))
        env.process(job("b", 2))
        env.process(job("c", 2))
        env.run()
        assert order == [("a", 2.0), ("b", 4.0), ("c", 6.0)]

    def test_capacity_two_parallel(self):
        env = Environment()
        server = env.resource(capacity=2)
        finish = []

        def job(work):
            yield server.request()
            yield env.timeout(work)
            server.release()
            finish.append(env.now)

        for _ in range(2):
            env.process(job(4))
        env.run()
        assert finish == [4.0, 4.0]

    def test_over_release_rejected(self):
        env = Environment()
        server = env.resource()
        with pytest.raises(SimulationError):
            server.release()

    def test_utilization(self):
        env = Environment()
        server = env.resource()

        def job():
            yield server.request()
            yield env.timeout(3)
            server.release()

        env.process(job())
        env.run(until=6)
        assert server.utilization(6.0) == pytest.approx(0.5)
        assert server.served == 1

    def test_queue_length(self):
        env = Environment()
        server = env.resource()
        lengths = []

        def hog():
            yield server.request()
            yield env.timeout(10)
            server.release()

        def observer():
            yield env.timeout(5)
            lengths.append(server.queue_length)

        def waiter():
            yield server.request()
            server.release()

        env.process(hog())
        env.process(waiter())
        env.process(observer())
        env.run()
        assert lengths == [1]


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run():
            env = Environment()
            log = []

            def proc(name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))

            for index in range(10):
                env.process(proc(f"p{index}", (index * 7) % 5))
            env.run()
            return log

        assert run() == run()
