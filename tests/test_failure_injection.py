"""Failure-injection tests: the system's behaviour when parts break.

The paper's prototype assumes cooperative, reachable sites; these tests
pin down what this implementation does at the edges -- errors surface
loudly instead of corrupting state, and local data keeps being served.
"""

import pytest

from repro.core import structural_violations
from repro.net import NetError, QueryMessage, UnknownSite

from tests.conftest import OAKLAND, SHADYSIDE

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


class TestDeadSites:
    def test_query_needing_dead_site_raises(self, paper_cluster):
        paper_cluster.network.unregister("shady")
        with pytest.raises(UnknownSite):
            paper_cluster.query(
                PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']",
                at_site="top")

    def test_local_queries_survive_dead_peer(self, paper_cluster):
        paper_cluster.network.unregister("shady")
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']")
        assert len(results) == 1

    def test_cached_data_survives_dead_owner(self, paper_cluster):
        query = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
        paper_cluster.query(query, at_site="top")  # warm the cache
        paper_cluster.network.unregister("shady")
        results, _, _ = paper_cluster.query(query, at_site="top")
        assert len(results) == 1  # the cache answers

    def test_state_clean_after_failed_gather(self, paper_cluster):
        paper_cluster.network.unregister("shady")
        with pytest.raises(UnknownSite):
            paper_cluster.query(
                PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']",
                at_site="top")
        assert structural_violations(paper_cluster.database("top")) == []
        # And the site still answers what it can.
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']",
            at_site="top")
        assert len(results) == 1


class TestLinkFailures:
    def test_intermittent_link_error_propagates(self, paper_cluster):
        calls = {"n": 0}

        def flaky(src, dst, message):
            calls["n"] += 1
            if dst == "shady":
                raise ConnectionError("link to shady down")

        paper_cluster.network.interceptors.append(flaky)
        with pytest.raises(ConnectionError):
            paper_cluster.query(
                PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']",
                at_site="top")
        paper_cluster.network.interceptors.clear()
        # Once the link heals the same query succeeds.
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']",
            at_site="top")
        assert len(results) == 1

    def test_malformed_reply_detected(self, paper_cluster):
        class _Liar:
            def handle_message(self, message):
                return QueryMessage("/nonsense")  # not an AnswerMessage

        paper_cluster.network.register("shady", _Liar())
        with pytest.raises(NetError):
            paper_cluster.query(
                PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']",
                at_site="top")


class TestBadInputs:
    def test_syntactically_bad_query_raises_cleanly(self, paper_cluster):
        from repro.xpath.errors import XPathSyntaxError

        with pytest.raises(XPathSyntaxError):
            paper_cluster.query("/a[unclosed")

    def test_ordered_construct_rejected(self, paper_cluster):
        from repro.xpath.errors import XPathUnsupportedError

        with pytest.raises(XPathUnsupportedError):
            paper_cluster.query("/usRegion[@id='NE']/state[1]")

    def test_update_to_unknown_node_fails_loudly(self, paper_cluster):
        from repro.core import UnknownNodeError
        from repro.net import NameNotFound

        sa = paper_cluster.add_sensing_agent("sa-x", [])
        ghost = OAKLAND + (("block", "1"), ("parkingSpace", "999"))
        # Fails at DNS resolution (the node was never registered); a
        # stale-but-resolvable path would fail at the owner instead.
        with pytest.raises((UnknownNodeError, NameNotFound)):
            sa.send_update(ghost, values={"available": "no"})

    def test_unknown_message_kind_rejected_by_oa(self, paper_cluster):
        class _Weird:
            kind = "weird"
            message_id = 1

            def encoded_size(self):
                return 1

        with pytest.raises(NetError):
            paper_cluster.agent("top").handle_message(_Weird())


class TestCorruptionDetection:
    def test_invalid_status_attribute_detected(self, paper_cluster):
        element = paper_cluster.database("top").find(SHADYSIDE)
        element.set("status", "half-done")
        problems = structural_violations(paper_cluster.database("top"))
        assert any("invalid status" in p for p in problems)

    def test_duplicate_sibling_ids_detected(self, paper_cluster):
        from repro.xmlkit import Element

        city = paper_cluster.database("top").find(OAKLAND[:-1])
        rogue = Element("neighborhood", attrib={"id": "Oakland"})
        city.append(rogue)
        problems = structural_violations(paper_cluster.database("top"))
        assert any("duplicate sibling id" in p for p in problems)
