"""Failure-injection tests: the system's behaviour when parts break.

The paper's prototype assumes cooperative, reachable sites.  This
implementation does not: subquery dispatch retries with deterministic
backoff and DNS re-resolution, per-peer circuit breakers stop hammering
dead sites, and a gather that still cannot reach a region degrades to a
partial answer carrying a machine-readable completeness report instead
of raising.  The seeded :class:`~repro.net.faults.FaultyNetwork` drives
the chaos property: under injected faults every query either matches
the fault-free answer or is flagged incomplete with exactly the
unreachable regions listed.
"""

import socket

import pytest

from repro.core import PartitionPlan, structural_violations
from repro.net import (
    BreakerPolicy,
    CircuitBreaker,
    Cluster,
    Deadline,
    ErrorMessage,
    FaultyNetwork,
    LoopbackNetwork,
    NetError,
    OAConfig,
    QueryMessage,
    RetryPolicy,
    TcpNetwork,
    UnknownSite,
)
from repro.net.messages import AnswerMessage, Message
from repro.net.retry import CLOSED, HALF_OPEN, OPEN, hash_fraction
from repro.net.tcpruntime import TcpCluster, recv_framed, send_framed
from repro.xmlkit import canonical_form, parse_fragment

from tests.conftest import (
    ETNA,
    FIGURE2_QUERY,
    OAKLAND,
    PAPER_DOCUMENT,
    SHADYSIDE,
    id_path,
)

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")
SHADY_BLOCK = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
OAK_BLOCK = PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"

PAPER_PLAN = {
    "top": [id_path("usRegion=NE")],
    "oak": [OAKLAND],
    "shady": [SHADYSIDE],
    "etna": [ETNA],
}


def fast_retries(**overrides):
    """A retry policy that burns no wall clock in tests."""
    settings = dict(max_attempts=3, base_delay=0.0, max_delay=0.0,
                    jitter=0.0, sleep=lambda seconds: None)
    settings.update(overrides)
    return RetryPolicy(**settings)


def make_cluster(oa_config=None, network=None):
    return Cluster(parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
                   oa_config=oa_config or OAConfig(retry_policy=fast_retries()),
                   network=network)


def scrubbed(element):
    """Canonical form without volatile timestamp attributes."""
    clone = element.copy()
    for node in clone.iter():
        node.delete_attribute("timestamp")
    return canonical_form(clone)


def answer_set(results):
    return sorted(scrubbed(result) for result in results)


class TestPartialAnswers:
    def test_query_needing_dead_site_degrades(self):
        cluster = make_cluster()
        cluster.network.unregister("shady")
        results, _, outcome = cluster.query(FIGURE2_QUERY, at_site="top")
        assert not outcome.complete
        assert len(results) == 1  # Oakland's space still answers
        assert outcome.unreachable_paths == (SHADYSIDE,)
        report = outcome.completeness_report()
        assert report["complete"] is False
        [miss] = report["unreachable"]
        assert tuple(tuple(entry) for entry in miss["id_path"]) == SHADYSIDE
        assert miss["attempts"] == 3
        assert any("shady" in cause for cause in miss["causes"])

    def test_partial_answer_excises_failed_region(self):
        cluster = make_cluster()
        cluster.network.unregister("shady")
        results, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert results == []
        assert not outcome.complete

    def test_legacy_raising_surface(self):
        cluster = make_cluster(OAConfig(retry_policy=fast_retries(),
                                        partial_answers=False))
        cluster.network.unregister("shady")
        with pytest.raises(UnknownSite):
            cluster.query(SHADY_BLOCK, at_site="top")

    def test_local_queries_survive_dead_peer(self):
        cluster = make_cluster()
        cluster.network.unregister("shady")
        results, _, outcome = cluster.query(OAK_BLOCK)
        assert len(results) == 1
        assert outcome.complete

    def test_cached_data_survives_dead_owner(self):
        cluster = make_cluster()
        cluster.query(SHADY_BLOCK, at_site="top")  # warm the cache
        cluster.network.unregister("shady")
        results, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert len(results) == 1  # the cache answers
        assert outcome.complete

    def test_state_clean_after_degraded_gather(self):
        cluster = make_cluster()
        cluster.network.unregister("shady")
        _, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert not outcome.complete
        assert structural_violations(cluster.database("top")) == []
        # And the site still answers what it can.
        results, _, _ = cluster.query(OAK_BLOCK, at_site="top")
        assert len(results) == 1

    def test_failure_counters_surface(self):
        cluster = make_cluster()
        cluster.network.unregister("shady")
        cluster.query(SHADY_BLOCK, at_site="top")
        agent = cluster.agent("top")
        assert agent.stats["retries"] == 2
        assert agent.stats["subquery_failures"] == 3
        assert agent.stats["dns_refreshes"] == 2
        assert agent.driver.stats["failed_subqueries"] == 1
        assert agent.driver.stats["partial_gathers"] == 1

    def test_completeness_report_rides_the_wire(self):
        cluster = make_cluster()
        cluster.network.unregister("shady")
        message = QueryMessage(SHADY_BLOCK, user=True, sender="client")
        reply = cluster.network.request("client", "top", message)
        decoded = Message.decode(reply.encode())
        assert decoded.completeness is not None
        assert decoded.completeness["complete"] is False
        [miss] = decoded.completeness["unreachable"]
        assert tuple(tuple(entry) for entry in miss["id_path"]) == SHADYSIDE
        assert miss["attempts"] == 3


class TestRetries:
    def test_transient_fault_healed_by_retry(self):
        cluster = make_cluster()
        failures = {"remaining": 2}

        def flaky(src, dst, message):
            if dst == "shady" and failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise ConnectionError("link to shady down")

        cluster.network.interceptors.append(flaky)
        results, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert len(results) == 1
        assert outcome.complete
        assert cluster.agent("top").stats["retries"] == 2

    def test_nonretryable_error_stops_retrying(self):
        cluster = make_cluster()

        class _Broken:
            def handle_message(self, message):
                return ErrorMessage(message.message_id, code="boom",
                                    detail="permanent", retryable=False,
                                    sender="shady")

        cluster.network.register("shady", _Broken())
        results, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert results == []
        assert not outcome.complete
        [miss] = outcome.completeness_report()["unreachable"]
        assert miss["attempts"] == 1  # no budget burnt on a lost cause
        assert any("boom" in cause for cause in miss["causes"])
        assert cluster.agent("top").stats["retries"] == 0

    def test_malformed_reply_degrades(self):
        cluster = make_cluster()

        class _Liar:
            def handle_message(self, message):
                return QueryMessage("/nonsense")  # not an AnswerMessage

        cluster.network.register("shady", _Liar())
        results, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert results == []
        assert not outcome.complete
        [miss] = outcome.completeness_report()["unreachable"]
        assert any("replied" in cause for cause in miss["causes"])

    def test_retry_reresolves_dns_after_migration(self):
        # The client of a migrated region holds a stale DNS entry for a
        # site that then dies; the retry path must invalidate the entry
        # and follow authoritative DNS to the new owner.
        cluster = make_cluster(OAConfig(retry_policy=fast_retries(),
                                        cache_results=False))
        cluster.query(SHADY_BLOCK, at_site="top")  # warm top's resolver
        cluster.delegate(SHADYSIDE, "oak")
        cluster.network.unregister("shady")
        results, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert len(results) == 1
        assert outcome.complete
        assert cluster.agent("top").stats["dns_refreshes"] >= 1
        assert cluster.agent("top").stats["retries"] >= 1


class TestBackoffDeterminism:
    def test_schedule_reproducible(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=1.0, jitter=0.5)
        key = ("site-a", "site-b", "/query")
        assert policy.schedule(key) == policy.schedule(key)
        assert policy.schedule(key) != policy.schedule(("other",))

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        assert policy.schedule() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        for attempt in range(1, 20):
            delay = policy.backoff(attempt, key="k")
            assert 0.05 <= delay <= 0.1

    def test_hash_fraction_is_stable(self):
        # Pinned: a changed hash silently reshuffles every seeded fault
        # schedule and backoff jitter in the suite.
        assert hash_fraction("a", 1) == hash_fraction("a", 1)
        assert 0.0 <= hash_fraction("b", 2) < 1.0
        assert hash_fraction("a", 1) != hash_fraction("a", 2)

    def test_deadline_clamps_and_expires(self):
        clock = {"now": 0.0}
        deadline = Deadline(10.0, clock=lambda: clock["now"])
        assert not deadline.expired
        assert deadline.clamp(30.0) == 10.0
        clock["now"] = 4.0
        assert deadline.clamp(30.0) == 6.0
        clock["now"] = 10.0
        assert deadline.expired
        assert deadline.clamp(30.0) == 0.0
        assert Deadline(None).clamp(30.0) == 30.0

    def test_expired_deadline_stops_attempts(self):
        cluster = make_cluster(OAConfig(
            retry_policy=fast_retries(max_attempts=5, deadline=0.0)))
        cluster.network.unregister("shady")
        _, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        [miss] = outcome.completeness_report()["unreachable"]
        assert miss["attempts"] == 1


class TestCircuitBreaker:
    def test_state_machine_transitions(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(BreakerPolicy(
            failure_threshold=2, reset_timeout=10.0,
            clock=lambda: clock["now"]))
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CLOSED  # one failure is not a pattern
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # fast failure, no wire traffic
        clock["now"] = 10.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # only one probe in flight
        breaker.record_failure()
        assert breaker.state == OPEN  # probe failed: straight back open
        clock["now"] = 20.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        snapshot = breaker.snapshot()
        assert snapshot["opens"] == 2
        assert snapshot["probes"] == 2

    def test_open_circuit_sheds_traffic(self):
        calls = {"shady": 0}

        def count(src, dst, message):
            if dst == "shady":
                calls["shady"] += 1

        cluster = make_cluster(OAConfig(
            retry_policy=fast_retries(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=1e9)))
        cluster.network.interceptors.append(count)
        cluster.network.unregister("shady")
        for _ in range(2):  # two failures trip the breaker
            cluster.query(SHADY_BLOCK, at_site="top")
        assert calls["shady"] == 2
        _, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert calls["shady"] == 2  # not a single extra wire message
        assert not outcome.complete
        agent = cluster.agent("top")
        assert agent.stats["circuit_fast_fails"] >= 1
        assert agent.health_snapshot()["shady"]["state"] == OPEN

    def test_breaker_disabled_by_config(self):
        cluster = make_cluster(OAConfig(retry_policy=fast_retries(),
                                        breaker=False))
        assert cluster.agent("top").health is None
        assert cluster.agent("top").health_snapshot() == {}


class TestStaleOnError:
    STALE_QUERY = (PREFIX + "/neighborhood[@id='Shadyside']"
                   "[timestamp() > current-time() - 30]")
    WARM_QUERY = PREFIX + "/neighborhood[@id='Shadyside']"

    def _warmed_cluster(self, stale_on_error):
        cluster = make_cluster(OAConfig(retry_policy=fast_retries(),
                                        stale_on_error=stale_on_error))
        results, _, outcome = cluster.query(self.WARM_QUERY, at_site="top")
        assert len(results) == 1 and outcome.complete
        cluster.network.unregister("shady")
        return cluster

    def test_default_excises_stale_region(self):
        # The consistency predicate is stripped before extraction, so
        # serving the stale cached copy would silently violate it; by
        # default the region is excised and reported unreachable.
        cluster = self._warmed_cluster(stale_on_error=False)
        results, _, outcome = cluster.query(self.STALE_QUERY,
                                            at_site="top", now=1000.0)
        assert results == []
        assert not outcome.complete
        assert outcome.unreachable_paths == (SHADYSIDE,)

    def test_opt_in_serves_stale_cache(self):
        cluster = self._warmed_cluster(stale_on_error=True)
        results, _, outcome = cluster.query(self.STALE_QUERY,
                                            at_site="top", now=1000.0)
        assert len(results) == 1
        assert outcome.complete  # every region represented, one stale
        report = outcome.completeness_report()
        assert report["unreachable"] == []
        [stale] = report["stale_served"]
        assert tuple(tuple(entry) for entry in stale["id_path"]) == SHADYSIDE
        assert cluster.agent("top").driver.stats["stale_served"] == 1


class TestErrorMessageWire:
    def test_roundtrip(self):
        message = ErrorMessage(42, code="handler-error",
                               detail="KeyError: 'x'", retryable=False,
                               sender="shady")
        decoded = Message.decode(message.encode())
        assert isinstance(decoded, ErrorMessage)
        assert decoded.in_reply_to == 42
        assert decoded.code == "handler-error"
        assert decoded.detail == "KeyError: 'x'"
        assert decoded.retryable is False
        assert decoded.sender == "shady"

    def test_retryable_default_roundtrip(self):
        decoded = Message.decode(ErrorMessage(7).encode())
        assert decoded.retryable is True
        assert decoded.code == "error"

    def test_complete_answer_carries_no_report(self):
        message = AnswerMessage(3, results=[], sender="top")
        assert message.completeness is None
        assert "completeness" not in message.encode()


class TestTcpRobustness:
    def test_handler_exception_becomes_error_reply(self):
        with TcpCluster(parse_fragment(PAPER_DOCUMENT),
                        PartitionPlan(PAPER_PLAN)) as tcp:
            reply = tcp.tcp_network.request(
                "client", "top",
                QueryMessage("/a[unclosed", user=True, sender="client"))
            assert isinstance(reply, ErrorMessage)
            assert reply.code == "handler-error"
            assert reply.retryable is False
            assert "XPathSyntaxError" in reply.detail
            # The server survives: the same cluster still answers.
            results, _, outcome = tcp.cluster.query(OAK_BLOCK, at_site="top")
            assert len(results) == 1 and outcome.complete

    def test_undecodable_frame_becomes_error_reply(self):
        with TcpCluster(parse_fragment(PAPER_DOCUMENT),
                        PartitionPlan(PAPER_PLAN)) as tcp:
            sock = socket.create_connection(tcp.servers["top"].address,
                                            timeout=5)
            try:
                send_framed(sock, "this is not xml")
                reply = Message.decode(recv_framed(sock))
                assert isinstance(reply, ErrorMessage)
                assert reply.code == "bad-message"
                assert reply.retryable is False
                # Same connection keeps working after the bad frame.
                send_framed(sock, QueryMessage(
                    OAK_BLOCK, user=True, sender="client").encode())
                assert isinstance(Message.decode(recv_framed(sock)),
                                  AnswerMessage)
            finally:
                sock.close()

    def test_tell_is_fire_and_forget(self):
        network = TcpNetwork(addresses={"ghost": ("127.0.0.1", 1)},
                             timeout=1.0)
        network.tell("client", "ghost", QueryMessage("/x", sender="client"))
        assert network.pool_stats["send_failures"] == 1
        with pytest.raises(OSError):
            network.request("client", "ghost",
                            QueryMessage("/x", sender="client"))


class TestFaultyNetwork:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultyNetwork(LoopbackNetwork(), drop_rate=0.8, reset_rate=0.3)
        with pytest.raises(ValueError):
            FaultyNetwork(LoopbackNetwork(), drop_rate=-0.1)

    def test_same_seed_same_schedule(self):
        def decisions(seed):
            network = FaultyNetwork(LoopbackNetwork(), seed=seed,
                                    drop_rate=0.3)
            return [network._decide("a", "b") for _ in range(50)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)
        assert "drop" in decisions(7)

    def test_crash_and_recovery(self):
        cluster = make_cluster(
            network=FaultyNetwork(LoopbackNetwork(), seed=0))
        cluster.network.crash("shady")
        results, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert results == [] and not outcome.complete
        assert cluster.network.fault_stats["down_refused"] >= 1
        cluster.network.recover("shady")
        results, _, outcome = cluster.query(SHADY_BLOCK, at_site="top")
        assert len(results) == 1 and outcome.complete

    def test_error_replies_are_retried_through(self):
        cluster = make_cluster(
            network=FaultyNetwork(LoopbackNetwork(), seed=3, error_rate=0.3))
        results, _, outcome = cluster.query(FIGURE2_QUERY, at_site="top")
        assert outcome.complete
        assert len(results) == 3


class TestChaosProperty:
    """With seeded faults every query heals or degrades -- never raises."""

    QUERIES = (
        FIGURE2_QUERY,
        SHADY_BLOCK,
        OAK_BLOCK,
        "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
        "/city[@id='Etna']/neighborhood[@id='Riverfront']",
    )

    def _serial_config(self, **overrides):
        # Serial dispatch keeps per-link request sequences (and so the
        # seeded fault draws) deterministic across runs.
        return OAConfig(retry_policy=fast_retries(), executor="serial",
                        **overrides)

    def _baseline(self):
        cluster = make_cluster(self._serial_config())
        answers = {}
        for query in self.QUERIES:
            results, _, outcome = cluster.query(query, at_site="top")
            assert outcome.complete
            answers[query] = answer_set(results)
        return answers

    def _run_chaos(self, seed, drop_rate=0.2):
        network = FaultyNetwork(LoopbackNetwork(), seed=seed,
                                drop_rate=drop_rate)
        cluster = make_cluster(self._serial_config(), network=network)
        run = []
        for query in self.QUERIES:
            results, _, outcome = cluster.query(query, at_site="top")
            run.append((query, answer_set(results), outcome.complete,
                        outcome.unreachable_paths))
        return run, network.fault_stats

    def test_heal_or_degrade_under_drops(self):
        baseline = self._baseline()
        saw_drop = False
        for seed in range(8):
            run, fault_stats = self._run_chaos(seed)
            saw_drop = saw_drop or fault_stats["drops"] > 0
            for query, answers, complete, unreachable in run:
                if complete:
                    assert answers == baseline[query], (seed, query)
                else:
                    # Flagged incomplete: what did come back is a
                    # subset, and the report says exactly what did not.
                    assert unreachable, (seed, query)
                    assert set(answers) <= set(baseline[query]), (seed, query)
        assert saw_drop  # the seeds actually exercised faults

    def test_same_seed_is_reproducible(self):
        first_run, first_stats = self._run_chaos(seed=5, drop_rate=0.3)
        second_run, second_stats = self._run_chaos(seed=5, drop_rate=0.3)
        assert first_run == second_run
        assert first_stats == second_stats

    def test_chaos_over_tcp(self):
        baseline = self._baseline()
        with TcpCluster(
                parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
                network_wrapper=lambda net: FaultyNetwork(
                    net, seed=11, drop_rate=0.2),
                oa_config=self._serial_config()) as tcp:
            for query in self.QUERIES:
                results, _, outcome = tcp.cluster.query(query, at_site="top")
                if outcome.complete:
                    assert answer_set(results) == baseline[query], query
                else:
                    assert outcome.unreachable_paths, query
                    assert set(answer_set(results)) <= \
                        set(baseline[query]), query
            assert tcp.network.fault_stats["requests"] > 0

    def test_fault_free_wire_parity(self):
        """Faults off: the resilience layer adds zero wire messages."""
        legacy = make_cluster(OAConfig(
            retry_policy=RetryPolicy(max_attempts=1), breaker=False,
            partial_answers=False, executor="serial"))
        guarded = make_cluster(self._serial_config())
        for query in self.QUERIES:
            legacy_results, _, _ = legacy.query(query, at_site="top")
            guarded_results, _, _ = guarded.query(query, at_site="top")
            assert answer_set(legacy_results) == answer_set(guarded_results)
        assert legacy.network.traffic.messages == \
            guarded.network.traffic.messages
        assert legacy.network.traffic.summary()["links"] == \
            guarded.network.traffic.summary()["links"]


class TestFaultMetrics:
    def test_collect_fault_counters(self):
        from repro.sim.metrics import collect_fault_counters

        cluster = make_cluster()
        cluster.network.unregister("shady")
        cluster.query(SHADY_BLOCK, at_site="top")
        totals = collect_fault_counters(cluster.agents)
        assert totals["retries"] == 2
        assert totals["subquery_failures"] == 3
        assert totals["failed_subqueries"] == 1
        assert totals["partial_gathers"] == 1
        assert totals["dns_refreshes"] == 2
        assert totals["breakers"]["top"]["shady"]["consecutive_failures"] == 3


class TestBadInputs:
    def test_syntactically_bad_query_raises_cleanly(self, paper_cluster):
        from repro.xpath.errors import XPathSyntaxError

        with pytest.raises(XPathSyntaxError):
            paper_cluster.query("/a[unclosed")

    def test_ordered_construct_rejected(self, paper_cluster):
        from repro.xpath.errors import XPathUnsupportedError

        with pytest.raises(XPathUnsupportedError):
            paper_cluster.query("/usRegion[@id='NE']/state[1]")

    def test_update_to_unknown_node_fails_loudly(self, paper_cluster):
        from repro.core import UnknownNodeError
        from repro.net import NameNotFound

        sa = paper_cluster.add_sensing_agent("sa-x", [])
        ghost = OAKLAND + (("block", "1"), ("parkingSpace", "999"))
        # Fails at DNS resolution (the node was never registered); a
        # stale-but-resolvable path would fail at the owner instead.
        with pytest.raises((UnknownNodeError, NameNotFound)):
            sa.send_update(ghost, values={"available": "no"})

    def test_unknown_message_kind_rejected_by_oa(self, paper_cluster):
        class _Weird:
            kind = "weird"
            message_id = 1

            def encoded_size(self):
                return 1

        with pytest.raises(NetError):
            paper_cluster.agent("top").handle_message(_Weird())


class TestCorruptionDetection:
    def test_invalid_status_attribute_detected(self, paper_cluster):
        element = paper_cluster.database("top").find(SHADYSIDE)
        element.set("status", "half-done")
        problems = structural_violations(paper_cluster.database("top"))
        assert any("invalid status" in p for p in problems)

    def test_duplicate_sibling_ids_detected(self, paper_cluster):
        from repro.xmlkit import Element

        city = paper_cluster.database("top").find(OAKLAND[:-1])
        rogue = Element("neighborhood", attrib={"id": "Oakland"})
        city.append(rogue)
        problems = structural_violations(paper_cluster.database("top"))
        assert any("duplicate sibling id" in p for p in problems)


class TestKillRestartChaos:
    """Agent-level process death composed with the circuit breakers.

    The transport-level crash()/recover() schedule keeps the victim's
    memory alive; kill_agent/restart_agent destroy it and bring it
    back through the durability subsystem -- so the half-open probe
    that re-opens a circuit lands on a *freshly recovered* site, and
    the answer it carries must still match the pre-kill baseline.
    """

    def _durable_chaos_cluster(self, tmp_path, breaker_clock):
        from repro.durability import DurabilityConfig

        network = FaultyNetwork(LoopbackNetwork(), seed=11)
        cluster = Cluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
            network=network,
            durability=DurabilityConfig(
                directory=str(tmp_path / "durability"), sync_every=0),
            clock=lambda: 1000.0,
            oa_config=OAConfig(
                retry_policy=fast_retries(max_attempts=1),
                breaker=BreakerPolicy(failure_threshold=2,
                                      reset_timeout=30.0,
                                      clock=breaker_clock)))
        cluster.bind_lifecycle(network)
        return cluster, network

    def test_half_open_probe_hits_recovered_site(self, tmp_path):
        clock = {"now": 0.0}
        cluster, network = self._durable_chaos_cluster(
            tmp_path, lambda: clock["now"])
        # Baseline straight from the owner -- leaving top's cache cold
        # so its gathers genuinely need the (soon-dead) site.
        baseline, _, outcome = cluster.query(SHADY_BLOCK, at_site="shady")
        assert outcome.complete
        shady_before = cluster.database("shady")
        from repro.durability import partition_fingerprint

        fingerprint = partition_fingerprint(shady_before)

        # Process death: transport severed AND agent state destroyed.
        network.kill_agent("shady")
        for _ in range(2):  # trip top's breaker for shady
            _, _, degraded = cluster.query(SHADY_BLOCK, at_site="top")
            assert not degraded.complete
        top = cluster.agent("top")
        assert top.health_snapshot()["shady"]["state"] == OPEN

        # While the circuit is open the dead site sees zero traffic.
        _, _, still_open = cluster.query(SHADY_BLOCK, at_site="top")
        assert not still_open.complete
        assert top.stats["circuit_fast_fails"] >= 1

        # Recovery from WAL + checkpoint, then the reset timeout
        # elapses: the half-open probe lands on the recovered site.
        network.restart_agent("shady")
        assert partition_fingerprint(
            cluster.database("shady")) == fingerprint
        clock["now"] = 31.0
        results, _, healed = cluster.query(SHADY_BLOCK, at_site="top")
        assert healed.complete
        assert answer_set(results) == answer_set(baseline)
        assert top.health_snapshot()["shady"]["state"] == CLOSED
        assert network.fault_stats["agent_kills"] == 1
        assert network.fault_stats["agent_restarts"] == 1
        cluster.shutdown()

    def test_probe_against_still_dead_site_reopens(self, tmp_path):
        clock = {"now": 0.0}
        cluster, network = self._durable_chaos_cluster(
            tmp_path, lambda: clock["now"])
        network.kill_agent("oak")
        for _ in range(2):
            cluster.query(FIGURE2_QUERY, at_site="top")
        top = cluster.agent("top")
        assert top.health_snapshot()["oak"]["state"] == OPEN

        clock["now"] = 31.0  # probe fires -- but oak is still dead
        _, _, outcome = cluster.query(FIGURE2_QUERY, at_site="top")
        assert not outcome.complete
        assert top.health_snapshot()["oak"]["state"] == OPEN
        assert top.health_snapshot()["oak"]["probes"] >= 1

        # A later probe after recovery heals the circuit.
        network.restart_agent("oak")
        clock["now"] = 62.0
        _, _, healed = cluster.query(FIGURE2_QUERY, at_site="top")
        assert healed.complete
        assert top.health_snapshot()["oak"]["state"] == CLOSED
        cluster.shutdown()
