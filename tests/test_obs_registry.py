"""Unified metrics registry: primitives, collectors, snapshots."""

import pytest

from repro.net import Cluster, FaultyNetwork, LoopbackNetwork
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cluster_metrics,
    engine_counters,
    fault_counters,
    site_metrics,
)
from repro.sim.metrics import collect_engine_counters, collect_fault_counters


class TestPrimitives:
    def test_counter(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_gauge(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 5

    def test_histogram_summary(self):
        histogram = Histogram("latency")
        for value in (1, 2, 3, 4):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == 10.0
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 4.0
        assert snapshot["mean"] == 2.5
        assert snapshot["p95"] == 4.0

    def test_histogram_reservoir_is_bounded(self):
        histogram = Histogram("latency", keep_recent=10)
        for value in range(100):
            histogram.observe(value)
        assert histogram.count == 100
        assert len(histogram._recent) == 10
        # Percentiles reflect the most recent window.
        assert histogram.percentile(0.0) == 90.0


class TestRegistry:
    def test_get_or_make_is_idempotent(self):
        registry = MetricsRegistry("r")
        assert registry.counter("a") is registry.counter("a")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry("r")
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_snapshot_includes_primitives_and_collectors(self):
        registry = MetricsRegistry("r")
        registry.counter("hits").inc(3)
        registry.register_collector("legacy", lambda: {"x": 1})
        snapshot = registry.snapshot()
        assert snapshot["hits"] == 3
        assert snapshot["legacy"] == {"x": 1}

    def test_collector_failure_reported_in_band(self):
        registry = MetricsRegistry("r")

        def broken():
            raise RuntimeError("nope")

        registry.register_collector("broken", broken)
        registry.register_collector("fine", lambda: {"ok": True})
        snapshot = registry.snapshot()
        assert "RuntimeError" in snapshot["broken"]["error"]
        assert snapshot["fine"] == {"ok": True}


class TestAggregations:
    def test_back_compat_aliases_agree(self, paper_cluster):
        paper_cluster.query(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
            "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
            "/block[@id='1']/parkingSpace[available='yes']")
        databases = {site: agent.database
                     for site, agent in paper_cluster.agents.items()}
        assert collect_engine_counters(databases) == \
            engine_counters(databases)
        assert collect_fault_counters(paper_cluster.agents) == \
            fault_counters(paper_cluster.agents)

    def test_site_metrics_absorbs_every_surface(self, paper_cluster):
        agent = paper_cluster.agents["top"]
        paper_cluster.query(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
            "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
            "/block[@id='1']/parkingSpace[available='yes']",
            at_site="top")
        snapshot = site_metrics(agent)
        for section in ("oa", "gather", "database", "dns_cache",
                        "continuous", "engine", "breakers"):
            assert section in snapshot
        # The collectors mirror the live dicts, not stale copies.
        assert snapshot["oa"] == agent.stats
        assert snapshot["gather"]["queries"] >= 1

    def test_cluster_metrics_rolls_up_sites(self, paper_cluster):
        snapshot = cluster_metrics(paper_cluster)
        assert set(snapshot["sites"]) == set(paper_cluster.agents)
        assert "engine" in snapshot and "faults" in snapshot
        assert snapshot["cluster"] == paper_cluster.stats

    def test_cluster_metrics_survives_wrapped_network(self, paper_doc,
                                                      paper_plan):
        network = FaultyNetwork(LoopbackNetwork(), seed=3, drop_rate=0.0)
        cluster = Cluster(paper_doc, paper_plan, network=network)
        snapshot = cluster.metrics()
        # The wrapper hides the traffic log; the snapshot simply omits
        # that section instead of blowing up.
        assert "sites" in snapshot
        assert "dns_server" in snapshot

    def test_agent_and_cluster_methods(self, paper_cluster):
        assert paper_cluster.metrics()["sites"].keys() == \
            paper_cluster.agents.keys()
        agent = paper_cluster.agents["oak"]
        assert agent.metrics()["database"] == agent.database.stats
