"""Unit tests for the query analyses: all the paper's worked examples."""

from repro.xpath import parse
from repro.xpath.analysis import (
    classify_predicate,
    dns_name_for_id_path,
    earliest_nested_reference_index,
    extract_id_path,
    nesting_depth,
    result_tag_names,
    sanitize_dns_label,
    single_id_value,
    split_predicates,
)

FIGURE2 = (
    "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
    "/city[@id='Pittsburgh']"
    "/neighborhood[@id='Oakland' OR @id='Shadyside']"
    "/block[@id='1']/parkingSpace[available='yes']"
)


class TestIdPathExtraction:
    def test_figure2_lca_is_pittsburgh(self):
        path = extract_id_path(parse(FIGURE2))
        assert path == [("usRegion", "NE"), ("state", "PA"),
                        ("county", "Allegheny"), ("city", "Pittsburgh")]

    def test_full_single_target_path(self):
        path = extract_id_path(parse("/a[@id='1']/b[@id='2']/c[@id='3']"))
        assert path == [("a", "1"), ("b", "2"), ("c", "3")]

    def test_stops_at_wildcard(self):
        assert extract_id_path(parse("/a[@id='1']/*/c[@id='3']")) == \
            [("a", "1")]

    def test_stops_at_missing_id(self):
        assert extract_id_path(parse("/a[@id='1']/b/c[@id='3']")) == \
            [("a", "1")]

    def test_stops_at_descendant(self):
        assert extract_id_path(parse("/a[@id='1']//c[@id='3']")) == \
            [("a", "1")]

    def test_relative_query_has_no_prefix(self):
        assert extract_id_path(parse("a[@id='1']")) == []

    def test_conjunction_with_other_predicates_still_pins(self):
        path = extract_id_path(
            parse("/a[@id='1' and @zipcode='15213']/b[@id='2']"))
        assert path == [("a", "1"), ("b", "2")]

    def test_reversed_equality(self):
        assert extract_id_path(parse("/a['1' = @id]")) == [("a", "1")]

    def test_single_id_value_disjunction_is_none(self):
        step = parse("/a[@id='x' or @id='y']").steps[0]
        assert single_id_value(step) is None

    def test_single_id_value_contradiction_is_none(self):
        step = parse("/a[@id='x' and @id='y']").steps[0]
        assert single_id_value(step) is None


class TestDnsNames:
    def test_paper_name(self):
        path = extract_id_path(parse(FIGURE2))
        assert dns_name_for_id_path(path) == \
            "pittsburgh.allegheny.pa.ne.parking.intel-iris.net"

    def test_custom_service_zone(self):
        assert dns_name_for_id_path([("a", "X")], service="coast",
                                    zone="example.org") == \
            "x.coast.example.org"

    def test_label_sanitization(self):
        assert sanitize_dns_label("New York") == "new-york"
        assert sanitize_dns_label("Squirrel.Hill") == "squirrel-hill"
        assert sanitize_dns_label("") == "x"
        assert sanitize_dns_label("--a--") == "a"


class TestNestingDepth:
    """Exactly the examples below Definition 3.3."""

    def test_example_1(self):
        assert nesting_depth(parse("/a[@id='x']/b[@id='y']/c"),
                             {"a", "b", "c"}) == 0

    def test_example_2(self):
        assert nesting_depth(parse("/a[@id='x']//c"), {"a", "c"}) == 0

    def test_example_3_idable(self):
        assert nesting_depth(parse("/a[./b/c]/b"), {"b"}) == 1

    def test_example_3_not_idable(self):
        assert nesting_depth(parse("/a[./b/c]/b"), set()) == 0

    def test_example_4(self):
        query = parse("/a[count(./b/c) = 5]/b")
        assert nesting_depth(query, {"b"}) == 1
        assert nesting_depth(query, set()) == 0

    def test_example_5(self):
        query = parse("/a[count(./b[./c[@id='1']])]")
        assert nesting_depth(query, {"c"}) == 2
        assert nesting_depth(query, {"b"}) == 1
        assert nesting_depth(query, set()) == 0

    def test_paper_min_query_depth_1(self):
        query = parse(
            "/block[@id='1']/parkingSpace[not(price > ../parkingSpace/price)]"
        )
        assert nesting_depth(query, {"block", "parkingSpace"}) == 1

    def test_default_assumes_idable(self):
        assert nesting_depth(parse("/a[./b]/c")) == 1

    def test_attribute_only_predicates_are_depth_0(self):
        assert nesting_depth(parse("/a[@x='1'][@y='2']"), {"a"}) == 0


class TestCollectPoint:
    def test_upward_reference_moves_collect_point(self):
        query = parse("/n[@id='o']/block[@id='1']"
                      "/parkingSpace[not(price > ../parkingSpace/price)]")
        index = earliest_nested_reference_index(
            query, {"n", "block", "parkingSpace"})
        assert index == 1  # the block step

    def test_no_nesting_no_collect_point(self):
        assert earliest_nested_reference_index(
            parse("/a[@id='1']/b"), {"a", "b"}) is None

    def test_self_referencing_nested_predicate(self):
        query = parse("/city[./neighborhood[@id='Oakland']]")
        assert earliest_nested_reference_index(
            query, {"city", "neighborhood"}) == 0


class TestPredicateClassification:
    def test_id_only(self):
        predicate = parse("/a[@id='x']").steps[0].predicates[0]
        assert classify_predicate(predicate) == frozenset({"id"})

    def test_consistency(self):
        predicate = parse(
            "/a[timestamp() > current-time() - 30]").steps[0].predicates[0]
        assert classify_predicate(predicate) == frozenset({"consistency"})

    def test_other(self):
        predicate = parse("/a[available='yes']").steps[0].predicates[0]
        assert classify_predicate(predicate) == frozenset({"other"})

    def test_context_free(self):
        predicate = parse("/a[true()]").steps[0].predicates[0]
        assert classify_predicate(predicate) == frozenset()

    def test_split_clean(self):
        step = parse("/a[@id='x'][available='yes']"
                     "[timestamp() > current-time() - 9]").steps[0]
        split = split_predicates(step.predicates)
        assert split.separable
        assert len(split.id_predicates) == 1
        assert len(split.rest_predicates) == 1
        assert len(split.consistency_predicates) == 1

    def test_split_and_conjunction(self):
        step = parse("/a[@id='x' and available='yes']").steps[0]
        split = split_predicates(step.predicates)
        assert split.separable
        assert [p.unparse() for p in split.id_predicates] == ["@id = 'x'"]
        assert [p.unparse() for p in split.rest_predicates] == \
            ["available = 'yes'"]

    def test_split_or_mixture_not_separable(self):
        step = parse("/a[@id='x' or available='yes']").steps[0]
        split = split_predicates(step.predicates)
        assert not split.separable
        assert len(split.rest_predicates) == 1

    def test_id_disjunction_is_separable(self):
        step = parse("/a[@id='x' or @id='y']").steps[0]
        split = split_predicates(step.predicates)
        assert split.separable
        assert len(split.id_predicates) == 1


class TestResultTags:
    def test_named_final_step(self):
        assert result_tag_names(parse("/a/b/c")) == {"c"}

    def test_wildcard(self):
        assert result_tag_names(parse("/a/*")) == {"*"}

    def test_root(self):
        assert result_tag_names(parse("/")) == {"*"}
