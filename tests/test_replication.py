"""Read replication: k-replica ownership, freshness failover, recovery.

The tentpole robustness property, exercised end to end: owners push
their fragments to the k ring-successor peers; when a gather exhausts
its retries against a dead owner, the asker serves the region from a
replica **only** when the copy's stamps satisfy the query's freshness
bound (annotated ``served_by_replica``); a too-stale copy degrades to
the ordinary partial answer annotated ``replica_too_stale``; and a
site restarting after a kill rehydrates its fragment from peer
replicas before falling back to WAL replay.  With the subsystem
disabled the wire is byte-identical to a replication-free build.
"""

import pytest

from repro.core import PartitionPlan
from repro.core.status import Status, get_status
from repro.net import (
    BreakerPolicy,
    Cluster,
    FaultyNetwork,
    LoopbackNetwork,
    NetError,
    OAConfig,
)
from repro.core.errors import QueryRoutingError
from repro.net.tcpruntime import TcpCluster
from repro.replication import (
    ReplicationConfig,
    freshness_bound,
    replica_peers,
)
from repro.xmlkit import parse_fragment

from tests.conftest import (
    FIGURE2_QUERY,
    OAKLAND,
    PAPER_DOCUMENT,
    id_path,
)
from tests.test_failure_injection import (
    OAK_BLOCK,
    PAPER_PLAN,
    SHADY_BLOCK,
    answer_set,
    fast_retries,
)

FRESH_OAK_BLOCK = OAK_BLOCK + "[timestamp() > current-time() - 30]"


def replicated_cluster(k=2, network=None, clock=None, oa_config=None,
                       durability=None, count_bytes=False,
                       replication=None):
    return Cluster(
        parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
        oa_config=oa_config or OAConfig(retry_policy=fast_retries(),
                                        partial_answers=True),
        network=network, clock=clock, count_bytes=count_bytes,
        durability=durability,
        replication=(ReplicationConfig(k=k) if replication is None
                     else replication),
    )


class TestReplicaRing:
    SITES = ["etna", "oak", "shady", "top"]

    def test_ring_successors(self):
        assert replica_peers("oak", self.SITES, 2) == ["shady", "top"]
        assert replica_peers("top", self.SITES, 2) == ["etna", "oak"]
        assert replica_peers("shady", self.SITES, 1) == ["top"]

    def test_k_capped_by_ring_size(self):
        assert replica_peers("oak", self.SITES, 99) == \
            ["shady", "top", "etna"]

    def test_degenerate_rings(self):
        assert replica_peers("oak", self.SITES, 0) == []
        assert replica_peers("ghost", self.SITES, 2) == []
        assert replica_peers("solo", ["solo"], 2) == []

    def test_order_independent_of_input_order(self):
        shuffled = ["top", "shady", "etna", "oak"]
        assert replica_peers("oak", shuffled, 2) == \
            replica_peers("oak", self.SITES, 2)

    def test_config_disabled_when_k_zero(self):
        assert not ReplicationConfig(k=0).enabled
        assert not ReplicationConfig(k=2, enabled=False).enabled
        assert ReplicationConfig(k=1).enabled


class TestFreshnessBound:
    def test_unconstrained_query_has_no_bound(self):
        assert freshness_bound(OAK_BLOCK) is None

    def test_canonical_consistency_predicate(self):
        assert freshness_bound(FRESH_OAK_BLOCK) == 30.0

    def test_tightest_bound_wins(self):
        query = ("/usRegion[@id='NE'][timestamp() > current-time() - 120]"
                 "/state[@id='PA'][timestamp() > current-time() - 45]")
        assert freshness_bound(query) == 45.0

    def test_scalar_wrapper_unwrapped(self):
        assert freshness_bound(f"count({FRESH_OAK_BLOCK})") == 30.0

    def test_garbage_is_unbounded(self):
        assert freshness_bound("not an xpath ((((") is None


class TestFailoverServesFreshReplica:
    """Owner crash mid-gather: the replica's answer is byte-identical."""

    def _cluster(self):
        network = FaultyNetwork(LoopbackNetwork(), seed=0)
        cluster = replicated_cluster(k=2, network=network)
        cluster.bind_lifecycle(network)
        return cluster, network

    def test_replica_answer_matches_owner_answer(self):
        cluster, network = self._cluster()
        baseline, _, outcome = cluster.query(FIGURE2_QUERY, at_site="top")
        assert outcome.complete

        network.kill_agent("oak")
        results, _, failed_over = cluster.query(FIGURE2_QUERY,
                                                at_site="top")
        assert failed_over.complete
        assert answer_set(results) == answer_set(baseline)
        report = failed_over.completeness_report()
        assert report["complete"] is True
        assert report["unreachable"] == []
        [served] = report["served_by_replica"]
        assert served["owner"] == "oak"
        assert served["replica"] in ("shady", "top")
        served_path = tuple(map(tuple, served["id_path"]))
        assert served_path[:len(OAKLAND)] == OAKLAND

    def test_failover_counters_and_driver_stats(self):
        cluster, network = self._cluster()
        network.kill_agent("oak")
        cluster.query(OAK_BLOCK, at_site="top")
        top = cluster.agent("top")
        counters = top.replication.counters()
        assert counters["failover_attempts"] >= 1
        assert counters["failover_served"] >= 1
        assert top.driver.stats["replica_served"] >= 1

    def test_scalar_probe_still_degrades(self):
        """Replicas hold data, not evaluators: scalar probes fail over
        to nothing (the legacy partial-answer contract)."""
        from repro.core.answer import Subquery
        from repro.core.gather import SubqueryFailure

        cluster, network = self._cluster()
        network.kill_agent("oak")
        top = cluster.agent("top")
        probe = Subquery(f"boolean({OAK_BLOCK})", OAKLAND,
                         Subquery.NESTED_PROBE, scalar=True)
        [reply] = top.replication.failover("oak", [probe], attempts=3,
                                           causes=["dead"])
        assert isinstance(reply, SubqueryFailure)
        assert "scalar" in reply.cause


class TestStaleReplicaDegrades:
    def _aged_cluster(self):
        clock = {"now": 0.0}
        network = FaultyNetwork(LoopbackNetwork(), seed=0)
        cluster = replicated_cluster(k=2, network=network,
                                     clock=lambda: clock["now"])
        cluster.bind_lifecycle(network)
        return cluster, network, clock

    def test_stale_copy_refused_and_annotated(self):
        cluster, network, clock = self._aged_cluster()
        network.kill_agent("oak")
        clock["now"] = 100.0  # replica stamps are from t=0

        results, _, outcome = cluster.query(FRESH_OAK_BLOCK, at_site="top")
        assert not outcome.complete
        assert results == []
        report = outcome.completeness_report()
        assert report["served_by_replica"] == []
        [stale] = report["replica_too_stale"]
        assert any("too stale" in cause for cause in stale["causes"])
        # Excised like an unreachable region, but reported under its
        # own heading -- not double-counted as plain unreachable.
        assert report["unreachable"] == []
        top = cluster.agent("top")
        assert top.replication.counters()["replica_too_stale"] >= 1

    def test_unbounded_query_accepts_old_copy(self):
        cluster, network, clock = self._aged_cluster()
        baseline, _, _ = cluster.query(OAK_BLOCK, at_site="top")
        cluster2, network2, clock2 = self._aged_cluster()
        network2.kill_agent("oak")
        clock2["now"] = 100.0
        results, _, outcome = cluster2.query(OAK_BLOCK, at_site="top")
        assert outcome.complete
        assert answer_set(results) == answer_set(baseline)
        [served] = outcome.completeness_report()["served_by_replica"]
        assert served["age"] == pytest.approx(100.0)


class TestDoubleFailureTerminates:
    def test_owner_and_replica_both_dead_degrades(self):
        network = FaultyNetwork(LoopbackNetwork(), seed=0)
        cluster = replicated_cluster(k=1, network=network)
        cluster.bind_lifecycle(network)
        # oak's only replica (k=1) is shady; kill both.
        network.kill_agent("oak")
        network.kill_agent("shady")
        results, _, outcome = cluster.query(OAK_BLOCK, at_site="top")
        assert not outcome.complete
        assert results == []
        report = outcome.completeness_report()
        assert report["replica_too_stale"] == []
        assert report["served_by_replica"] == []
        assert len(report["unreachable"]) == 1
        assert outcome.unreachable_paths

    def test_strict_mode_raises_when_no_fresh_replica(self):
        network = FaultyNetwork(LoopbackNetwork(), seed=0)
        cluster = replicated_cluster(
            k=1, network=network,
            oa_config=OAConfig(retry_policy=fast_retries(),
                               partial_answers=False))
        cluster.bind_lifecycle(network)
        network.kill_agent("oak")
        network.kill_agent("shady")
        with pytest.raises((OSError, NetError)):
            cluster.query(OAK_BLOCK, at_site="top")


class TestWireParity:
    """Disabled replication leaves the wire byte-identical."""

    QUERIES = (FIGURE2_QUERY, SHADY_BLOCK, OAK_BLOCK)

    def _traffic(self, replication):
        cluster = Cluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
            oa_config=OAConfig(retry_policy=fast_retries()),
            count_bytes=True, replication=replication)
        for query in self.QUERIES:
            cluster.query(query, at_site="top")
        cluster.scalar(f"count({OAK_BLOCK})", at_site="top")
        return (cluster.network.traffic.messages,
                cluster.network.traffic.bytes)

    def test_disabled_config_is_byte_identical_to_absent(self):
        absent = self._traffic(None)
        disabled = self._traffic(ReplicationConfig(k=2, enabled=False))
        k_zero = self._traffic(ReplicationConfig(k=0))
        assert disabled == absent
        assert k_zero == absent

    def test_enabled_config_does_add_traffic(self):
        # Guard the guard: the parity assertion above is vacuous if
        # enabling the subsystem were also traffic-neutral.
        enabled = self._traffic(ReplicationConfig(k=2))
        absent = self._traffic(None)
        assert enabled[1] > absent[1]


class TestPeerRehydration:
    def test_restart_without_durability_rehydrates(self):
        cluster = replicated_cluster(k=2)
        baseline, _, _ = cluster.query(OAK_BLOCK, at_site="top")
        cluster.kill_site("oak")
        agent = cluster.restart_site("oak")
        assert cluster.stats["site_rehydrations"] == 1
        assert cluster.stats["rehydrated_bytes"] > 0
        # Ownership is restored, not just cached data.
        element = agent.database.find(OAKLAND)
        assert get_status(element) is Status.OWNED
        results, _, outcome = cluster.query(OAK_BLOCK, at_site="top")
        assert outcome.complete
        assert answer_set(results) == answer_set(baseline)

    def test_restart_without_durability_or_replicas_still_fails(self):
        cluster = replicated_cluster(k=1)
        cluster.kill_site("oak")
        cluster.kill_site("shady")  # oak's only replica
        with pytest.raises(QueryRoutingError):
            cluster.restart_site("oak")

    def test_rehydrated_restart_checkpoints_over_stale_wal(self, tmp_path):
        from repro.durability import DurabilityConfig

        cluster = replicated_cluster(
            k=2,
            durability=DurabilityConfig(directory=str(tmp_path / "wal"),
                                        sync_every=0))
        cluster.kill_site("oak")
        agent = cluster.restart_site("oak")
        # Peer copies win over checkpoint+WAL; the rehydrated state is
        # re-checkpointed so a second crash does not replay a stale
        # journal over it.
        assert cluster.stats["site_rehydrations"] == 1
        assert agent.durability.counters()["checkpoints_written"] >= 1
        _, _, outcome = cluster.query(OAK_BLOCK, at_site="top")
        assert outcome.complete

    def test_wal_fallback_when_replicas_unreachable(self, tmp_path):
        from repro.durability import DurabilityConfig

        network = FaultyNetwork(LoopbackNetwork(), seed=0)
        cluster = replicated_cluster(
            k=1, network=network,
            durability=DurabilityConfig(directory=str(tmp_path / "wal"),
                                        sync_every=0))
        cluster.bind_lifecycle(network)
        network.kill_agent("oak")
        network.kill_agent("shady")  # oak's only replica
        network.restart_agent("oak")
        # No replica answered: the site recovered from WAL+checkpoint.
        assert cluster.stats["site_rehydrations"] == 0
        agent = cluster.agent("oak")
        assert agent.durability.counters()["recoveries"] == 1
        assert get_status(agent.database.find(OAKLAND)) is Status.OWNED


class TestVersionStamps:
    def test_reordered_older_batch_is_dropped(self):
        cluster = replicated_cluster(k=2)
        oak = cluster.agent("oak")
        shady = cluster.agent("shady")
        from repro.net.messages import ReplicateMessage

        before = shady.replication.stats["replica_batches_stale_dropped"]
        current = oak.database.root.subtree_version
        stale = ReplicateMessage(
            "oak", None,
            {OAKLAND: (0.0, current - 1000)}, sender="oak")
        assert shady.replication.accept(stale) == 0
        assert shady.replication.stats["replica_batches_stale_dropped"] \
            == before + 1

    def test_update_triggers_re_replication(self):
        cluster = replicated_cluster(k=2)
        oak = cluster.agent("oak")
        batches_before = oak.replication.stats["replicated_batches"]
        space = OAKLAND + (("block", "1"), ("parkingSpace", "1"))
        from repro.net.messages import UpdateMessage

        oak.handle_message(UpdateMessage(
            space, values={"available": "no"}, sender="sensor"))
        assert oak.replication.stats["replicated_batches"] > batches_before


class TestTcpReplication:
    def _tcp(self, **kwargs):
        return TcpCluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
            oa_config=OAConfig(retry_policy=fast_retries(),
                               partial_answers=True,
                               breaker=BreakerPolicy(failure_threshold=3,
                                                     reset_timeout=0.05)),
            replication=ReplicationConfig(k=2), **kwargs)

    def test_kill_failover_restart_over_sockets(self):
        with self._tcp() as tcp:
            baseline, _, outcome = tcp.cluster.query(FIGURE2_QUERY,
                                                     at_site="top")
            assert outcome.complete
            tcp.kill_site("oak")
            results, _, failed_over = tcp.cluster.query(FIGURE2_QUERY,
                                                        at_site="top")
            assert failed_over.complete
            assert answer_set(results) == answer_set(baseline)
            [served] = \
                failed_over.completeness_report()["served_by_replica"]
            assert served["owner"] == "oak"

            tcp.restart_site("oak")
            assert tcp.cluster.stats["site_rehydrations"] == 1
            results, _, healed = tcp.cluster.query(FIGURE2_QUERY,
                                                   at_site="top")
            assert healed.complete
            assert answer_set(results) == answer_set(baseline)

    def test_pipelined_runtime_carries_replication(self):
        with self._tcp(runtime="reactor", pipelining=True) as tcp:
            baseline, _, outcome = tcp.cluster.query(FIGURE2_QUERY,
                                                     at_site="top")
            assert outcome.complete
            tcp.kill_site("oak")
            results, _, failed_over = tcp.cluster.query(FIGURE2_QUERY,
                                                        at_site="top")
            assert failed_over.complete
            assert answer_set(results) == answer_set(baseline)


class TestObservability:
    def test_metrics_surfaces(self):
        cluster = replicated_cluster(k=2)
        cluster.query(FIGURE2_QUERY, at_site="top")
        metrics = cluster.metrics()
        assert metrics["replication"]["replicated_batches"] > 0
        assert set(metrics["health"]) == set(cluster.agents)
        site = metrics["sites"]["oak"]["replication"]
        assert site["peers"] == ["shady", "top"]

    def test_disabled_cluster_has_health_but_no_replication(self):
        cluster = Cluster(parse_fragment(PAPER_DOCUMENT),
                          PartitionPlan(PAPER_PLAN),
                          oa_config=OAConfig(retry_policy=fast_retries()))
        metrics = cluster.metrics()
        assert "replication" not in metrics
        assert set(metrics["health"]) == set(cluster.agents)

    def test_explain_lists_failover_candidates(self):
        cluster = replicated_cluster(k=2)
        report = cluster.explain(FIGURE2_QUERY)
        assert report.replication["k"] == 2
        oak_entries = [entry for entry in report.plan
                       if entry["target"] == "oak"]
        assert oak_entries
        assert all(entry["replicas"] == ["shady", "top"]
                   for entry in oak_entries)
        rendered = report.render()
        assert "failover: shady, top" in rendered
        assert "replication: k=2" in rendered
        assert report.to_dict()["replication"]["enabled"] is True
