"""Unit tests for the durability substrate: WAL framing + checkpoints."""

import json
import os
import struct
import zlib

import pytest

from repro.durability import (
    WalRecord,
    WriteAheadLog,
    latest_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.durability.checkpoint import (
    CheckpointError,
    checkpoint_path,
    list_checkpoints,
    prune_checkpoints,
)
from repro.durability.wal import MAX_RECORD_BYTES, WalError, _scan_frames
from repro.xmlkit import parse_fragment, serialize


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestWalFraming:
    def test_append_and_recover_roundtrip(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=0)
        for index in range(5):
            wal.append({"kind": "update", "value": index})
        wal.close()

        reopened = WriteAheadLog(log_path, sync_every=0)
        assert [r["value"] for r in reopened.recovered_records] == \
            [0, 1, 2, 3, 4]
        assert [r.lsn for r in reopened.recovered_records] == \
            [1, 2, 3, 4, 5]
        assert reopened.next_lsn == 6
        reopened.close()

    def test_append_returns_monotonic_lsns(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=0)
        lsns = [wal.append({"kind": "update"}) for _ in range(4)]
        assert lsns == [1, 2, 3, 4]
        assert wal.last_lsn == 4
        wal.close()

    def test_torn_tail_truncated_on_open(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=0)
        wal.append({"kind": "update", "value": "keep"})
        wal.close()
        intact_size = os.path.getsize(log_path)
        with open(log_path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x30partial-frame")  # torn tail

        reopened = WriteAheadLog(log_path, sync_every=0)
        assert len(reopened.recovered_records) == 1
        assert reopened.recovered_records[0]["value"] == "keep"
        assert reopened.stats["torn_bytes_dropped"] > 0
        assert os.path.getsize(log_path) == intact_size
        reopened.close()

    def test_crc_mismatch_stops_the_scan(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=0)
        wal.append({"kind": "update", "value": "good"})
        wal.close()
        # A validly-framed record with a wrong CRC, then a valid one
        # after it: the scan must stop at the corruption (everything
        # past it is unreachable garbage).
        payload = json.dumps({"kind": "update", "lsn": 2}).encode()
        with open(log_path, "ab") as handle:
            handle.write(struct.pack(">II", len(payload), 0xDEADBEEF))
            handle.write(payload)
            good = json.dumps({"kind": "update", "lsn": 3}).encode()
            handle.write(struct.pack(">II", len(good), zlib.crc32(good)))
            handle.write(good)

        records, _end, torn = _scan_frames(log_path)
        assert [r.lsn for r in records] == [1]
        assert torn > 0

    def test_oversized_length_treated_as_torn(self, log_path):
        with open(log_path, "wb") as handle:
            handle.write(struct.pack(">II", MAX_RECORD_BYTES + 1, 0))
        records, end, torn = _scan_frames(log_path)
        assert records == [] and end == 0 and torn == 8

    def test_non_dict_payload_treated_as_torn(self, log_path):
        payload = json.dumps([1, 2, 3]).encode()
        with open(log_path, "wb") as handle:
            handle.write(struct.pack(">II", len(payload),
                                     zlib.crc32(payload)))
            handle.write(payload)
        records, end, _torn = _scan_frames(log_path)
        assert records == [] and end == 0

    def test_missing_file_is_an_empty_log(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=0)
        assert wal.recovered_records == []
        assert wal.next_lsn == 1
        wal.close()

    def test_oversized_record_refused(self, log_path, monkeypatch):
        monkeypatch.setattr("repro.durability.wal.MAX_RECORD_BYTES", 128)
        wal = WriteAheadLog(log_path, sync_every=0)
        with pytest.raises(WalError):
            wal.append({"kind": "update", "blob": "x" * 256})
        wal.close()

    def test_append_after_close_refused(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=0)
        wal.close()
        assert wal.closed
        with pytest.raises(WalError):
            wal.append({"kind": "update"})


class TestWalDurabilityPolicy:
    def test_fsync_batching(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=3)
        for _ in range(7):
            wal.append({"kind": "update"})
        # Group commit: 7 appends at sync_every=3 -> 2 fsyncs (after
        # records 3 and 6), every append flushed to the OS.
        assert wal.stats["fsyncs"] == 2
        assert wal.stats["appends"] == 7
        assert wal.stats["flushes"] >= 7
        wal.flush(sync=True)
        assert wal.stats["fsyncs"] == 3  # the straggler
        wal.close()

    def test_sync_every_zero_never_fsyncs_on_append(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=0)
        for _ in range(10):
            wal.append({"kind": "update"})
        assert wal.stats["fsyncs"] == 0
        wal.close(sync=False)

    def test_reset_empties_file_but_lsn_continues(self, log_path):
        wal = WriteAheadLog(log_path, sync_every=0)
        for _ in range(3):
            wal.append({"kind": "update"})
        assert wal.size_bytes() > 0
        wal.reset()
        assert wal.size_bytes() == 0
        assert wal.append({"kind": "update"}) == 4  # numbering survives
        wal.close()

    def test_start_lsn_resumes_past_checkpoint(self, log_path):
        # An empty log whose checkpoint covers LSN 9: the next record
        # must be 10, not 1, or replay filtering would drop it.
        wal = WriteAheadLog(log_path, sync_every=0, start_lsn=9)
        assert wal.append({"kind": "update"}) == 10
        wal.close()

    def test_wal_record_lsn_shortcut(self):
        record = WalRecord({"lsn": 7, "kind": "update"})
        assert record.lsn == 7
        assert record["kind"] == "update"


class TestCheckpoints:
    def _fragment(self):
        return parse_fragment(
            "<usRegion id='NE' status='owned'>"
            "<state id='PA' status='owned'><population>12</population>"
            "</state></usRegion>")

    def test_write_load_roundtrip(self, tmp_path):
        directory = str(tmp_path)
        root = self._fragment()
        path = write_checkpoint(directory, root, lsn=42, site_id="oak",
                                when=1000.0)
        assert path == checkpoint_path(directory, 42)
        lsn, loaded = load_checkpoint(path)
        assert lsn == 42
        assert loaded.parent is None  # detached from the envelope
        assert serialize(loaded, sort_attributes=True, use_cache=False) == \
            serialize(root, sort_attributes=True, use_cache=False)

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_checkpoint(str(tmp_path), self._fragment(), lsn=1)
        assert [n for n in os.listdir(str(tmp_path))
                if n.endswith(".tmp")] == []

    def test_latest_falls_back_past_corruption(self, tmp_path):
        directory = str(tmp_path)
        write_checkpoint(directory, self._fragment(), lsn=10)
        write_checkpoint(directory, self._fragment(), lsn=20)
        with open(checkpoint_path(directory, 20), "w") as handle:
            handle.write("<not a checkpoint")  # corrupt the newest

        lsn, root, skipped = latest_checkpoint(directory)
        assert lsn == 10 and root is not None and skipped == 1

    def test_latest_with_no_checkpoints(self, tmp_path):
        assert latest_checkpoint(str(tmp_path)) == (0, None, 0)

    def test_load_rejects_wrong_envelope(self, tmp_path):
        path = str(tmp_path / "checkpoint-000000000001.xml")
        with open(path, "w") as handle:
            handle.write("<usRegion id='NE'/>")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_prune_keeps_newest(self, tmp_path):
        directory = str(tmp_path)
        for lsn in (1, 2, 3, 4):
            write_checkpoint(directory, self._fragment(), lsn=lsn)
        removed = prune_checkpoints(directory, keep=2)
        assert removed == 2
        assert [lsn for lsn, _ in list_checkpoints(directory)] == [3, 4]
