"""Distributed tracing: spans, wire context, cross-site trees."""

import pytest

from repro.net import Cluster
from repro.net.messages import Message, QueryMessage
from repro.net.tcpruntime import TcpCluster
from repro.obs.tracing import (
    TRACER,
    TraceContext,
    Tracer,
    assemble_trace,
    attach_context,
    disable_tracing,
    enable_tracing,
    propagate,
    to_trace_node,
)
from repro.xmlkit import parse_fragment

from tests.conftest import PAPER_DOCUMENT


@pytest.fixture
def tracing():
    """The shared tracer, enabled and empty, restored afterwards."""
    TRACER.reset()
    enable_tracing()
    yield TRACER
    disable_tracing()
    TRACER.reset()


class TestTraceContext:
    def test_roundtrip(self):
        ctx = TraceContext("t1", "s9")
        assert TraceContext.decode(ctx.encode()) == ctx

    def test_malformed_decodes_to_none(self):
        assert TraceContext.decode("") is None
        assert TraceContext.decode("no-separator") is None
        assert TraceContext.decode(":orphan") is None


class TestSpans:
    def test_nested_spans_parent_link(self, tracing):
        with tracing.span("outer", site="a") as outer:
            with tracing.span("inner", site="a"):
                pass
        spans = {span.name: span for span in tracing.spans()}
        assert spans["inner"].parent_id == outer.span_id
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["outer"].parent_id is None

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer()
        span = tracer.span("anything")
        with span as active:
            assert active.context is None
        assert tracer.spans() == []

    def test_exception_recorded_as_error_tag(self, tracing):
        with pytest.raises(ValueError):
            with tracing.span("doomed", site="a"):
                raise ValueError("boom")
        (span,) = tracing.spans()
        assert "ValueError" in span.tags["error"]

    def test_remote_parent_links_trace(self, tracing):
        with tracing.span("sender", site="a") as sender:
            ctx = sender.context
        with tracing.span("server", site="b", remote_parent=ctx):
            pass
        spans = {span.name: span for span in tracing.spans()}
        assert spans["server"].trace_id == spans["sender"].trace_id
        assert spans["server"].parent_id == spans["sender"].span_id

    def test_ambient_wins_over_remote_parent(self, tracing):
        foreign = TraceContext("other-trace", "other-span")
        with tracing.span("local", site="a") as local:
            with tracing.span("child", site="a", remote_parent=foreign):
                pass
        child = [s for s in tracing.spans() if s.name == "child"][0]
        assert child.trace_id == local.trace_id

    def test_span_cap_drops_not_grows(self):
        tracer = Tracer(max_spans=2).enable()
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.stats["dropped"] == 2

    def test_propagate_carries_context_across_threads(self, tracing):
        from repro.core.executors import ThreadedExecutor

        def worker(_item):
            with tracing.span("worker"):
                pass
            return tracing.current_trace_id()

        with tracing.span("parent", site="a") as parent:
            trace_ids = ThreadedExecutor(max_workers=2).map(
                propagate(worker), [1, 2])
        assert set(trace_ids) == {parent.trace_id}


class TestWireContext:
    def test_no_context_by_default(self):
        message = QueryMessage("/a", sender="x")
        assert message.trace_ctx is None
        assert "trace" not in message.encode()

    def test_disabled_tracing_is_byte_identical(self):
        plain = QueryMessage("/a", now=1.0, sender="x",
                             message_id=77).encode()
        TRACER.reset()
        enable_tracing()
        try:
            traced = QueryMessage("/a", now=1.0, sender="x",
                                  message_id=77)
            # No span was attached, so nothing changes on the wire.
            assert traced.encode() == plain
        finally:
            disable_tracing()
            TRACER.reset()

    def test_context_roundtrips_through_codec(self, tracing):
        message = QueryMessage("/a", sender="x")
        with tracing.span("send", site="x") as span:
            attach_context(message, span)
            expected = span.context
        decoded = Message.decode(message.encode())
        assert decoded.trace_ctx == expected

    def test_attach_context_with_null_span_is_noop(self):
        tracer = Tracer()  # disabled
        message = QueryMessage("/a", sender="x")
        attach_context(message, tracer.span("off"))
        assert message.trace_ctx is None


class TestDistributedTraces:
    def test_loopback_query_produces_single_tree(self, paper_cluster,
                                                 tracing):
        query = ("/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='Oakland']/block[@id='1']"
                 "/parkingSpace[available='yes']")
        results, _site, _outcome = paper_cluster.query(query)
        assert results
        (trace_id,) = tracing.trace_ids()
        tree = tracing.trace_tree(trace_id)
        assert tree.span.name in ("user-query", "gather")
        assert "oak" in tree.sites_touched()

    def test_three_level_tcp_chain_spans_three_sites(self, tracing):
        from repro.core import PartitionPlan
        from repro.xmlkit import Element

        root = Element("region", attrib={"id": "R"})
        group = Element("group", attrib={"id": "G"})
        sensor = Element("sensor", attrib={"id": "S"})
        sensor.append(Element("value", text="7"))
        group.append(sensor)
        root.append(group)
        plan = PartitionPlan({
            "top": [(("region", "R"),)],
            "mid": [(("region", "R"), ("group", "G"))],
            "leaf": [(("region", "R"), ("group", "G"),
                      ("sensor", "S"))],
        })
        with TcpCluster(root, plan, service="chain") as tcp:
            top = tcp.cluster.agents["top"]
            results, outcome = top.answer_user_query(
                "/region[@id='R']/group[@id='G']/sensor[@id='S']/value")
        assert len(results) == 1 and outcome.complete
        (trace_id,) = tracing.trace_ids()
        spans = tracing.spans(trace_id)
        tree = assemble_trace(spans)
        assert tree.sites_touched() == {"top", "mid", "leaf"}
        # One tree, no orphans: every parent id is a collected span.
        assert tree.span.name != "trace"
        span_ids = {span.span_id for span in spans}
        for span in spans:
            assert span.parent_id is None or span.parent_id in span_ids
        # The serve chain hangs under the hop that dispatched it.
        (mid_serve,) = [n for n in tree.find_all("tcp-serve")
                        if n.span.site == "mid"]
        assert mid_serve.find_all("gather")
        assert [n for n in mid_serve.find_all("tcp-serve")
                if n.span.site == "leaf"]

    def test_export_merges_across_tracers(self, tracing):
        # Simulate two processes: a second tracer's export merges with
        # the shared one's into a single tree via the wire context.
        other = Tracer().enable()
        with tracing.span("client", site="a") as client:
            ctx = client.context
        with other.span("server", site="b", remote_parent=ctx):
            pass
        tree = assemble_trace(tracing.export() + other.export())
        assert tree.span.name == "client"
        assert tree.sites_touched() == {"a", "b"}

    def test_to_trace_node_shape(self, tracing):
        with tracing.span("gather", site="hub") as span:
            span.set_tag("request_size", 100)
            with tracing.span("qeg", site="hub"):
                pass
        tree = assemble_trace(tracing.spans())
        node = to_trace_node(tree)
        assert node.site == "hub"
        assert node.request_size == 100
        assert len(node.children) == 1


class TestWireParityUnderLoad:
    def test_cluster_traffic_identical_with_tracing_off(self,
                                                        monkeypatch):
        """Tracing disabled => the same query leaves identical bytes."""
        query = ("/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='Oakland']/block[@id='1']"
                 "/parkingSpace[available='yes']")

        def run():
            # Pin the message-id sequence: ids are in the envelopes, so
            # both runs must hand out the same ones to compare bytes.
            import itertools

            from repro.net import messages

            monkeypatch.setattr(messages, "_SEQUENCE",
                                itertools.count(1000))
            from repro.core import PartitionPlan

            from tests.conftest import ETNA, OAKLAND, SHADYSIDE, id_path

            plan = PartitionPlan({
                "top": [id_path("usRegion=NE")],
                "oak": [OAKLAND],
                "shady": [SHADYSIDE],
                "etna": [ETNA],
            })
            cluster = Cluster(parse_fragment(PAPER_DOCUMENT), plan,
                              count_bytes=True)
            cluster.query_via_messages(query, now=0.0)
            return cluster.network.traffic.summary()

        baseline = run()
        # An enable/disable cycle in between must leave no residue.
        TRACER.reset()
        enable_tracing()
        disable_tracing()
        TRACER.reset()
        assert run() == baseline
        assert baseline["bytes"] > 0
