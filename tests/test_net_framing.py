"""Edge cases of the shared length-prefixed framing layer.

Both decoding surfaces -- the pull-style :class:`FrameReader` for
blocking sockets and the push-style :class:`FrameAssembler` for event
loops -- must agree on every boundary condition: zero-length frames,
closes mid-frame, headers trickling in one byte at a time (slow
loris), oversized length prefixes, and bursts of pipelined frames
landing in a single read.
"""

import socket
import struct
import threading

import pytest

from repro.net.errors import FrameTooLarge, NetError
from repro.net.framing import (
    HEADER_SIZE,
    FrameAssembler,
    FrameReader,
    encode_frame,
    recv_framed,
    send_framed,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    for sock in (left, right):
        try:
            sock.close()
        except OSError:
            pass


class TestEncodeFrame:
    def test_header_is_big_endian_payload_length(self):
        frame = encode_frame("hello")
        assert frame[:HEADER_SIZE] == struct.pack(">I", 5)
        assert frame[HEADER_SIZE:] == b"hello"

    def test_zero_length_frame_is_just_a_header(self):
        assert encode_frame("") == struct.pack(">I", 0)

    def test_utf8_length_counts_bytes_not_characters(self):
        frame = encode_frame("café")
        (length,) = struct.unpack(">I", frame[:HEADER_SIZE])
        assert length == len("café".encode("utf-8")) == 5


class TestRecvFramed:
    def test_round_trip(self, pair):
        left, right = pair
        send_framed(left, "<m>payload</m>")
        assert recv_framed(right) == "<m>payload</m>"

    def test_zero_length_frame_decodes_to_empty_string(self, pair):
        left, right = pair
        send_framed(left, "")
        assert recv_framed(right) == ""

    def test_clean_close_returns_none(self, pair):
        left, right = pair
        left.close()
        assert recv_framed(right) is None

    def test_close_mid_header_raises(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")  # two of four header bytes
        left.close()
        with pytest.raises(NetError, match="mid-frame"):
            recv_framed(right)

    def test_close_mid_body_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 10) + b"short")
        left.close()
        with pytest.raises(NetError, match="mid-frame"):
            recv_framed(right)

    def test_oversized_prefix_raises_before_reading_body(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 0xFFFFFFFF))
        with pytest.raises(FrameTooLarge) as excinfo:
            recv_framed(right)
        assert excinfo.value.length == 0xFFFFFFFF


class TestFrameReader:
    def test_pipelined_burst_in_one_write(self, pair):
        left, right = pair
        burst = b"".join(encode_frame(f"<m>{i}</m>") for i in range(50))
        left.sendall(burst)
        reader = FrameReader(right)
        assert [reader.recv_frame() for _ in range(50)] == \
            [f"<m>{i}</m>" for i in range(50)]
        assert reader.buffered() == 0

    def test_zero_length_frames_interleaved(self, pair):
        left, right = pair
        left.sendall(encode_frame("") + encode_frame("x") + encode_frame(""))
        reader = FrameReader(right)
        assert reader.recv_frame() == ""
        assert reader.recv_frame() == "x"
        assert reader.recv_frame() == ""

    def test_slow_loris_header_one_byte_at_a_time(self, pair):
        left, right = pair
        frame = encode_frame("<m>slow</m>")
        reader = FrameReader(right)

        def drip():
            for index in range(len(frame)):
                left.sendall(frame[index:index + 1])

        feeder = threading.Thread(target=drip)
        feeder.start()
        try:
            assert reader.recv_frame() == "<m>slow</m>"
        finally:
            feeder.join()

    def test_clean_close_at_boundary_returns_none(self, pair):
        left, right = pair
        send_framed(left, "<m>last</m>")
        left.close()
        reader = FrameReader(right)
        assert reader.recv_frame() == "<m>last</m>"
        assert reader.recv_frame() is None

    def test_close_mid_frame_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 100) + b"only-part")
        left.close()
        reader = FrameReader(right)
        with pytest.raises(NetError, match="mid-frame"):
            reader.recv_frame()

    def test_close_mid_header_raises(self, pair):
        left, right = pair
        left.sendall(b"\x00")
        left.close()
        reader = FrameReader(right)
        with pytest.raises(NetError, match="mid-frame"):
            reader.recv_frame()

    def test_oversized_prefix_raises_with_length(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 1 << 30))
        reader = FrameReader(right, limit=1024)
        with pytest.raises(FrameTooLarge) as excinfo:
            reader.recv_frame()
        assert excinfo.value.length == 1 << 30

    def test_frame_larger_than_initial_buffer_grows_it(self, pair):
        left, right = pair
        payload = "x" * 4096
        reader = FrameReader(right, initial_capacity=64)

        feeder = threading.Thread(target=send_framed, args=(left, payload))
        feeder.start()
        try:
            assert reader.recv_frame() == payload
        finally:
            feeder.join()


class TestFrameAssembler:
    def test_burst_in_one_feed(self):
        assembler = FrameAssembler()
        burst = b"".join(encode_frame(f"<m>{i}</m>") for i in range(20))
        assert assembler.feed(burst) == [f"<m>{i}</m>" for i in range(20)]
        assert assembler.buffered() == 0

    def test_byte_at_a_time_slow_loris(self):
        assembler = FrameAssembler()
        frame = encode_frame("<m>drip</m>")
        payloads = []
        for index in range(len(frame)):
            payloads.extend(assembler.feed(frame[index:index + 1]))
        assert payloads == ["<m>drip</m>"]
        assert assembler.buffered() == 0

    def test_partial_tail_carries_across_feeds(self):
        assembler = FrameAssembler()
        both = encode_frame("<m>a</m>") + encode_frame("<m>b</m>")
        cut = len(both) - 3
        assert assembler.feed(both[:cut]) == ["<m>a</m>"]
        assert assembler.feed(both[cut:]) == ["<m>b</m>"]

    def test_zero_length_frame(self):
        assembler = FrameAssembler()
        assert assembler.feed(encode_frame("")) == [""]

    def test_oversized_prefix_raises_on_header_parse(self):
        assembler = FrameAssembler(limit=1024)
        # The error fires as soon as the header is parsed -- no body
        # bytes are required (or buffered) first.
        with pytest.raises(FrameTooLarge) as excinfo:
            assembler.feed(struct.pack(">I", 1 << 20))
        assert excinfo.value.length == 1 << 20

    def test_empty_feed_returns_nothing(self):
        assembler = FrameAssembler()
        assert assembler.feed(b"") == []
