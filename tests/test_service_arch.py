"""Unit tests for the parking/coastal services and the architectures."""

import pytest

from repro.arch import (
    all_architectures,
    balanced_hot_neighborhood,
    centralized,
    centralized_query_distributed_update,
    distributed_two_level,
    hierarchical,
)
from repro.service import (
    CoastalConfig,
    ParkingConfig,
    QueryWorkload,
    UpdateWorkload,
    all_space_paths,
    build_coastal_document,
    build_parking_document,
    type1_query,
    type2_query,
    type3_query,
    type4_query,
)
from repro.xpath import parse
from repro.xpath.analysis import extract_id_path


class TestParkingGenerator:
    def test_paper_small_dimensions(self):
        config = ParkingConfig.paper_small()
        assert config.total_spaces == 2400
        document = build_parking_document(config)
        assert sum(1 for _ in document.iter("parkingSpace")) == 2400
        assert sum(1 for _ in document.iter("neighborhood")) == 6
        assert sum(1 for _ in document.iter("city")) == 2

    def test_paper_large_is_8x(self):
        small = ParkingConfig.paper_small()
        large = ParkingConfig.paper_large()
        assert large.total_spaces == small.total_spaces * 8

    def test_deterministic_given_seed(self):
        from repro.xmlkit import trees_equal

        config = ParkingConfig.tiny()
        assert trees_equal(build_parking_document(config),
                           build_parking_document(config))

    def test_spaces_have_fields(self):
        document = build_parking_document(ParkingConfig.tiny())
        space = next(document.iter("parkingSpace"))
        assert space.child("available").text in ("yes", "no")
        assert space.child("price") is not None
        assert space.child("meter-hours") is not None

    def test_neighborhood_aggregate_consistent(self):
        document = build_parking_document(ParkingConfig.tiny())
        for neighborhood in document.iter("neighborhood"):
            declared = int(neighborhood.child("available-spaces").text)
            actual = sum(
                1 for s in neighborhood.iter("parkingSpace")
                if s.child("available").text == "yes")
            assert declared == actual

    def test_all_space_paths_resolve(self):
        from repro.core import find_by_id_path

        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        paths = all_space_paths(config)
        assert len(paths) == config.total_spaces
        for path in paths[:10]:
            assert find_by_id_path(document, path) is not None


class TestQueryTypes:
    CONFIG = ParkingConfig.paper_small()

    def test_type1_lca_is_block(self):
        query = type1_query(self.CONFIG, "Pittsburgh", "Oakland", "5")
        path = extract_id_path(parse(query))
        assert path[-1] == ("block", "5")

    def test_type2_lca_is_neighborhood(self):
        query = type2_query(self.CONFIG, "Pittsburgh", "Oakland", "1", "2")
        path = extract_id_path(parse(query))
        assert path[-1] == ("neighborhood", "Oakland")

    def test_type3_lca_is_city(self):
        query = type3_query(self.CONFIG, "Pittsburgh", "Oakland",
                            "Shadyside", "1")
        path = extract_id_path(parse(query))
        assert path[-1] == ("city", "Pittsburgh")

    def test_type4_lca_is_county(self):
        query = type4_query(self.CONFIG, "Pittsburgh", "Philadelphia",
                            "Oakland", "1")
        path = extract_id_path(parse(query))
        assert path[-1] == ("county", "Allegheny")

    def test_selections(self):
        query = type1_query(self.CONFIG, "Pittsburgh", "Oakland", "1",
                            selection="available")
        assert query.endswith("/parkingSpace[available='yes']")
        with pytest.raises(ValueError):
            type1_query(self.CONFIG, "Pittsburgh", "Oakland", "1",
                        selection="bogus")


class TestWorkloads:
    CONFIG = ParkingConfig.paper_small()

    def test_mix_fractions(self):
        workload = QueryWorkload.qw_mix(self.CONFIG, seed=1)
        counts = {}
        for _q, qtype in workload.take(2000):
            counts[qtype] = counts.get(qtype, 0) + 1
        assert counts[1] / 2000 == pytest.approx(0.40, abs=0.05)
        assert counts[2] / 2000 == pytest.approx(0.40, abs=0.05)
        assert counts[3] / 2000 == pytest.approx(0.15, abs=0.04)
        assert counts[4] / 2000 == pytest.approx(0.05, abs=0.03)

    def test_qw_single_type(self):
        workload = QueryWorkload.qw(self.CONFIG, 3, seed=2)
        assert {t for _q, t in workload.take(50)} == {3}

    def test_skew_targets_hot_neighborhood(self):
        workload = QueryWorkload.qw(self.CONFIG, 1, skew=0.9,
                                    hot_city="Pittsburgh",
                                    hot_neighborhood="Oakland", seed=3)
        hot = sum(1 for q, _t in workload.take(500) if "'Oakland'" in q)
        assert hot / 500 > 0.85

    def test_seeded_workloads_reproducible(self):
        a = QueryWorkload.qw_mix(self.CONFIG, seed=7).take(50)
        b = QueryWorkload.qw_mix(self.CONFIG, seed=7).take(50)
        assert a == b

    def test_queries_parse_and_route(self):
        workload = QueryWorkload.qw_mix(self.CONFIG, seed=4)
        for query, _t in workload.take(40):
            assert extract_id_path(parse(query))

    def test_update_workload(self):
        updates = UpdateWorkload(self.CONFIG, seed=5)
        path, values = updates.sample()
        assert path[-1][0] == "parkingSpace"
        assert values["available"] in ("yes", "no")


class TestLiveWorkloadRun:
    def _cluster(self):
        from repro.arch import distributed_two_level
        from repro.net import Cluster

        config = ParkingConfig.tiny()
        arch = distributed_two_level(config)
        return config, Cluster(build_parking_document(config), arch.plan)

    def test_run_live_measures_and_snapshots(self):
        from repro.service import run_live

        config, cluster = self._cluster()
        workload = QueryWorkload.qw(config, 1, seed=11)
        metrics, report = run_live(cluster, workload, count=5, now=0.0)
        assert metrics.completed == 5
        assert metrics.completed_by_type == {1: 5}
        assert len(metrics.latencies) == 5
        assert report["workload"]["completed"] == 5
        assert cluster.stats["client_queries"] == 5
        assert set(report["sites"]) == set(cluster.agents)

    def test_run_live_collects_trace_ids_when_enabled(self):
        from repro.obs.tracing import TRACER, disable_tracing, \
            enable_tracing
        from repro.service import run_live

        config, cluster = self._cluster()
        workload = QueryWorkload.qw(config, 1, seed=12)
        TRACER.reset()
        enable_tracing()
        try:
            _metrics, report = run_live(cluster, workload, count=3,
                                        now=0.0)
            assert len(report["traces"]) == 3
            for trace_id in report["traces"]:
                names = {s.name for s in TRACER.spans(trace_id)}
                assert "workload-query" in names
                assert "gather" in names
        finally:
            disable_tracing()
            TRACER.reset()


class TestArchitectures:
    CONFIG = ParkingConfig.paper_small()

    def test_four_architectures(self):
        archs = all_architectures(self.CONFIG)
        assert [a.name for a in archs] == [
            "centralized", "centralized-query", "distributed-two-level",
            "hierarchical"]

    def test_centralized_single_site(self):
        arch = centralized(self.CONFIG)
        assert arch.plan.sites == ["site-0"]
        assert arch.forced_entry == "site-0"

    def test_arch2_blocks_distributed(self):
        arch = centralized_query_distributed_update(self.CONFIG)
        block_counts = {
            site: sum(1 for p in paths if p[-1][0] == "block")
            for site, paths in arch.plan.assignments.items()}
        workers = [c for s, c in block_counts.items() if s != "site-0"]
        assert sum(workers) == 120  # 6 neighborhoods x 20 blocks
        assert max(workers) - min(workers) <= 1  # round-robin balance

    def test_arch3_same_placement_dns_routing(self):
        arch2 = centralized_query_distributed_update(self.CONFIG)
        arch3 = distributed_two_level(self.CONFIG)
        assert arch3.plan.assignments == arch2.plan.assignments
        assert arch3.forced_entry is None
        assert arch2.forced_entry == "site-0"

    def test_hierarchical_placement(self):
        arch = hierarchical(self.CONFIG)
        kinds = {}
        for site, paths in arch.plan.assignments.items():
            for path in paths:
                kinds.setdefault(path[-1][0], []).append(site)
        assert len(kinds["neighborhood"]) == 6
        assert len(set(kinds["neighborhood"])) == 6  # all distinct sites
        assert len(kinds["city"]) == 2
        assert len(kinds["usRegion"]) == 1

    def test_hierarchical_needs_enough_sites(self):
        with pytest.raises(ValueError):
            hierarchical(self.CONFIG, n_sites=3)

    def test_balanced_spreads_hot_blocks(self):
        arch = balanced_hot_neighborhood(self.CONFIG, "Pittsburgh",
                                         "Oakland")
        hot_block_sites = {
            site
            for site, paths in arch.plan.assignments.items()
            for path in paths
            if len(path) == 6 and path[4] == ("neighborhood", "Oakland")
        }
        assert len(hot_block_sites) == 9

    def test_architectures_build_valid_clusters(self, request):
        from repro.net import Cluster

        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        for arch in all_architectures(config):
            cluster = Cluster(document.copy(), arch.plan)
            assert cluster.validate() == []


class TestCoastal:
    def test_document_shape(self):
        config = CoastalConfig(regions=2, stations_per_region=3)
        document = build_coastal_document(config)
        assert sum(1 for _ in document.iter("station")) == 6
        station = next(document.iter("station"))
        assert station.child("rip-current-risk").text in (
            "low", "medium", "high")

    def test_alert_level_aggregates_risk(self):
        document = build_coastal_document(CoastalConfig())
        for region in document.iter("region"):
            risks = {s.child("rip-current-risk").text
                     for s in region.iter("station")}
            alert = region.child("alert-level").text
            if "high" in risks:
                assert alert == "high"
