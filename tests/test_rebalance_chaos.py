"""Chaos during migration: every step fails, nothing is lost.

Deterministic :meth:`FaultyNetwork.add_trigger` faults aimed at each
step of the take-ownership hand-off prove the protocol is atomic
(complete or roll back, never half-owned), idempotent under duplicated
adopts, eventually consistent after a double message loss (the
DNS-authority reconcile pass), and that queries and updates in flight
during a migration are neither dropped nor answered incorrectly --
stale-DNS stragglers are served by the old owner's demoted copy, and
updates landing inside the hand-off window follow the data to the new
owner.
"""

import pytest

from repro.core import PartitionPlan
from repro.core.errors import CoreError
from repro.core.status import Status, get_status
from repro.net import Cluster, FaultyNetwork, LoopbackNetwork, OAConfig
from repro.net.messages import UpdateMessage
from repro.net.oa import MigrationError
from repro.rebalance import RebalanceConfig
from repro.xmlkit import parse_fragment

from tests.conftest import OAKLAND, PAPER_DOCUMENT
from tests.test_failure_injection import (
    OAK_BLOCK,
    PAPER_PLAN,
    answer_set,
    fast_retries,
)
from tests.test_rebalance import OAK_BLOCK1_PATH, OAK_BLOCK2, skewed_load

SPACE1_PATH = OAK_BLOCK1_PATH + (("parkingSpace", "1"),)


def chaos_cluster():
    network = FaultyNetwork(LoopbackNetwork(), seed=0)
    cluster = Cluster(
        parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
        oa_config=OAConfig(retry_policy=fast_retries(),
                           partial_answers=True),
        network=network,
        rebalance=RebalanceConfig(min_queries=4, overload_ratio=1.5,
                                  adopt_attempts=3),
    )
    cluster.bind_lifecycle(network)
    return cluster, network


def owners_of(cluster, id_path):
    """Every site whose database holds *id_path* with OWNED status."""
    owners = []
    for site, agent in cluster.agents.items():
        element = agent.database.find(id_path)
        if element is not None and get_status(element) is Status.OWNED:
            owners.append(site)
    return sorted(owners)


class TestAdoptRequestDropped:
    """Step 1 lost entirely: the migration rolls back."""

    def _failed_migration(self):
        cluster, network = chaos_cluster()
        baseline = answer_set(cluster.query(OAK_BLOCK, at_site="top")[0])
        skewed_load(cluster)
        network.add_trigger("adopt", action="drop", times=3)
        moves = cluster.balancer.tick()
        return cluster, network, baseline, moves

    def test_rollback_keeps_old_owner(self):
        cluster, network, _, moves = self._failed_migration()
        assert moves == []
        assert cluster.balancer.counters()["migrations_failed"] == 1
        assert cluster.owner_map[OAK_BLOCK1_PATH] == "oak"
        assert cluster.dns.authoritative_site(OAK_BLOCK1_PATH) == "oak"
        assert owners_of(cluster, OAK_BLOCK1_PATH) == ["oak"]
        assert cluster.agents["oak"].stats["migrations_aborted"] == 1

    def test_queries_still_answered(self):
        cluster, _, baseline, _ = self._failed_migration()
        for site in cluster.agents:
            results, _, outcome = cluster.query(OAK_BLOCK, at_site=site)
            assert outcome.complete
            assert answer_set(results) == baseline

    def test_direct_delegate_raises(self):
        cluster, network = chaos_cluster()
        network.add_trigger("adopt", action="drop", times=3)
        with pytest.raises(MigrationError):
            cluster.delegate(OAK_BLOCK1_PATH, "etna")
        assert owners_of(cluster, OAK_BLOCK1_PATH) == ["oak"]


class TestAdoptReplyLost:
    """Step 1 done, ack lost: the retry re-adopts idempotently."""

    def test_reset_then_retry_completes_exactly_once(self):
        cluster, network = chaos_cluster()
        baseline = answer_set(cluster.query(OAK_BLOCK, at_site="top")[0])
        skewed_load(cluster)
        network.add_trigger("adopt", action="reset", times=1)
        [move] = cluster.balancer.tick()
        # The adopter saw the message twice, but ownership is single.
        assert owners_of(cluster, OAK_BLOCK1_PATH) == [move.target]
        assert cluster.owner_map[OAK_BLOCK1_PATH] == move.target
        assert cluster.dns.authoritative_site(OAK_BLOCK1_PATH) == \
            move.target
        assert cluster.balancer.reconcile() == 0
        for site in cluster.agents:
            results, _, outcome = cluster.query(OAK_BLOCK, at_site=site)
            assert outcome.complete
            assert answer_set(results) == baseline


class TestAdopterKilled:
    """The adopter dies on arrival: rollback, queries survive."""

    def test_kill_on_adopt_rolls_back(self):
        cluster, network = chaos_cluster()
        baseline = answer_set(cluster.query(OAK_BLOCK, at_site="top")[0])
        skewed_load(cluster)
        network.add_trigger("adopt", action="kill", times=1)
        moves = cluster.balancer.tick()
        assert moves == []
        assert cluster.balancer.counters()["migrations_failed"] == 1
        assert cluster.owner_map[OAK_BLOCK1_PATH] == "oak"
        assert owners_of(cluster, OAK_BLOCK1_PATH) == ["oak"]
        results, _, outcome = cluster.query(OAK_BLOCK, at_site="oak")
        assert outcome.complete
        assert answer_set(results) == baseline


class TestDoubleLoss:
    """Every adopt ack AND the abort release lost: both sides claim
    the path until the DNS-authority reconcile demotes the adopter."""

    def test_reconcile_restores_single_ownership(self):
        cluster, network = chaos_cluster()
        skewed_load(cluster)
        network.add_trigger("adopt", action="reset", times=3)
        network.add_trigger("migrate-release", action="drop", times=1)
        moves = cluster.balancer.tick()
        assert moves == []
        # The tick force-reconciled after the failure: the adopter's
        # stray OWNED copy is demoted, DNS's owner keeps the path.
        assert cluster.balancer.counters()["reconciled_demotions"] >= 1
        assert owners_of(cluster, OAK_BLOCK1_PATH) == ["oak"]
        assert cluster.dns.authoritative_site(OAK_BLOCK1_PATH) == "oak"
        results, _, outcome = cluster.query(OAK_BLOCK, at_site="top")
        assert outcome.complete


class TestUpdatesInFlight:
    """An update landing inside the hand-off window follows the data."""

    def test_mid_migration_update_reaches_new_owner(self):
        cluster = Cluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
            oa_config=OAConfig(retry_policy=fast_retries(),
                               partial_answers=True),
            rebalance=RebalanceConfig(min_queries=4, overload_ratio=1.5),
        )
        skewed_load(cluster)
        network = cluster.network

        def inject_update(src, dst, message):
            # Fire one update at the old owner while the adopt request
            # is on the wire -- after the fragment was exported, before
            # the hand-off commits.
            if message.kind == "adopt" and not hasattr(inject_update,
                                                       "fired"):
                inject_update.fired = True
                network.request("sensor", "oak", UpdateMessage(
                    SPACE1_PATH, values={"price": "99"}))

        network.interceptors.append(inject_update)
        [move] = cluster.balancer.tick()
        oak = cluster.agents["oak"]
        assert oak.stats["held_updates_forwarded"] == 1
        assert oak.stats["held_updates_lost"] == 0
        # The new owner's fragment includes the in-window update even
        # though the exported fragment predates it.
        element = cluster.agents[move.target].database.find(SPACE1_PATH)
        assert element.child("price").text == "99"
        [result] = cluster.query(OAK_BLOCK, at_site="top")[0]
        assert result.child("parkingSpace").child("price").text == "99"

    def test_post_migration_straggler_update_forwarded(self):
        # An update addressed to the old owner AFTER the hand-off (a
        # stale sensor proxy) is forwarded to the new owner, not lost.
        cluster, network = chaos_cluster()
        skewed_load(cluster)
        [move] = cluster.balancer.tick()
        reply = network.request("sensor", "oak", UpdateMessage(
            SPACE1_PATH, values={"price": "77"}))
        assert reply.ok
        element = cluster.agents[move.target].database.find(SPACE1_PATH)
        assert element.child("price").text == "77"


class TestStaleDnsQueries:
    """Queries racing the DNS flip are answered, correctly."""

    def test_straggler_query_served_by_old_owner(self):
        cluster, network = chaos_cluster()
        baseline = answer_set(cluster.query(OAK_BLOCK, at_site="top")[0])
        skewed_load(cluster)
        cluster.balancer.tick()
        # A client holding the stale mapping still lands on oak; the
        # demoted copy answers it completely and correctly.
        results, _, outcome = cluster.query(OAK_BLOCK, at_site="oak")
        assert outcome.complete
        assert answer_set(results) == baseline

    def test_fresh_routing_after_old_owner_death(self):
        cluster, network = chaos_cluster()
        baseline = answer_set(cluster.query(OAK_BLOCK, at_site="top")[0])
        skewed_load(cluster)
        [move] = cluster.balancer.tick()
        cluster.kill_site("oak")
        # Default routing resolves the *new* DNS entry and asks the
        # adopter directly; the old owner's death is invisible.
        results, _, outcome = cluster.query(OAK_BLOCK)
        assert outcome.complete
        assert answer_set(results) == baseline
