"""Hierarchical aggregation: summaries, rollups, derived sensors.

The tentpole end to end: aggregate queries answered from mergeable
partial aggregates instead of leaf fan-out; summaries cached per
(region, freshness-stripped path) and shared across shapes; frontier
dispatch recursing through interior organizing agents; derived sensors
re-evaluated through continuous-query subscriptions; and -- the PR
discipline since semcache -- the wire byte-identical to a build
without the subsystem whenever it is disabled.
"""

import math

import pytest

from repro.agg import (
    AggregationConfig,
    FormulaError,
    Partial,
    SHAPES,
    collapse,
    compile_formula,
    merge_states,
    state_of,
    summary_key,
)
from repro.core import PartitionPlan
from repro.core.errors import QueryRoutingError
from repro.net import Cluster, NetError, OAConfig
from repro.net.messages import (
    Message,
    PartialAggregateAnswer,
    PartialAggregateRequest,
)
from repro.service.scenarios import (
    build_document,
    build_plan,
    quick_config,
    rollup_query,
    sensor_path,
    update_stream,
)
from repro.xmlkit import parse_fragment
from repro.xpath import parser as xpath_parser

DOCUMENT = """
<region id="R">
  <group id="g0">
    <sensor id="s0"><value>10</value></sensor>
    <sensor id="s1"><value>20</value></sensor>
  </group>
  <group id="g1">
    <sensor id="s0"><value>30</value></sensor>
    <sensor id="s1"><value>40</value></sensor>
  </group>
  <group id="g2">
    <sensor id="s0"><value>50</value></sensor>
  </group>
</region>
"""

PLAN = {
    "root": [(("region", "R"),)],
    "mid": [(("region", "R"), ("group", "g1"))],
    "leaf": [(("region", "R"), ("group", "g2"))],
}

ALL_VALUES = "/region[@id='R']/group/sensor/value"


def build_cluster(aggregation=True, plan=PLAN, document=DOCUMENT,
                  clock=None, **kwargs):
    config = AggregationConfig() if aggregation is True else aggregation
    return Cluster(parse_fragment(document), PartitionPlan(plan),
                   clock=clock, aggregation=config, **kwargs)


# ----------------------------------------------------------------------
# The partial algebra
# ----------------------------------------------------------------------
class TestPartial:
    def test_shapes_match_reference(self):
        partial = Partial.of_values([10, 20, 30, 40, 50])
        assert partial.finalize("count") == 5.0
        assert partial.finalize("sum") == 150.0
        assert partial.finalize("avg") == 30.0
        assert partial.finalize("min") == 10.0
        assert partial.finalize("max") == 50.0

    def test_empty_partial_matches_evaluator_conventions(self):
        empty = Partial()
        assert empty.finalize("count") == 0.0
        assert empty.finalize("sum") == 0.0
        for shape in ("avg", "min", "max"):
            assert math.isnan(empty.finalize(shape))

    def test_nan_poisons_everything_but_count(self):
        partial = Partial.of_values([1.0, float("nan"), 3.0])
        assert partial.finalize("count") == 3.0
        for shape in ("sum", "avg", "min", "max"):
            assert math.isnan(partial.finalize(shape))

    def test_mixed_infinities_are_nan_via_flags(self):
        partial = Partial.of_values([float("inf"), float("-inf"), 1.0])
        assert math.isnan(partial.finalize("sum"))
        assert partial.finalize("min") == float("-inf")
        assert partial.finalize("max") == float("inf")

    def test_merge_is_exact_not_float_ordered(self):
        # 0.1 + 0.2 famously != 0.3 in float; the rational total makes
        # any merge order produce the single correctly-rounded sum.
        left = Partial.of_values([0.1])
        mid = Partial.of_values([0.2])
        right = Partial.of_values([0.3])
        a = left.merge(mid).merge(right)
        b = right.merge(mid.merge(left))
        assert a == b
        assert a.finalize("sum") == b.finalize("sum")

    def test_overflowing_exact_total_rounds_to_infinity(self):
        partial = Partial.of_values([1.7e308, 1.7e308])
        assert partial.finalize("sum") == float("inf")

    def test_wire_roundtrip(self):
        partial = Partial.of_values([0.1, float("inf"), -7.25])
        assert Partial.from_attrs(partial.to_attrs()) == partial

    def test_merge_states_duplicate_safe(self):
        region = (("region", "R"),)
        state = state_of(region, Partial.of_values([1, 2]), 10.0)
        assert merge_states(state, state) == state

    def test_merge_states_freshest_entry_wins(self):
        region = (("region", "R"),)
        old = state_of(region, Partial.of_values([1]), 10.0)
        new = state_of(region, Partial.of_values([1, 2]), 20.0)
        assert merge_states(old, new) == new
        assert merge_states(new, old) == new

    def test_collapse_takes_stalest_timestamp(self):
        a = state_of((("region", "R"), ("group", "g0")),
                     Partial.of_values([1]), 10.0)
        b = state_of((("region", "R"), ("group", "g1")),
                     Partial.of_values([2]), 4.0)
        partial, data_ts = collapse(merge_states(a, b))
        assert data_ts == 4.0
        assert partial.finalize("sum") == 3.0


class TestSummaryKey:
    def test_freshness_variants_share_a_key(self):
        region = (("region", "R"),)
        loose = xpath_parser.parse(
            ALL_VALUES + "[timestamp() > current-time() - 60]")
        tight = xpath_parser.parse(
            ALL_VALUES + "[timestamp() > current-time() - 30]")
        bare = xpath_parser.parse(ALL_VALUES)
        assert summary_key(region, loose) == summary_key(region, bare)
        assert summary_key(region, tight) == summary_key(region, bare)

    def test_id_pins_do_not_strip(self):
        region = (("region", "R"),)
        pinned = xpath_parser.parse(
            "/region[@id='R']/group[@id='g0']/sensor/value")
        bare = xpath_parser.parse(ALL_VALUES)
        assert summary_key(region, pinned) != summary_key(region, bare)


# ----------------------------------------------------------------------
# Cluster rollups
# ----------------------------------------------------------------------
class TestHierarchicalRollup:
    def test_all_shapes_over_three_sites(self):
        cluster = build_cluster()
        expected = {"count": 5.0, "sum": 150.0, "avg": 30.0,
                    "min": 10.0, "max": 50.0}
        for shape, value in expected.items():
            assert cluster.scalar(f"{shape}({ALL_VALUES})",
                                  at_site="root") == value

    def test_count_and_sum_match_naive_cluster_exactly(self):
        agg = build_cluster()
        naive = build_cluster(aggregation=None)
        for shape in ("count", "sum"):
            query = f"{shape}({ALL_VALUES})"
            assert repr(agg.scalar(query, at_site="root")) == \
                repr(naive.scalar(query, at_site="root"))

    def test_second_ask_is_a_summary_hit(self):
        cluster = build_cluster(clock=lambda: 100.0)
        query = ("avg(" + ALL_VALUES +
                 "[timestamp() > current-time() - 60])")
        cluster.scalar(query, at_site="root")
        cluster.scalar(query, at_site="root")
        counters = cluster.agents["root"].aggregation.counters()
        assert counters["summary"]["hits"] == 1
        assert counters["answers"] == 2

    def test_shapes_share_one_summary(self):
        # A count prewarms the avg: same region, same stripped path.
        cluster = build_cluster(clock=lambda: 100.0)
        bound = "[timestamp() > current-time() - 60]"
        cluster.scalar(f"count({ALL_VALUES}{bound})", at_site="root")
        cluster.scalar(f"avg({ALL_VALUES}{bound})", at_site="root")
        counters = cluster.agents["root"].aggregation.counters()
        assert counters["summary"]["hits"] == 1
        assert len(cluster.agents["root"].aggregation.summaries) == 1

    def test_unbounded_ask_never_serves_from_summary(self):
        cluster = build_cluster(clock=lambda: 100.0)
        query = f"avg({ALL_VALUES})"
        cluster.scalar(query, at_site="root")
        cluster.scalar(query, at_site="root")
        counters = cluster.agents["root"].aggregation.counters()
        assert counters["summary"]["hits"] == 0
        assert counters["rollups"] >= 2

    def test_frontier_dispatch_asks_owners_not_leaves(self):
        cluster = build_cluster()
        cluster.scalar(f"sum({ALL_VALUES})", at_site="root")
        root = cluster.agents["root"].aggregation.counters()
        mid = cluster.agents["mid"].aggregation.counters()
        leaf = cluster.agents["leaf"].aggregation.counters()
        assert root["partials_fetched"] == 2
        assert mid["partials_served"] == 1
        assert leaf["partials_served"] == 1

    def test_zone_pinned_rollup(self):
        cluster = build_cluster()
        assert cluster.scalar(
            "sum(/region[@id='R']/group[@id='g1']/sensor/value)",
            at_site="root") == 70.0

    def test_update_then_recompute_past_bound(self):
        clock = {"now": 100.0}
        cluster = build_cluster(clock=lambda: clock["now"])
        bound = "[timestamp() > current-time() - 60]"
        query = f"sum({ALL_VALUES}{bound})"
        assert cluster.scalar(query, at_site="root") == 150.0
        clock["now"] = 150.0
        cluster.agents["leaf"].database.apply_update(
            (("region", "R"), ("group", "g2"), ("sensor", "s0")),
            values={"value": "90"})
        # Within the bound the summary still serves the old answer --
        # the bounded-staleness contract, same as the semantic cache.
        assert cluster.scalar(query, at_site="root") == 150.0
        # Past the bound the rollup recomputes; only the re-stamped
        # sensor survives the freshness predicate.
        clock["now"] = 170.0
        assert cluster.scalar(query, at_site="root") == 90.0


class TestFallbacks:
    def test_count_with_descendant_axis_uses_naive_path(self):
        cluster = build_cluster()
        assert cluster.scalar("count(/region[@id='R']//value)",
                              at_site="root") == 5.0
        counters = cluster.agents["root"].aggregation.counters()
        assert counters["unsupported_queries"] == 1
        assert counters["answers"] == 0

    def test_avg_with_descendant_axis_raises(self):
        cluster = build_cluster()
        with pytest.raises(Exception) as excinfo:
            cluster.scalar("avg(/region[@id='R']//value)", at_site="root")
        assert "avg" in str(excinfo.value)

    def test_sum_falls_back_when_child_site_is_gone(self):
        cluster = build_cluster()
        cluster.network.unregister("leaf")
        with pytest.raises((OSError, NetError)):
            cluster.scalar(f"avg({ALL_VALUES})", at_site="root")
        counters = cluster.agents["root"].aggregation.counters()
        assert counters["fallbacks"] == 1

    def test_disabled_manager_is_absent(self):
        cluster = build_cluster(aggregation=None)
        assert cluster.agents["root"].aggregation is None
        assert cluster.aggregation_config is None

    def test_partial_request_to_disabled_site_errors(self):
        cluster = build_cluster(aggregation=None)
        message = PartialAggregateRequest(
            (("region", "R"),), ALL_VALUES, sender="tester")
        reply = cluster.network.request("root", "root", message)
        assert reply.code == "aggregation-disabled"

    def test_partial_request_for_unowned_region_errors(self):
        cluster = build_cluster()
        message = PartialAggregateRequest(
            (("region", "R"), ("group", "g2")), ALL_VALUES,
            sender="tester")
        reply = cluster.network.request("tester", "mid", message)
        assert reply.code == "agg-not-owned"


# ----------------------------------------------------------------------
# The wire messages
# ----------------------------------------------------------------------
class TestPartialAggregateWire:
    def test_request_roundtrip(self):
        message = PartialAggregateRequest(
            (("region", "R"), ("group", "g1")), ALL_VALUES,
            bound=60.0, now=123.5, sender="root")
        decoded = Message.decode(message.encode())
        assert isinstance(decoded, PartialAggregateRequest)
        assert decoded.region == message.region
        assert decoded.query == ALL_VALUES
        assert decoded.bound == 60.0
        assert decoded.now == 123.5

    def test_answer_roundtrip_preserves_exact_state(self):
        state = state_of((("region", "R"),),
                         Partial.of_values([0.1, 0.2]), 55.25)
        message = PartialAggregateAnswer(7, state, sender="leaf")
        decoded = Message.decode(message.encode())
        assert isinstance(decoded, PartialAggregateAnswer)
        assert decoded.state == state
        assert decoded.in_reply_to == 7


# ----------------------------------------------------------------------
# Derived sensors
# ----------------------------------------------------------------------
class TestDerivedSensors:
    FORMULA = "avg(/region[@id='R']/group/sensor/value) - 5"

    def test_formula_compilation_extracts_dependencies(self):
        _ast, anchors = compile_formula(self.FORMULA)
        assert anchors == [(("region", "R"),)]

    def test_constant_formula_rejected(self):
        with pytest.raises(FormulaError):
            compile_formula("2 + 2")

    def test_unanchored_aggregate_rejected(self):
        with pytest.raises(FormulaError):
            compile_formula("avg(/region/group/sensor/value)")

    def test_registration_writes_initial_value(self):
        cluster = build_cluster()
        sensor = cluster.register_derived_sensor(
            (("region", "R"),), "d0", self.FORMULA)
        assert sensor.last_value == 25.0
        results, _, _ = cluster.query(
            "/region[@id='R']/derived[@id='d0']", at_site="root")
        assert "25" in "".join(r.text or "" for result in results
                               for r in result.iter("value"))

    def test_update_triggers_refresh_through_continuous(self):
        clock = {"now": 100.0}
        cluster = build_cluster(clock=lambda: clock["now"])
        sensor = cluster.register_derived_sensor(
            (("region", "R"),), "d0", self.FORMULA)
        assert sensor.last_value == 25.0
        clock["now"] = 200.0
        cluster.agents["root"].database.apply_update(
            (("region", "R"), ("group", "g0"), ("sensor", "s0")),
            values={"value": "70"})
        cluster.agents["root"].continuous.on_update(
            (("region", "R"), ("group", "g0"), ("sensor", "s0")))
        assert sensor.last_value == 37.0

    def test_derived_sensor_requires_aggregation(self):
        cluster = build_cluster(aggregation=None)
        with pytest.raises(QueryRoutingError):
            cluster.register_derived_sensor(
                (("region", "R"),), "d0", self.FORMULA)


# ----------------------------------------------------------------------
# Scenario generator
# ----------------------------------------------------------------------
class TestScenarios:
    def test_document_matches_predicted_element_count(self):
        config = quick_config()
        root = build_document(config)
        assert sum(1 for _ in root.iter()) == config.element_count

    def test_plan_covers_the_document(self):
        config = quick_config()
        plan = build_plan(config)
        assert len(plan.sites) == config.site_count
        plan.owner_map(build_document(config))  # raises if inconsistent

    def test_update_stream_paths_exist(self):
        config = quick_config()
        cluster = Cluster(build_document(config), build_plan(config))
        for path, values in update_stream(config, 20):
            site = cluster.owner_map[path[:2]]
            cluster.agents[site].database.apply_update(
                path, values=values)

    def test_zipf_stream_is_skewed(self):
        config = quick_config(zipf_s=1.4)
        hits = {}
        for path, _values in update_stream(config, 400):
            hits[path] = hits.get(path, 0) + 1
        top = max(hits.values())
        assert top > 400 / config.sensor_count * 3

    def test_rollup_query_is_supported_by_the_algebra(self):
        config = quick_config()
        cluster = Cluster(build_document(config), build_plan(config),
                          aggregation=AggregationConfig())
        for shape in SHAPES:
            value = cluster.scalar(rollup_query(config, shape),
                                   at_site="root", now=5.0)
            assert not math.isnan(value)

    def test_pinned_rollup_only_counts_the_zone(self):
        config = quick_config()
        cluster = Cluster(build_document(config), build_plan(config),
                          aggregation=AggregationConfig())
        whole = cluster.scalar(rollup_query(config, "count"),
                               at_site="root", now=5.0)
        zone = cluster.scalar(rollup_query(config, "count", zone=(0,)),
                              at_site="root", now=5.0)
        assert whole == float(config.sensor_count)
        assert zone == float(config.sensor_count // config.fanout)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_cluster_metrics_aggregation_section(self):
        cluster = build_cluster()
        cluster.scalar(f"avg({ALL_VALUES})", at_site="root")
        section = cluster.metrics()["aggregation"]
        assert section["answers"] == 1
        assert section["partials_fetched"] == 2
        assert "summary_hit_ratio" in section
        assert set(section["sites"]) == {"root", "mid", "leaf"}

    def test_metrics_absent_when_disabled(self):
        cluster = build_cluster(aggregation=None)
        assert "aggregation" not in cluster.metrics()

    def test_explain_shows_summary_rollup(self):
        cluster = build_cluster(clock=lambda: 100.0)
        query = ("avg(" + ALL_VALUES +
                 "[timestamp() > current-time() - 60])")
        report = cluster.explain(query)
        text = report.render()
        assert "aggregation: avg() via summary rollup" in text
        assert "summary-cache miss" in text
        cluster.scalar(query, at_site="root")
        text = cluster.explain(query).render()
        assert "summary-cache hit candidate" in text
        assert report.to_dict()["aggregation"]["supported"] is True

    def test_explain_never_distorts_summary_counters(self):
        cluster = build_cluster(clock=lambda: 100.0)
        query = ("avg(" + ALL_VALUES +
                 "[timestamp() > current-time() - 60])")
        cluster.scalar(query, at_site="root")
        before = cluster.agents["root"].aggregation.summaries.metrics()
        cluster.explain(query)
        assert cluster.agents["root"].aggregation.summaries.metrics() \
            == before

    def test_explain_reports_naive_path_for_unsupported(self):
        cluster = build_cluster()
        text = cluster.explain("count(/region[@id='R']//value)").render()
        assert "via naive gather" in text


# ----------------------------------------------------------------------
# Wire parity (the PR discipline)
# ----------------------------------------------------------------------
class TestWireParity:
    QUERIES = (
        "/region[@id='R']/group[@id='g1']",
        ALL_VALUES,
    )

    def _traffic(self, aggregation):
        cluster = build_cluster(aggregation=aggregation,
                                count_bytes=True)
        for query in self.QUERIES:
            cluster.query(query, at_site="root")
        cluster.scalar(f"count({ALL_VALUES})", at_site="root")
        cluster.scalar(f"sum({ALL_VALUES})", at_site="root")
        return (cluster.network.traffic.messages,
                cluster.network.traffic.bytes)

    def test_disabled_config_is_byte_identical_to_absent(self):
        absent = self._traffic(None)
        disabled = self._traffic(AggregationConfig(enabled=False))
        assert disabled == absent

    def test_enabled_config_changes_the_traffic(self):
        # Guard the guard: partial-aggregate tuples replace subtree
        # gathers, so enabling must move the byte count.
        enabled = self._traffic(AggregationConfig())
        absent = self._traffic(None)
        assert enabled != absent
