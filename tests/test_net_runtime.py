"""Unit tests for the concurrent runtime and ownership helpers."""

import threading

import pytest

from repro.core import (
    CoreError,
    Status,
    accept_ownership,
    export_local_information,
    get_status,
    relinquish_ownership,
)
from repro.net import (
    AckMessage,
    LockingNetwork,
    QueryMessage,
    make_concurrent_cluster,
    run_concurrent_clients,
)

from tests.conftest import OAKLAND


class _SlowAgent:
    def __init__(self, delay_event):
        self.delay_event = delay_event
        self.active = 0
        self.max_active = 0
        self.lock = threading.Lock()

    def handle_message(self, message):
        with self.lock:
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        self.delay_event.wait(0.05)
        with self.lock:
            self.active -= 1
        return AckMessage(message.message_id, ok=True)


class TestLockingNetwork:
    def test_serializes_per_site(self):
        network = LockingNetwork()
        event = threading.Event()
        agent = _SlowAgent(event)
        network.register("busy", agent)

        threads = [
            threading.Thread(
                target=lambda: network.request("c", "busy",
                                               QueryMessage("/a")))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        event.set()
        for thread in threads:
            thread.join()
        assert agent.max_active == 1  # never concurrent at one site

    def test_different_sites_run_in_parallel(self):
        network = LockingNetwork()
        barrier = threading.Barrier(2, timeout=5)

        class _BarrierAgent:
            def handle_message(self, message):
                barrier.wait()  # both sites must be inside concurrently
                return AckMessage(message.message_id, ok=True)

        network.register("a", _BarrierAgent())
        network.register("b", _BarrierAgent())
        threads = [
            threading.Thread(target=lambda d=d: network.request("c", d,
                                                                QueryMessage("/x")))
            for d in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()  # would deadlock if sites serialized globally


    def test_close_releases_per_site_locks(self):
        network = LockingNetwork()
        event = threading.Event()
        event.set()
        network.register("busy", _SlowAgent(event))
        network.request("c", "busy", QueryMessage("/a"))
        assert network._site_locks
        network.close()
        assert not network._site_locks
        # Still usable after close: locks are re-created on demand.
        reply = network.request("c", "busy", QueryMessage("/a"))
        assert reply.ok

    def test_repeated_close_is_idempotent(self):
        network = LockingNetwork()
        network.close()
        network.close()


class TestConcurrentClusterHelpers:
    def test_make_concurrent_cluster_swaps_network(self, paper_doc,
                                                   paper_plan):
        cluster = make_concurrent_cluster(paper_doc, paper_plan)
        assert isinstance(cluster.network, LockingNetwork)
        for agent in cluster.agents.values():
            assert agent.network is cluster.network

    def test_run_concurrent_clients_reports(self, paper_doc, paper_plan):
        cluster = make_concurrent_cluster(paper_doc, paper_plan)
        query = ("/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='Oakland']/block[@id='1']")
        result = run_concurrent_clients(cluster, lambda: query,
                                        n_clients=3, queries_per_client=5)
        assert result.completed == 15
        assert result.mean_latency > 0
        assert result.percentile_latency(0.95) >= result.percentile_latency(0.5)

    def test_client_errors_surface(self, paper_doc, paper_plan):
        cluster = make_concurrent_cluster(paper_doc, paper_plan)
        with pytest.raises(Exception):
            run_concurrent_clients(cluster, lambda: "not a query ///",
                                   n_clients=2, queries_per_client=1)


class TestOwnershipHelpers:
    def test_export_requires_ownership(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        with pytest.raises(CoreError):
            export_local_information(dbs["top"], OAKLAND)

    def test_export_accept_relinquish_roundtrip(self, paper_doc,
                                                paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        fragment = export_local_information(dbs["oak"], OAKLAND)
        accept_ownership(dbs["etna"], OAKLAND, fragment)
        relinquish_ownership(dbs["oak"], OAKLAND)
        assert get_status(dbs["etna"].find(OAKLAND)) is Status.OWNED
        assert get_status(dbs["oak"].find(OAKLAND)) is Status.COMPLETE

    def test_exported_fragment_is_cacheable(self, paper_doc, paper_plan):
        from repro.core import fragment_violations

        dbs = paper_plan.build_databases(paper_doc)
        fragment = export_local_information(dbs["oak"], OAKLAND)
        assert fragment_violations(fragment, paper_doc) == []


class TestEvictAllCached:
    def test_evicts_only_cached(self, paper_doc, paper_plan):
        from repro.core import compile_pattern, run_qeg

        dbs = paper_plan.build_databases(paper_doc)
        query = ("/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='Oakland']")
        remote = run_qeg(dbs["oak"], compile_pattern(query))
        dbs["top"].store_fragment(remote.answer)
        assert get_status(dbs["top"].find(OAKLAND)) is Status.COMPLETE

        evicted = dbs["top"].evict_all_cached()
        assert evicted >= 1
        assert get_status(dbs["top"].find(OAKLAND)) is Status.INCOMPLETE
        # Owned data untouched.
        city = dbs["top"].find(OAKLAND[:-1])
        assert get_status(city) is Status.OWNED

    def test_noop_on_pristine_database(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        assert dbs["top"].evict_all_cached() == 0
