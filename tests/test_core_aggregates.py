"""Tests for the acceptable-precision aggregate extension (Section 4)."""

import pytest

from repro.core import AggregateCache

from tests.conftest import OAKLAND

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")
COUNT = f"count({PREFIX}//parkingSpace[available='yes'])"


class TestAggregateCache:
    def test_miss_then_hit_within_age(self, settable_clock):
        cache = AggregateCache(settable_clock)
        assert cache.lookup(COUNT, max_age=60) is None
        cache.store(COUNT, 4.0)
        settable_clock.advance(30)
        assert cache.lookup(COUNT, max_age=60).value == 4.0

    def test_expired_entry_misses(self, settable_clock):
        cache = AggregateCache(settable_clock)
        cache.store(COUNT, 4.0)
        settable_clock.advance(120)
        assert cache.lookup(COUNT, max_age=60) is None

    def test_no_tolerance_never_hits(self, settable_clock):
        cache = AggregateCache(settable_clock)
        cache.store(COUNT, 4.0)
        assert cache.lookup(COUNT) is None

    def test_precision_converts_to_age(self, settable_clock):
        # Aggregates drift at most 0.5%/s -> 10% tolerance = 20s of age.
        cache = AggregateCache(settable_clock, drift_rate=0.005)
        assert cache.max_age_for_precision(0.10) == pytest.approx(20.0)
        cache.store(COUNT, 4.0)
        settable_clock.advance(15)
        assert cache.lookup(COUNT, precision=0.10) is not None
        settable_clock.advance(10)
        assert cache.lookup(COUNT, precision=0.10) is None

    def test_precision_without_drift_rate_rejected(self, settable_clock):
        cache = AggregateCache(settable_clock)
        with pytest.raises(ValueError):
            cache.lookup(COUNT, precision=0.10)

    def test_invalidate(self, settable_clock):
        cache = AggregateCache(settable_clock)
        cache.store(COUNT, 4.0)
        cache.invalidate(COUNT)
        assert cache.lookup(COUNT, max_age=999) is None
        cache.store("a", 1)
        cache.store("b", 2)
        cache.invalidate()
        assert len(cache) == 0


class TestClusterPrecisionQueries:
    def test_tolerant_aggregate_served_from_cache(self, paper_doc,
                                                  paper_plan,
                                                  settable_clock):
        from repro.net import Cluster

        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        site, _ = cluster.route_query(COUNT)
        agent = cluster.agent(site)

        exact = cluster.scalar(COUNT)
        sent = agent.stats["subqueries_sent"]

        # Within tolerance: answered from the aggregate cache, no new
        # gather at all.
        settable_clock.advance(10)
        tolerant = cluster.scalar(COUNT, max_age=60)
        assert tolerant == exact
        assert agent.stats["subqueries_sent"] == sent
        assert agent.driver.aggregates.stats["hits"] == 1

    def test_stale_aggregate_recomputed(self, paper_doc, paper_plan,
                                        settable_clock):
        from repro.net import Cluster

        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        site, _ = cluster.route_query(COUNT)
        first = cluster.scalar(COUNT)

        # The world changes...
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = cluster.add_sensing_agent("sa-agg", [space])
        sa.send_update(space, values={"available": "yes"})
        settable_clock.advance(120)

        # ...a tolerant query past its age bound recomputes.
        fresh = cluster.scalar(COUNT, max_age=60)
        assert fresh == first + 1

    def test_exact_query_never_uses_aggregate_cache(self, paper_doc,
                                                    paper_plan,
                                                    settable_clock):
        from repro.net import Cluster

        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        first = cluster.scalar(COUNT)
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = cluster.add_sensing_agent("sa-agg", [space])
        sa.send_update(space, values={"available": "yes"})
        assert cluster.scalar(COUNT) == first + 1  # no tolerance given
