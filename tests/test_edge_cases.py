"""Edge-case tests across packages: the odd corners the main suites
walk past."""

import math

import pytest

from repro.xmlkit import (
    Element,
    copy_without_children,
    parse_fragment,
    prune_to_paths,
)
from repro.xpath import compile_xpath
from repro.xpath.types import format_number, to_number, to_string


class TestXmlkitCorners:
    def test_copy_without_children(self):
        element = parse_fragment("<a id='1' x='2'><b/>text</a>")
        bare = copy_without_children(element)
        assert bare.attrib == {"id": "1", "x": "2"}
        assert bare.children == []
        with_text = copy_without_children(element, keep_text=True)
        assert with_text.text == "text"
        assert with_text.child("b") is None

    def test_prune_to_paths(self):
        root = parse_fragment("<a><b id='1'><c/></b><b id='2'/><d/></a>")
        keep_branch = root.child("b", id="1")
        keep_leaf = keep_branch.child("c")
        prune_to_paths(root, [[keep_branch, keep_leaf]])
        assert root.child("b", id="2") is None
        assert root.child("d") is None
        assert root.child("b", id="1").child("c") is not None

    def test_deeply_nested_parse(self):
        depth = 200
        text = "".join(f"<n{i}>" for i in range(depth)) + \
            "".join(f"</n{len(range(depth)) - 1 - i}>" for i in range(depth))
        element = parse_fragment(text)
        assert element.tag == "n0"
        assert sum(1 for _ in element.iter()) == depth

    def test_attribute_value_with_both_quote_styles(self):
        element = Element("a")
        element.set("v", "it's \"quoted\"")
        from repro.xmlkit import serialize

        again = parse_fragment(serialize(element))
        assert again.get("v") == "it's \"quoted\""


class TestXPathTypeCorners:
    def test_format_number_edge_values(self):
        assert format_number(float("nan")) == "NaN"
        assert format_number(float("inf")) == "Infinity"
        assert format_number(float("-inf")) == "-Infinity"
        assert format_number(-0.0) == "0"
        assert format_number(3.0) == "3"

    def test_to_number_whitespace(self):
        assert to_number("  42  ") == 42.0
        assert math.isnan(to_number(""))

    def test_to_string_of_empty_node_set(self):
        assert to_string([]) == ""

    def test_negative_zero_comparisons(self, paper_doc):
        assert compile_xpath("0 = -0").evaluate(paper_doc) is True

    def test_nan_never_equal(self, paper_doc):
        assert compile_xpath(
            "number('x') = number('x')").evaluate(paper_doc) is False

    def test_infinity_arithmetic(self, paper_doc):
        assert compile_xpath("1 div 0 > 1000000").evaluate(paper_doc) is True


class TestQueryCorners:
    def test_query_for_attribute_value(self, paper_doc):
        result = compile_xpath(
            "//neighborhood[@id='Oakland']/@zipcode").select(paper_doc)
        assert [a.value for a in result] == ["15213"]

    def test_boolean_of_attribute_presence(self, paper_doc):
        assert compile_xpath(
            "boolean(//neighborhood/@zipcode)").evaluate(paper_doc) is True

    def test_chained_filter_expression(self, paper_doc):
        result = compile_xpath(
            "(//block)[@id='1']/parkingSpace").select(paper_doc)
        assert len(result) == 5  # block 1 of Oakland(2), Shadyside(2), Etna(1)

    def test_union_of_disjoint_regions(self, paper_doc):
        result = compile_xpath(
            "//neighborhood[@id='Oakland']/block | "
            "//neighborhood[@id='Shadyside']/block").select(paper_doc)
        assert len(result) == 3

    def test_arithmetic_over_node_values(self, paper_doc):
        total = compile_xpath(
            "sum(//neighborhood[@id='Oakland']//price) div "
            "count(//neighborhood[@id='Oakland']//price)"
        ).evaluate(paper_doc)
        assert total == pytest.approx((25 + 0 + 0) / 3)


class TestDistributedCorners:
    def test_query_whose_root_tag_mismatches(self, paper_cluster):
        results, _site, _o = paper_cluster.query("/wrongRoot[@id='NE']/x")
        assert results == []

    def test_id_with_spaces_routes(self, paper_doc):
        from repro.core import PartitionPlan
        from repro.net import Cluster

        city = paper_doc.child("state").child("county") \
            .child("city", id="Pittsburgh")
        nb = Element("neighborhood", attrib={"id": "New Hope"})
        nb.append(Element("block", attrib={"id": "1"}, text="x"))
        city.append(nb)
        cluster = Cluster(paper_doc, PartitionPlan(
            {"top": [(("usRegion", "NE"),)]}))
        query = ("/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='New Hope']")
        site, path = cluster.route_query(query)
        assert site == "top"
        results, _, _ = cluster.query(query)
        assert len(results) == 1

    def test_empty_result_stays_empty_after_caching(self, paper_cluster):
        query = ("/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='Oakland']/block[@id='1']"
                 "/parkingSpace[price='9999']")
        first, _, _ = paper_cluster.query(query)
        second, _, _ = paper_cluster.query(query)
        assert first == [] and second == []

    def test_same_query_different_tolerances(self, paper_doc, paper_plan,
                                             settable_clock):
        from repro.net import Cluster

        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        base = ("/usRegion[@id='NE']/state[@id='PA']"
                "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                "/neighborhood[@id='Shadyside']/block[@id='1']")
        cluster.query(base, at_site="top")
        settable_clock.advance(100)
        loose = base + "[timestamp() > current-time() - 1000]"
        tight = base + "[timestamp() > current-time() - 5]"
        results_loose, _, _ = cluster.query(loose, at_site="top")
        results_tight, _, _ = cluster.query(tight, at_site="top")
        # Both return the block; the tight one had to visit the owner.
        assert len(results_loose) == len(results_tight) == 1

    def test_deep_wildcard_everything(self, paper_cluster):
        results, _, _ = paper_cluster.query("/usRegion[@id='NE']//block")
        assert len(results) == 4
        assert paper_cluster.validate() == []
