"""EXPLAIN: decisions, subquery plans, analyze mode."""

import json

from repro.obs.explain import CACHE_HIT, OWNED, STALE, SUBQUERY

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")
OAKLAND_SPACES = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
                  "/parkingSpace[available='yes']")
#: A select-all fetch: its generalized answer materializes the whole
#: result set, so a repeat is answerable from cache.
OAKLAND_ALL = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
               "/parkingSpace")


def _decision_labels(report):
    return {entry["decision"] for entry in report.decisions}


class TestPlans:
    def test_owned_region_is_answerable_locally(self, paper_cluster):
        report = paper_cluster.agents["oak"].explain(OAKLAND_SPACES)
        assert report.complete_locally
        assert report.plan == []
        assert OWNED in _decision_labels(report)
        assert report.site == "oak"

    def test_remote_region_plans_a_subquery(self, paper_cluster):
        report = paper_cluster.agents["top"].explain(OAKLAND_SPACES)
        assert not report.complete_locally
        assert SUBQUERY in _decision_labels(report)
        (entry,) = report.plan
        assert entry["target"] == "oak"
        assert entry["query"]
        assert report.planned_queries() == [entry["query"]]

    def test_cache_hit_after_gather(self, paper_cluster):
        top = paper_cluster.agents["top"]
        # First query gathers and caches Oakland's spaces at `top`.
        paper_cluster.query(OAKLAND_ALL, at_site="top")
        report = top.explain(OAKLAND_ALL)
        assert report.complete_locally
        assert CACHE_HIT in _decision_labels(report)

    def test_stale_cache_plans_a_refresh(self, paper_cluster):
        top = paper_cluster.agents["top"]
        paper_cluster.query(OAKLAND_ALL, now=0.0, at_site="top")
        fresh = OAKLAND_ALL + "[timestamp > now - 30]"
        # Within the bound the cache serves; beyond it the plan asks.
        assert top.explain(fresh, now=10.0).complete_locally
        report = top.explain(fresh, now=100.0)
        assert not report.complete_locally
        assert STALE in _decision_labels(report)
        assert "stale-cache" in {entry["reason"]
                                 for entry in report.plan}

    def test_explain_is_read_only(self, paper_cluster):
        top = paper_cluster.agents["top"]
        before = dict(top.driver.stats)
        report = top.explain(OAKLAND_SPACES)
        assert report.plan  # it would have dispatched
        assert top.driver.stats == before
        assert top.stats["subqueries_sent"] == 0


class TestAnalyze:
    def test_analyze_names_every_dispatched_subquery(self, paper_cluster):
        top = paper_cluster.agents["top"]
        report = top.explain(OAKLAND_SPACES, analyze=True)
        analysis = report.analyze
        assert analysis["complete"]
        assert analysis["rounds"] >= 1
        # The plan's first round is exactly what the gather dispatched.
        assert report.planned_queries() == report.dispatched_queries()
        assert top.driver.stats["queries"] == 1
        assert all(not entry["failed"]
                   for entry in analysis["dispatched"])

    def test_default_mode_has_no_analysis(self, paper_cluster):
        report = paper_cluster.agents["top"].explain(OAKLAND_SPACES)
        assert report.analyze is None
        assert report.dispatched_queries() == []


class TestClusterExplain:
    def test_routes_to_lca_site(self, paper_cluster):
        report = paper_cluster.explain(OAKLAND_SPACES)
        assert report.routed_site == "oak"
        assert report.site == "oak"
        assert report.complete_locally

    def test_lca_path_recorded(self, paper_cluster):
        report = paper_cluster.explain(OAKLAND_SPACES)
        assert report.lca_path[0] == ("usRegion", "NE")
        assert report.lca_path[-1] == ("parkingSpace", None) or \
            len(report.lca_path) >= 4


class TestRenderings:
    def test_text_rendering_names_the_parts(self, paper_cluster):
        report = paper_cluster.agents["top"].explain(OAKLAND_SPACES)
        text = report.render()
        assert text.startswith("EXPLAIN ")
        assert "subquery plan:" in text
        assert "@oak" in text

    def test_json_roundtrip(self, paper_cluster):
        report = paper_cluster.agents["top"].explain(OAKLAND_SPACES,
                                                     analyze=True)
        data = json.loads(report.to_json())
        assert data["query"]
        assert data["site"] == "top"
        assert data["plan"]
        assert data["analyze"]["dispatched"]

    def test_scalar_query_explains(self, paper_cluster):
        report = paper_cluster.agents["top"].explain(
            f"count({OAKLAND_SPACES})")
        assert isinstance(report.to_dict(), dict)
        assert report.lca_path  # extracted through the wrapper
