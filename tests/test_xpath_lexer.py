"""Unit tests for the XPath tokenizer, especially disambiguation."""

import pytest

from repro.xpath.errors import XPathSyntaxError
from repro.xpath import lexer


def kinds(source):
    return [t.kind for t in lexer.tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in lexer.tokenize(source)][:-1]


class TestBasicTokens:
    def test_path_tokens(self):
        assert kinds("/a/b") == [lexer.SLASH, lexer.NAME, lexer.SLASH,
                                 lexer.NAME]

    def test_double_slash(self):
        assert kinds("//a") == [lexer.DOUBLE_SLASH, lexer.NAME]

    def test_predicates_and_attribute(self):
        assert kinds("a[@id='x']") == [
            lexer.NAME, lexer.LBRACKET, lexer.AT, lexer.NAME, lexer.EQ,
            lexer.LITERAL, lexer.RBRACKET,
        ]

    def test_comparison_operators(self):
        assert kinds("a < b <= c > d >= e != f = g") == [
            lexer.NAME, lexer.LT, lexer.NAME, lexer.LE, lexer.NAME,
            lexer.GT, lexer.NAME, lexer.GE, lexer.NAME, lexer.NEQ,
            lexer.NAME, lexer.EQ, lexer.NAME,
        ]

    def test_numbers(self):
        assert values("1 2.5 .75") == [1.0, 2.5, 0.75]

    def test_string_literals_both_quotes(self):
        assert values("'abc' \"def\"") == ["abc", "def"]

    def test_variable(self):
        tokens = lexer.tokenize("$foo")
        assert tokens[0].kind == lexer.VARIABLE
        assert tokens[0].value == "foo"

    def test_dot_and_dotdot(self):
        assert kinds(". ..") == [lexer.DOT, lexer.DOTDOT]

    def test_dot_before_digit_is_number(self):
        assert kinds(".5") == [lexer.NUMBER]

    def test_union(self):
        assert kinds("a | b") == [lexer.NAME, lexer.PIPE, lexer.NAME]


class TestDisambiguation:
    def test_star_as_wildcard_after_slash(self):
        assert kinds("/*") == [lexer.SLASH, lexer.STAR]

    def test_star_as_multiply_after_operand(self):
        assert kinds("2 * 3") == [lexer.NUMBER, lexer.MULTIPLY, lexer.NUMBER]

    def test_and_or_as_operators(self):
        assert kinds("a and b or c") == [
            lexer.NAME, lexer.AND, lexer.NAME, lexer.OR, lexer.NAME,
        ]

    def test_uppercase_or_accepted(self):
        """The paper's figures write OR in uppercase."""
        assert kinds("a OR b") == [lexer.NAME, lexer.OR, lexer.NAME]

    def test_and_as_element_name_after_slash(self):
        assert kinds("/and") == [lexer.SLASH, lexer.NAME]
        assert values("/and") == ["/", "and"]

    def test_div_mod(self):
        assert kinds("4 div 2 mod 2") == [
            lexer.NUMBER, lexer.DIV, lexer.NUMBER, lexer.MOD, lexer.NUMBER,
        ]

    def test_function_name(self):
        tokens = lexer.tokenize("count(a)")
        assert tokens[0].kind == lexer.FUNCTION
        assert tokens[1].kind == lexer.LPAREN

    def test_node_type(self):
        tokens = lexer.tokenize("text()")
        assert tokens[0].kind == lexer.NODETYPE

    def test_axis(self):
        tokens = lexer.tokenize("ancestor::a")
        assert tokens[0].kind == lexer.AXIS
        assert tokens[0].value == "ancestor"

    def test_function_with_space_before_paren(self):
        tokens = lexer.tokenize("count (a)")
        assert tokens[0].kind == lexer.FUNCTION

    def test_name_with_hyphen(self):
        assert values("available-spaces") == ["available-spaces"]


class TestErrors:
    def test_illegal_character(self):
        with pytest.raises(XPathSyntaxError):
            lexer.tokenize("a # b")

    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError):
            lexer.tokenize("'abc")

    def test_bang_without_equals(self):
        with pytest.raises(XPathSyntaxError):
            lexer.tokenize("a ! b")

    def test_dollar_without_name(self):
        with pytest.raises(XPathSyntaxError):
            lexer.tokenize("$1")

    def test_error_offset(self):
        with pytest.raises(XPathSyntaxError) as info:
            lexer.tokenize("abc #")
        assert info.value.offset == 4
