"""Unit tests for the id-path index and the serialization memo.

Every database mutator must leave the index *live* (current stamp)
and exactly equal to a from-scratch rebuild; out-of-band tree edits
must be caught by the version stamp and repaired by a lazy rebuild.
"""

import pytest

from repro.core import PartitionPlan, SensorDatabase, Status, get_status
from repro.sim.metrics import collect_engine_counters
from repro.xmlkit import parse_fragment, serialize
from repro.xmlkit.serializer import (
    reset_serialization_stats,
    serialization_stats,
)

from tests.conftest import ETNA, OAKLAND, PITTSBURGH, SHADYSIDE, id_path

SHADY_BLOCK = SHADYSIDE + (("block", "1"),)


@pytest.fixture
def oak_db(paper_doc, settable_clock):
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
    })
    return plan.build_databases(
        paper_doc, default_clock=settable_clock)["oak"]


@pytest.fixture
def top_db(paper_doc, settable_clock):
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
    })
    return plan.build_databases(
        paper_doc, default_clock=settable_clock)["top"]


def _shady_fragment():
    return parse_fragment("""
    <usRegion id='NE' status='id-complete'>
      <state id='PA' status='id-complete'>
        <county id='Allegheny' status='id-complete'>
          <city id='Pittsburgh' status='id-complete'>
            <neighborhood id='Oakland' status='incomplete'/>
            <neighborhood id='Shadyside' status='complete'
                          zipcode='15232' timestamp='2000.0'>
              <available-spaces>3</available-spaces>
              <block id='1' status='complete' timestamp='2000.0'>
                <parkingSpace id='1' status='complete' timestamp='2000.0'>
                  <available>yes</available>
                </parkingSpace>
              </block>
            </neighborhood>
          </city>
        </county>
      </state>
    </usRegion>
    """)


class TestIndexMaintenance:
    def test_fresh_database_index_consistent(self, oak_db):
        assert oak_db.debug_verify_index(expect_current=False) == []
        oak_db.find(OAKLAND)
        assert oak_db.debug_verify_index() == []

    def test_store_fragment_keeps_index_live(self, oak_db):
        oak_db.store_fragment(_shady_fragment())
        assert oak_db.debug_verify_index() == []
        # The grafted parkingSpace is immediately findable via the index.
        space = oak_db.find(SHADY_BLOCK + (("parkingSpace", "1"),))
        assert space is not None
        assert oak_db.stats["index_hits"] >= 1

    def test_apply_update_keeps_index_live(self, oak_db):
        oak_db.apply_update(OAKLAND, values={"available-spaces": "7"})
        assert oak_db.debug_verify_index() == []

    def test_evict_keeps_index_live(self, oak_db):
        oak_db.store_fragment(_shady_fragment())
        oak_db.evict(SHADYSIDE)
        assert oak_db.debug_verify_index() == []
        # The evicted subtree's descendants are gone from the index too.
        assert oak_db.find(SHADY_BLOCK) is None

    def test_evict_keep_ids_keeps_index_live(self, oak_db):
        oak_db.store_fragment(_shady_fragment())
        oak_db.evict(SHADYSIDE, keep_ids=True)
        assert oak_db.debug_verify_index() == []
        assert get_status(oak_db.find(SHADYSIDE)) is Status.ID_COMPLETE
        # Child stub survives, grandchildren do not.
        assert oak_db.find(SHADY_BLOCK) is not None
        assert oak_db.find(SHADY_BLOCK + (("parkingSpace", "1"),)) is None

    def test_evict_by_degenerate_path_keeps_index_consistent(self, oak_db):
        # A (tag, None) hop resolves through the linear fallback to the
        # id-bearing <state id='PA'> element, so the caller's spelling
        # is not an index key; eviction must unregister descendants
        # under the element's canonical path, not the spelling.
        oak_db.store_fragment(_shady_fragment())
        degenerate = SHADYSIDE[:1] + (("state", None),) + SHADYSIDE[2:]
        oak_db.evict(degenerate)
        assert oak_db.debug_verify_index() == []
        assert oak_db.find(SHADY_BLOCK) is None
        assert oak_db.find(SHADY_BLOCK + (("parkingSpace", "1"),)) is None

    def test_evict_keep_ids_by_degenerate_path(self, oak_db):
        oak_db.store_fragment(_shady_fragment())
        degenerate = SHADYSIDE[:1] + (("state", None),) + SHADYSIDE[2:]
        oak_db.evict(degenerate, keep_ids=True)
        assert oak_db.debug_verify_index() == []
        assert oak_db.find(SHADY_BLOCK) is not None
        assert oak_db.find(SHADY_BLOCK + (("parkingSpace", "1"),)) is None

    def test_evict_all_cached_keeps_index_live(self, oak_db):
        oak_db.store_fragment(_shady_fragment())
        evicted = oak_db.evict_all_cached()
        assert evicted >= 1
        assert oak_db.debug_verify_index() == []

    def test_ownership_transitions_keep_index_live(self, oak_db):
        oak_db.store_fragment(_shady_fragment())
        oak_db.mark_owned(SHADYSIDE)
        assert oak_db.debug_verify_index() == []
        oak_db.release_ownership(SHADYSIDE)
        assert oak_db.debug_verify_index() == []

    def test_out_of_band_mutation_triggers_rebuild(self, oak_db):
        oak_db.find(OAKLAND)  # build the index
        city = oak_db.find(PITTSBURGH)
        # Bypass the database API entirely, as core.evolution does.
        city.append(parse_fragment(
            "<neighborhood id='Squirrel-Hill' status='incomplete'/>"))
        assert oak_db.debug_verify_index() == \
            ["index is stale (rebuild pending)"]
        assert oak_db.debug_verify_index(expect_current=False) == []
        before = oak_db.stats["index_rebuilds"]
        found = oak_db.find(PITTSBURGH + (("neighborhood", "Squirrel-Hill"),))
        assert found is not None
        assert oak_db.stats["index_rebuilds"] == before + 1
        assert oak_db.debug_verify_index() == []

    def test_hit_and_miss_counters(self, oak_db):
        hits = oak_db.stats["index_hits"]
        misses = oak_db.stats["index_misses"]
        assert oak_db.find(OAKLAND) is not None
        assert oak_db.stats["index_hits"] == hits + 1
        assert oak_db.find(OAKLAND + (("block", "99"),)) is None
        assert oak_db.stats["index_misses"] == misses + 1

    def test_degenerate_path_falls_back_to_linear(self, oak_db):
        # A hop without an id cannot use the index, but must still work.
        misses = oak_db.stats["index_misses"]
        hits = oak_db.stats["index_hits"]
        state = oak_db.find((("usRegion", "NE"), ("state", None)))
        assert state is not None and state.tag == "state"
        assert oak_db.stats["index_misses"] == misses
        assert oak_db.stats["index_hits"] == hits

    def test_duplicate_sibling_ids_resolved_linearly(self):
        db = SensorDatabase(parse_fragment(
            "<r id='R' status='owned'>"
            "<a id='X' status='owned'><b id='1' status='owned'/></a>"
            "<a id='X' status='owned'><b id='2' status='owned'/></a>"
            "</r>"
        ))
        # The duplicated (a, X) pair is excluded from the index, so the
        # lookup falls back to the linear walk's first-match semantics.
        found = db.find((("r", "R"), ("a", "X"), ("b", "1")))
        assert found is not None
        assert found.get("id") == "1"

    def test_iter_idable_matches_tree(self, oak_db):
        from repro.core.idable import iter_idable_with_paths
        via_index = list(oak_db.iter_idable())
        via_walk = [e for _, e in iter_idable_with_paths(oak_db.root)]
        assert via_index == via_walk

    def test_owned_paths(self, oak_db):
        from repro.core.idable import iter_idable_with_paths

        def reference():
            return [path for path, element
                    in iter_idable_with_paths(oak_db.root)
                    if get_status(element) is Status.OWNED]

        assert OAKLAND in oak_db.owned_paths()
        assert sorted(oak_db.owned_paths()) == sorted(reference())
        oak_db.store_fragment(_shady_fragment())
        oak_db.mark_owned(SHADYSIDE)
        assert SHADYSIDE in oak_db.owned_paths()
        assert sorted(oak_db.owned_paths()) == sorted(reference())

    def test_describe_uses_index(self, top_db):
        described = top_db.describe()
        assert "Etna" in described
        assert top_db.debug_verify_index() == []
        assert top_db.find(ETNA) is not None


class TestSerializationMemo:
    def test_repeat_serialization_reuses_bytes(self, oak_db):
        reset_serialization_stats()
        first = serialize(oak_db.root)
        cold = serialization_stats()["cache_misses"]
        assert cold > 0
        second = serialize(oak_db.root)
        assert second == first
        stats = serialization_stats()
        assert stats["cache_misses"] == cold  # nothing re-serialized
        assert stats["cache_hits"] >= 1

    def test_mutation_invalidates_only_touched_spine(self, oak_db):
        serialize(oak_db.root)
        oak_db.apply_update(OAKLAND, values={"available-spaces": "7"})
        reset_serialization_stats()
        again = serialize(oak_db.root)
        assert '<available-spaces>7</available-spaces>' in again
        stats = serialization_stats()
        # Only the root-to-Oakland spine re-serializes; siblings
        # (Shadyside, Etna, ...) come straight from the memo.
        assert stats["cache_hits"] >= 1
        assert stats["cache_misses"] < cold_node_count(oak_db.root)

    def test_cached_output_byte_identical_to_uncached(self, oak_db):
        oak_db.apply_update(OAKLAND, attributes={"note": 'x<&"'})
        warm = serialize(oak_db.root)
        assert warm == serialize(oak_db.root, use_cache=False)
        warm_sorted = serialize(oak_db.root, sort_attributes=True)
        assert warm_sorted == serialize(
            oak_db.root, sort_attributes=True, use_cache=False)

    def test_copy_carries_warm_cache(self, oak_db):
        reset_serialization_stats()
        serialize(oak_db.root)
        clone = oak_db.root.copy()
        before = serialization_stats()["cache_misses"]
        assert serialize(clone) == serialize(oak_db.root)
        assert serialization_stats()["cache_misses"] == before

    def test_serializing_a_copy_warms_the_original(self, oak_db):
        # The wire path: answers serialize short-lived copies of db
        # content; the bytes must write back so the next answer from
        # the same content reuses them.
        clone = oak_db.root.copy()
        text = serialize(clone)
        reset_serialization_stats()
        assert serialize(oak_db.root) == text
        assert serialization_stats()["cache_misses"] == 0

    def test_write_back_chains_through_copies_of_copies(self, oak_db):
        # Envelope building can copy an already-copied fragment; the
        # bytes must still reach the database element at the end of
        # the origin chain.
        grandchild_copy = oak_db.root.copy().copy()
        text = serialize(grandchild_copy)
        reset_serialization_stats()
        assert serialize(oak_db.root) == text
        assert serialization_stats()["cache_misses"] == 0

    def test_no_write_back_after_either_side_mutates(self, oak_db):
        clone = oak_db.root.copy()
        oak_db.apply_update(OAKLAND, values={"available-spaces": "1"})
        serialize(clone)  # original mutated since the copy: no write-back
        assert "available-spaces>1<" in serialize(oak_db.root)
        fresh_clone = oak_db.root.copy()
        fresh_clone.set("tainted", "yes")
        serialize(fresh_clone)  # copy mutated: no write-back either
        assert "tainted" not in serialize(oak_db.root)


def cold_node_count(root):
    return sum(1 for _ in root.iter())


class TestEngineCounters:
    def test_collect_engine_counters(self, oak_db, top_db):
        reset_serialization_stats()
        oak_db.find(OAKLAND)
        top_db.find(ETNA)
        serialize(oak_db.root)
        serialize(oak_db.root)
        counters = collect_engine_counters({"oak": oak_db, "top": top_db})
        assert counters["index_hits"] >= 2
        assert counters["index_rebuilds"] >= 2
        assert counters["serialization_reused"] >= 1
        assert 0.0 <= counters["index_hit_ratio"] <= 1.0
        assert 0.0 <= counters["serialization_reuse_ratio"] <= 1.0

    def test_oa_exposes_engine_counters(self, paper_doc):
        from repro.net import Cluster
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
        })
        cluster = Cluster(paper_doc, plan)
        agent = cluster.agents["oak"]
        agent.database.find(OAKLAND)
        counters = agent.engine_counters()
        assert counters["index_hits"] >= 1
        assert "serialization" in counters
