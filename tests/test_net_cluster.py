"""Unit/integration tests for OAs, SAs and the assembled cluster."""

import pytest

from repro.core import Status, get_status, get_timestamp
from repro.net import Cluster, MigrationError, OAConfig

from tests.conftest import (
    FIGURE2_QUERY,
    OAKLAND,
    PITTSBURGH,
    SHADYSIDE,
)

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


class TestRouting:
    def test_self_starting_query_routes_to_lca(self, paper_cluster):
        site, path = paper_cluster.route_query(FIGURE2_QUERY)
        assert path == PITTSBURGH
        assert site == "top"  # top owns everything above neighborhoods

    def test_block_level_query_routes_to_neighborhood_owner(
            self, paper_cluster):
        query = PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
        site, _path = paper_cluster.route_query(query)
        assert site == "oak"

    def test_scalar_query_routes_via_inner_path(self, paper_cluster):
        site, _ = paper_cluster.route_query(
            f"count({PREFIX}/neighborhood[@id='Shadyside']/block)")
        assert site == "shady"

    def test_unprefixed_query_falls_back_to_root_owner(self, paper_cluster):
        site, _ = paper_cluster.route_query("//parkingSpace")
        assert site == "top"

    def test_repeated_routing_hits_client_dns_cache(self, paper_cluster):
        paper_cluster.route_query(FIGURE2_QUERY)
        before = paper_cluster.stats["lca_cache_hits"]
        paper_cluster.route_query(FIGURE2_QUERY)
        assert paper_cluster.stats["lca_cache_hits"] == before + 1


class TestQueries:
    def test_figure2_end_to_end(self, paper_cluster):
        results, site, outcome = paper_cluster.query(FIGURE2_QUERY)
        assert len(results) == 3
        assert site == "top"

    def test_query_via_message_layer(self, paper_cluster):
        results, site = paper_cluster.query_via_messages(FIGURE2_QUERY)
        assert len(results) == 3
        assert all(r.get("status") is None for r in results)

    def test_forced_entry_site(self, paper_cluster):
        results, site, _ = paper_cluster.query(FIGURE2_QUERY,
                                               at_site="etna")
        assert site == "etna"
        assert len(results) == 3

    def test_scalar_aggregate(self, paper_cluster):
        total = paper_cluster.scalar(
            f"count({PREFIX}//parkingSpace[available='yes'])")
        assert total == 4.0  # Oakland 1+1, Shadyside 2

    def test_caching_across_cluster_queries(self, paper_cluster):
        query = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
        paper_cluster.query(query, at_site="top")
        agent = paper_cluster.agent("top")
        before = agent.stats["subqueries_sent"]
        paper_cluster.query(query, at_site="top")
        assert agent.stats["subqueries_sent"] == before

    def test_cache_disabled_config(self, paper_doc, paper_plan):
        cluster = Cluster(paper_doc, paper_plan,
                          oa_config=OAConfig(cache_results=False))
        query = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
        cluster.query(query, at_site="top")
        agent = cluster.agent("top")
        before = agent.stats["subqueries_sent"]
        cluster.query(query, at_site="top")
        assert agent.stats["subqueries_sent"] > before

    def test_validate_clean_at_bootstrap(self, paper_cluster):
        assert paper_cluster.validate() == []

    def test_validate_clean_after_query_mix(self, paper_cluster):
        paper_cluster.query(FIGURE2_QUERY)
        paper_cluster.query(PREFIX + "/neighborhood[@id='Oakland']",
                            at_site="etna")
        assert paper_cluster.validate() == []


class TestUpdates:
    def test_sa_update_reaches_owner(self, paper_cluster, paper_doc):
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = paper_cluster.add_sensing_agent("sa-1", [space])
        sa.send_update(space, values={"available": "yes"})
        element = paper_cluster.database("oak").find(space)
        assert element.child("available").text == "yes"
        assert get_timestamp(element) is not None

    def test_update_visible_to_subsequent_queries(self, paper_cluster):
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = paper_cluster.add_sensing_agent("sa-1", [space])
        sa.send_update(space, values={"available": "yes"})
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
            "/parkingSpace[available='yes']")
        assert {r.id for r in results} == {"1", "2"}

    def test_update_to_wrong_site_forwarded(self, paper_cluster):
        space = SHADYSIDE + (("block", "1"), ("parkingSpace", "1"))
        message = UpdateMessage = None  # noqa: F841 (clarity below)
        from repro.net import UpdateMessage

        reply = paper_cluster.network.request(
            "sa-x", "oak",
            UpdateMessage(space, values={"available": "no"}, sender="sa-x"))
        assert reply.ok
        element = paper_cluster.database("shady").find(space)
        assert element.child("available").text == "no"
        assert paper_cluster.agent("oak").stats["updates_forwarded"] == 1

    def test_random_model_tick(self, paper_cluster):
        from repro.service import all_space_paths  # noqa: F401

        spaces = [OAKLAND + (("block", "1"), ("parkingSpace", "1")),
                  OAKLAND + (("block", "1"), ("parkingSpace", "2"))]
        sa = paper_cluster.add_sensing_agent("sa-9", spaces)
        sa.tick()
        assert sa.stats["updates_sent"] == 2


class TestMigration:
    def test_delegate_moves_ownership(self, paper_cluster):
        block = OAKLAND + (("block", "1"),)
        moved = paper_cluster.delegate(block, "etna")
        assert tuple(block) in [tuple(p) for p in moved]
        # New owner owns it; old owner keeps a complete copy.
        assert get_status(
            paper_cluster.database("etna").find(block)) is Status.OWNED
        assert get_status(
            paper_cluster.database("oak").find(block)) is Status.COMPLETE
        # The owned region moved with it (the spaces below).
        space = block + (("parkingSpace", "1"),)
        assert get_status(
            paper_cluster.database("etna").find(space)) is Status.OWNED

    def test_dns_points_to_new_owner(self, paper_cluster):
        block = OAKLAND + (("block", "1"),)
        paper_cluster.delegate(block, "etna")
        record = paper_cluster.dns.lookup(paper_cluster.dns.name_for(block))
        assert record.site == "etna"

    def test_queries_correct_after_migration(self, paper_cluster):
        block = OAKLAND + (("block", "1"),)
        before, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
            "/parkingSpace[available='yes']")
        paper_cluster.delegate(block, "etna")
        after, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
            "/parkingSpace[available='yes']")
        assert {r.id for r in before} == {r.id for r in after}

    def test_updates_reach_new_owner_after_migration(self, paper_cluster):
        block = OAKLAND + (("block", "1"),)
        space = block + (("parkingSpace", "1"),)
        paper_cluster.delegate(block, "etna")
        sa = paper_cluster.add_sensing_agent("sa-2", [space])
        sa.send_update(space, values={"available": "no"})
        element = paper_cluster.database("etna").find(space)
        assert element.child("available").text == "no"

    def test_stale_dns_straggler_update_forwarded(self, paper_cluster):
        """An SA with a cached (stale) DNS entry sends to the old owner,
        which forwards using fresh DNS (the paper's step-4 story)."""
        block = OAKLAND + (("block", "1"),)
        space = block + (("parkingSpace", "1"),)
        sa = paper_cluster.add_sensing_agent("sa-3", [space])
        sa.send_update(space, values={"available": "yes"})  # caches DNS
        paper_cluster.delegate(block, "etna")
        sa.send_update(space, values={"available": "no"})  # stale route
        element = paper_cluster.database("etna").find(space)
        assert element.child("available").text == "no"
        assert paper_cluster.agent("oak").stats["updates_forwarded"] >= 1

    def test_cannot_delegate_unowned(self, paper_cluster):
        with pytest.raises(MigrationError):
            paper_cluster.agent("oak").delegate(
                SHADYSIDE, "etna", paper_cluster.dns)

    def test_migration_preserves_invariants(self, paper_cluster):
        paper_cluster.delegate(OAKLAND + (("block", "1"),), "etna")
        assert paper_cluster.validate() == []


class TestConsistencyEndToEnd:
    def test_tolerant_query_uses_cache_strict_refetches(
            self, paper_doc, paper_plan, settable_clock):
        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        query = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
        cluster.query(query, at_site="top")  # warm the cache
        agent = cluster.agent("top")

        settable_clock.advance(100)
        tolerant = (PREFIX + "/neighborhood[@id='Shadyside']"
                    "/block[@id='1'][timestamp() > current-time() - 600]")
        before = agent.stats["subqueries_sent"]
        cluster.query(tolerant, at_site="top")
        assert agent.stats["subqueries_sent"] == before  # cache was fresh

        strict = (PREFIX + "/neighborhood[@id='Shadyside']"
                  "/block[@id='1'][timestamp() > current-time() - 10]")
        cluster.query(strict, at_site="top")
        assert agent.stats["subqueries_sent"] > before  # went to the owner

    def test_owner_answers_even_if_stale(self, paper_doc, paper_plan,
                                         settable_clock):
        """Consistency never blanks an answer: the owner's copy wins."""
        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        settable_clock.advance(1000)
        strict = (PREFIX + "/neighborhood[@id='Shadyside']"
                  "/block[@id='1'][timestamp() > current-time() - 1]")
        results, _, _ = cluster.query(strict, at_site="top")
        assert len(results) == 1

    def test_paper_sugar_accepted_end_to_end(self, paper_doc, paper_plan,
                                             settable_clock):
        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        query = (PREFIX + "/neighborhood[@id='Shadyside']"
                 "/block[@id='1'][timestamp > now - 600]")
        results, _, _ = cluster.query(query, at_site="top")
        assert len(results) == 1
