"""Durability end-to-end: recovery, overload shedding, graceful drain.

The acceptance criterion of the durability subsystem is stated here:
a cluster site killed mid-workload and restarted from checkpoint +
WAL replay holds a byte-identical partition and answers the
post-recovery query suite byte-identically to a control cluster that
was never killed.
"""

import pytest

from repro.core import PartitionPlan
from repro.durability import (
    DurabilityConfig,
    DurabilityError,
    DurabilityManager,
    apply_record,
    partition_fingerprint,
)
from repro.net import Cluster, ErrorMessage, LoopbackNetwork, QueryMessage
from repro.net.tcpruntime import TcpCluster, TcpNetwork
from repro.xmlkit import parse_fragment, serialize

from tests.conftest import (
    ETNA,
    OAKLAND,
    PAPER_DOCUMENT,
    SHADYSIDE,
    id_path,
)

PLAN = {
    "top": [id_path("usRegion=NE")],
    "oak": [OAKLAND],
    "shady": [SHADYSIDE],
    "etna": [ETNA],
}

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")
OAK_SPACES = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
              "/parkingSpace[available='yes']")
QUERY_SUITE = [
    OAK_SPACES,
    PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
             "/parkingSpace[available='yes']",
    PREFIX + "/neighborhood[@id='Oakland']",
]

OAK_SPACE_1 = OAKLAND + (("block", "1"), ("parkingSpace", "1"))
OAK_SPACE_2 = OAKLAND + (("block", "1"), ("parkingSpace", "2"))


def canonical(element):
    return serialize(element, sort_attributes=True, use_cache=False)


def make_cluster(tmp_path, clock=None, network=None, **config_kwargs):
    config = DurabilityConfig(directory=str(tmp_path / "durability"),
                              **config_kwargs)
    return Cluster(parse_fragment(PAPER_DOCUMENT), PartitionPlan(PLAN),
                   durability=config, clock=clock or (lambda: 1000.0),
                   network=network)


def fingerprints(cluster):
    return {site: partition_fingerprint(agent.database)
            for site, agent in cluster.agents.items()}


class TestManager:
    def _manager(self, tmp_path, **kwargs):
        kwargs.setdefault("sync_every", 0)
        config = DurabilityConfig(directory=str(tmp_path), **kwargs)
        return DurabilityManager(config, "oak", clock=lambda: 1000.0)

    def _database(self):
        from repro.core.database import SensorDatabase
        from repro.core.status import Status, set_status

        root = parse_fragment(
            "<usRegion id='NE'><state id='PA'>"
            "<population>12</population></state></usRegion>")
        for node in root.iter():
            if node.id is not None:
                set_status(node, Status.OWNED)
        return SensorDatabase(root, clock=lambda: 1000.0, site_id="oak")

    def test_disabled_config_refuses_manager(self, tmp_path):
        with pytest.raises(DurabilityError):
            DurabilityManager(
                DurabilityConfig(enabled=False, directory=str(tmp_path)),
                "oak")

    def test_attach_writes_initial_checkpoint(self, tmp_path):
        manager = self._manager(tmp_path)
        assert not manager.has_state()
        manager.attach(self._database())
        assert manager.has_state()
        assert manager.stats["checkpoints_written"] == 1
        manager.close()

    def test_mutations_journalled_and_recovered(self, tmp_path):
        manager = self._manager(tmp_path)
        database = self._database()
        manager.attach(database)
        database.apply_update((("usRegion", "NE"), ("state", "PA")),
                              values={"population": "13"})
        before = partition_fingerprint(database)
        manager.abort()  # crash

        reborn = self._manager(tmp_path)
        recovered = reborn.recover()
        assert partition_fingerprint(recovered) == before
        assert reborn.stats["last_recovery_replayed"] == 1
        reborn.close()

    def test_auto_checkpoint_rotates_log(self, tmp_path):
        manager = self._manager(tmp_path, checkpoint_interval=2)
        database = self._database()
        manager.attach(database)
        path = (("usRegion", "NE"), ("state", "PA"))
        for value in ("13", "14", "15"):
            database.apply_update(path, values={"population": value})
        # Two updates trigger a checkpoint; the third sits in the log.
        assert manager.stats["auto_checkpoints"] == 1
        assert len(manager._wal.recovered_records) == 0
        before = partition_fingerprint(database)
        manager.abort()

        reborn = self._manager(tmp_path, checkpoint_interval=2)
        assert partition_fingerprint(reborn.recover()) == before
        assert reborn.stats["last_recovery_replayed"] == 1  # just the third
        reborn.close()

    def test_recover_with_nothing_raises(self, tmp_path):
        manager = self._manager(tmp_path)
        with pytest.raises(DurabilityError):
            manager.recover()
        manager.close()

    def test_replay_is_idempotent(self, tmp_path):
        manager = self._manager(tmp_path)
        database = self._database()
        records = []
        database.journal = records.append
        database.apply_update((("usRegion", "NE"), ("state", "PA")),
                              values={"population": "99"},
                              attributes={"motto": "virtue"})
        database.journal = None
        once = partition_fingerprint(database)
        for record in records:  # second application: no-op
            apply_record(database, dict(record, lsn=0))
        assert partition_fingerprint(database) == once
        manager.close()

    def test_close_takes_final_checkpoint(self, tmp_path):
        manager = self._manager(tmp_path)
        database = self._database()
        manager.attach(database)
        database.apply_update((("usRegion", "NE"), ("state", "PA")),
                              values={"population": "42"})
        before = partition_fingerprint(database)
        manager.close(final_checkpoint=True)

        reborn = self._manager(tmp_path)
        recovered = reborn.recover()
        assert partition_fingerprint(recovered) == before
        # Everything came from the snapshot; the log was rotated empty.
        assert reborn.stats["last_recovery_replayed"] == 0
        reborn.close()

    def test_counters_snapshot(self, tmp_path):
        manager = self._manager(tmp_path)
        manager.attach(self._database())
        counters = manager.counters()
        assert counters["checkpoints_written"] == 1
        assert "wal_bytes" in counters and "wal_last_lsn" in counters
        manager.close()


class TestCacheRevalidation:
    def test_stale_cache_evicted_on_recovery(self, tmp_path):
        clock = _SettableClock(1000.0)
        cluster = make_cluster(tmp_path, clock=clock,
                               revalidate_max_age=60.0, sync_every=0)
        # Populate top's cache via a distributed query...
        cluster.query(OAK_SPACES, at_site="top")
        top = cluster.agents["top"].database
        assert top.find(OAK_SPACE_1) is not None

        # ...then die for an hour.
        cluster.kill_site("top")
        clock.now += 3600.0
        agent = cluster.restart_site("top")
        assert agent.durability.stats["cache_entries_expired"] > 0
        # The stale cached subtree is gone; owned data survived.
        from repro.core.status import Status, get_status

        oakland = agent.database.find(OAKLAND)
        assert oakland is None or get_status(oakland) is not Status.COMPLETE
        region = agent.database.find((("usRegion", "NE"),))
        assert get_status(region) is Status.OWNED
        cluster.shutdown()

    def test_fresh_cache_survives_recovery(self, tmp_path):
        clock = _SettableClock(1000.0)
        cluster = make_cluster(tmp_path, clock=clock,
                               revalidate_max_age=3600.0, sync_every=0)
        cluster.query(OAK_SPACES, at_site="top")
        before = partition_fingerprint(cluster.agents["top"].database)
        cluster.kill_site("top")
        clock.now += 60.0  # well inside the bound
        agent = cluster.restart_site("top")
        assert partition_fingerprint(agent.database) == before
        assert agent.durability.stats["cache_entries_expired"] == 0
        cluster.shutdown()


class _SettableClock:
    def __init__(self, now):
        self.now = now

    def __call__(self):
        return self.now


class TestClusterRecovery:
    def test_kill_restart_byte_identity(self, tmp_path):
        cluster = make_cluster(tmp_path, checkpoint_interval=3,
                               sync_every=0)
        cluster.agents["oak"].database.apply_update(
            OAK_SPACE_1, values={"available": "no"})
        cluster.query(OAK_SPACES, at_site="top")  # fill top's cache
        before = fingerprints(cluster)

        for site in list(cluster.agents):
            cluster.kill_site(site)
            cluster.restart_site(site)
        assert fingerprints(cluster) == before
        assert cluster.stats["site_kills"] == 4
        assert cluster.stats["site_restarts"] == 4
        cluster.shutdown()

    def test_restart_without_durability_refused(self, paper_doc,
                                                paper_plan):
        from repro.core.errors import QueryRoutingError

        cluster = Cluster(paper_doc, paper_plan)
        cluster.kill_site("oak")
        with pytest.raises(QueryRoutingError):
            cluster.restart_site("oak")

    def test_killed_site_stops_answering(self, tmp_path):
        cluster = make_cluster(tmp_path, sync_every=0)
        cluster.kill_site("oak")
        from repro.net.errors import UnknownSite

        message = QueryMessage(OAK_SPACES, user=True, sender="client")
        with pytest.raises(UnknownSite):
            cluster.network.request("client", "oak", message)
        cluster.restart_site("oak")
        reply = cluster.network.request("client", "oak", message)
        assert reply.kind == "answer"
        cluster.shutdown()

    def test_whole_cluster_restart_from_disk(self, tmp_path):
        clock = _SettableClock(1000.0)
        cluster = make_cluster(tmp_path, clock=clock, sync_every=0)
        cluster.agents["oak"].database.apply_update(
            OAK_SPACE_2, values={"price": "75"})
        before = fingerprints(cluster)
        answers = {q: [canonical(r) for r in cluster.query(q)[0]]
                   for q in QUERY_SUITE}
        cluster.shutdown()

        # A brand-new deployment over the same durability directory
        # recovers every site from disk instead of re-partitioning.
        reborn = make_cluster(tmp_path, clock=clock, sync_every=0)
        assert fingerprints(reborn) == before
        for query, expected in answers.items():
            results, _, _ = reborn.query(query)
            assert [canonical(r) for r in results] == expected
        reborn.shutdown()

    def test_disabled_durability_wire_parity(self, tmp_path, monkeypatch):
        """DurabilityConfig(enabled=False): byte-identical traffic."""
        import itertools

        from repro.net import messages as messages_module

        def run(durability):
            # Pin the process-global message-id sequence so the two
            # runs frame identical ids (id width shows up in bytes).
            monkeypatch.setattr(messages_module, "_SEQUENCE",
                                itertools.count(1000))
            cluster = Cluster(
                parse_fragment(PAPER_DOCUMENT), PartitionPlan(PLAN),
                durability=durability, clock=lambda: 1000.0,
                network=LoopbackNetwork(count_bytes=True))
            answers = {}
            for query in QUERY_SUITE:
                results, _, _ = cluster.query(query, at_site="top")
                answers[query] = [canonical(r) for r in results]
            return answers, cluster.network.traffic.summary()

        plain_answers, plain_traffic = run(None)
        disabled_answers, disabled_traffic = run(
            DurabilityConfig(enabled=False,
                             directory=str(tmp_path / "unused")))
        assert disabled_answers == plain_answers
        assert disabled_traffic == plain_traffic

    def test_bind_lifecycle_kill_and_restart(self, tmp_path):
        from repro.net import FaultyNetwork

        network = FaultyNetwork(LoopbackNetwork())
        cluster = make_cluster(tmp_path, network=network, sync_every=0)
        cluster.bind_lifecycle(network)
        before = partition_fingerprint(cluster.agents["oak"].database)

        network.kill_agent("oak")
        assert "oak" not in cluster.agents
        assert network.is_down("oak")
        network.restart_agent("oak")
        assert not network.is_down("oak")
        assert partition_fingerprint(
            cluster.agents["oak"].database) == before
        assert network.fault_stats["agent_kills"] == 1
        assert network.fault_stats["agent_restarts"] == 1
        cluster.shutdown()


class TestTcpAcceptance:
    """The PR's acceptance criterion, over real sockets."""

    def _run(self, tmp_path, tag, kill_mid_workload):
        config = DurabilityConfig(directory=str(tmp_path / tag),
                                  checkpoint_interval=4, sync_every=0)
        cluster = TcpCluster(parse_fragment(PAPER_DOCUMENT),
                             PartitionPlan(PLAN), durability=config,
                             clock=lambda: 1000.0)
        try:
            # Phase 1 of the workload: updates land on oak, queries
            # spread cached copies around.
            cluster.cluster.agents["oak"].database.apply_update(
                OAK_SPACE_1, values={"available": "no", "price": "30"})
            cluster.cluster.query(QUERY_SUITE[0])

            if kill_mid_workload:
                cluster.kill_site("oak")
                cluster.restart_site("oak")

            # Phase 2: more mutations and the full post-recovery suite.
            cluster.cluster.agents["oak"].database.apply_update(
                OAK_SPACE_2, values={"price": "45"})
            answers = {}
            for query in QUERY_SUITE:
                results, _, _ = cluster.cluster.query(query)
                answers[query] = [canonical(r) for r in results]
            return answers, fingerprints(cluster.cluster)
        finally:
            cluster.close()

    def test_killed_site_matches_control(self, tmp_path):
        victim_answers, victim_fps = self._run(tmp_path, "victim",
                                               kill_mid_workload=True)
        control_answers, control_fps = self._run(tmp_path, "control",
                                                 kill_mid_workload=False)
        assert victim_answers == control_answers
        assert victim_fps == control_fps

    def test_kill_severs_pooled_connections(self, tmp_path):
        """A kill must sever *established* connections, not just the
        listener: a surviving handler thread on a pooled socket would
        otherwise keep answering from the dead agent's state (a
        zombie site that masks the outage -- and, after restart,
        bypasses the recovered agent entirely)."""
        from repro.net import OAConfig, RetryPolicy

        config = DurabilityConfig(directory=str(tmp_path / "d"),
                                  sync_every=0)
        cluster = TcpCluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PLAN),
            durability=config, clock=lambda: 1000.0,
            oa_config=OAConfig(
                cache_results=False,
                retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0,
                                         max_delay=0.0, jitter=0.0,
                                         sleep=lambda _s: None)))
        try:
            top = cluster.cluster.agents["top"]
            # Warm a pooled connection into oak's handler thread.
            results, outcome = top.answer_user_query(QUERY_SUITE[0])
            assert outcome.complete and results

            cluster.kill_site("oak")
            results, outcome = top.answer_user_query(QUERY_SUITE[0])
            assert not outcome.complete  # dead means dead

            restarted = cluster.restart_site("oak")
            results, outcome = top.answer_user_query(QUERY_SUITE[0])
            assert outcome.complete and results
            # The answer came from the recovered agent, over the wire.
            assert restarted.stats["subqueries_served"] > 0
        finally:
            cluster.close(drain=False)


class TestOverloadProtection:
    def _start_server(self, paper_doc, paper_plan, max_pending):
        from repro.net.dns import DnsResolver, DnsServer
        from repro.net.oa import OrganizingAgent
        from repro.net.tcpruntime import TcpSiteServer

        plan = PartitionPlan(PLAN)
        databases = plan.build_databases(
            parse_fragment(PAPER_DOCUMENT), default_clock=lambda: 0.0)
        dns = DnsServer()
        for path, site in plan.owner_map(
                parse_fragment(PAPER_DOCUMENT)).items():
            dns.register_id_path(path, site)
        network = TcpNetwork()
        agent = OrganizingAgent("top", databases["top"], network,
                                DnsResolver(dns), clock=lambda: 0.0)
        server = TcpSiteServer(agent, max_pending=max_pending).start()
        network.register_address("top", server.address)
        return server, network

    def test_admission_accounting(self, paper_doc, paper_plan):
        server, network = self._start_server(paper_doc, paper_plan,
                                             max_pending=2)
        try:
            assert server.admit() and server.admit()
            assert not server.admit()  # queue full
            stats = server.server_stats()
            assert stats["overload_rejections"] == 1
            assert stats["queue_depth"] == 2
            assert stats["max_queue_depth"] == 2
            server.release()
            assert server.admit()  # a slot freed up
            server.release()
            server.release()
        finally:
            server.stop(drain=False)
            network.close()

    def test_overloaded_server_sheds_with_retryable_error(
            self, paper_doc, paper_plan):
        server, network = self._start_server(paper_doc, paper_plan,
                                             max_pending=1)
        try:
            # Wedge the agent lock so one admitted request occupies the
            # whole queue, then talk to the server directly.
            with server.agent_lock:
                assert server.admit()  # the wedged in-flight request
                reply = network.request(
                    "client", "top",
                    QueryMessage(PREFIX, sender="client"))
                server.release()
            assert isinstance(reply, ErrorMessage)
            assert reply.code == "server-overloaded"
            assert reply.retryable
            assert server.server_stats()["overload_rejections"] >= 1
        finally:
            server.stop(drain=False)
            network.close()

    def test_retry_layer_heals_transient_overload(self, tmp_path):
        """The retryable rejection composes with client backoff."""
        from repro.net import OAConfig, RetryPolicy

        config = DurabilityConfig(directory=str(tmp_path / "d"),
                                  sync_every=0)
        released = []

        def sleep_and_unwedge(_seconds):
            # The first backoff sleep frees oak's wedged queue slot --
            # a deterministic "transient" overload.
            if not released:
                released.append(True)
                cluster.servers["oak"].release()

        cluster = TcpCluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PLAN),
            durability=config, max_pending=1, clock=lambda: 1000.0,
            oa_config=OAConfig(retry_policy=RetryPolicy(
                max_attempts=4, base_delay=0.01, max_delay=0.05,
                sleep=sleep_and_unwedge)))
        try:
            server = cluster.servers["oak"]
            assert server.admit()  # wedge oak's queue full
            # Route through top so the oak subquery crosses the wire
            # and hits oak's (full) admission queue.
            results, outcome = cluster.cluster.agents[
                "top"].answer_user_query(QUERY_SUITE[0])
            assert released  # the rejection triggered a retry
            assert results and outcome.complete  # healed, not degraded
            assert server.stats["overload_rejections"] >= 1
        finally:
            cluster.close(drain=False)


class TestGracefulDrain:
    def test_draining_server_rejects_and_closes(self, tmp_path):
        config = DurabilityConfig(directory=str(tmp_path / "d"),
                                  sync_every=0)
        cluster = TcpCluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PLAN),
            durability=config, clock=lambda: 1000.0)
        try:
            server = cluster.servers["oak"]
            # Establish a pooled connection first: after begin_drain
            # the accept loop is stopped, but live connections are
            # still answered (with rejections) until they close.
            warm = cluster.network.request(
                "client", "oak",
                QueryMessage(QUERY_SUITE[0], user=True, sender="client"))
            assert warm.kind == "answer"
            server.begin_drain()
            assert server.wait_drained(timeout=5.0)
            reply = cluster.network.request(
                "client", "oak",
                QueryMessage(QUERY_SUITE[0], user=True, sender="client"))
            assert isinstance(reply, ErrorMessage)
            assert reply.code == "server-overloaded"
            assert reply.retryable
            assert server.server_stats()["drain_rejections"] >= 1
        finally:
            cluster.close(drain=False)

    def test_close_drains_wal_and_checkpoints(self, tmp_path):
        config = DurabilityConfig(directory=str(tmp_path / "d"),
                                  sync_every=0)
        cluster = TcpCluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PLAN),
            durability=config, clock=lambda: 1000.0)
        cluster.cluster.agents["oak"].database.apply_update(
            OAK_SPACE_1, values={"price": "60"})
        before = fingerprints(cluster.cluster)
        cluster.close()  # graceful: drain + final checkpoints

        reborn = TcpCluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PLAN),
            durability=config, clock=lambda: 1000.0)
        try:
            assert fingerprints(reborn.cluster) == before
        finally:
            reborn.close()

    def test_metrics_include_server_and_durability(self, tmp_path):
        config = DurabilityConfig(directory=str(tmp_path / "d"),
                                  sync_every=0)
        cluster = TcpCluster(
            parse_fragment(PAPER_DOCUMENT), PartitionPlan(PLAN),
            durability=config, clock=lambda: 1000.0)
        try:
            cluster.cluster.query(QUERY_SUITE[0])
            snapshot = cluster.metrics()
            assert set(snapshot["servers"]) == set(PLAN)
            assert "queue_depth" in snapshot["servers"]["oak"]
            assert snapshot["durability"]["checkpoints_written"] >= 4
            assert "oak" in snapshot["durability"]["sites"]
        finally:
            cluster.close()
