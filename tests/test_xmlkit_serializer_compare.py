"""Unit tests for serialization, canonicalization and diffing."""

from repro.xmlkit import (
    Element,
    canonical_form,
    diff_trees,
    escape_attribute,
    escape_text,
    parse_fragment,
    serialize,
    tree_hash,
    trees_equal,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi" & <go>') == \
            "say &quot;hi&quot; &amp; &lt;go&gt;"

    def test_serialized_special_chars_roundtrip(self):
        element = Element("a", attrib={"x": 'v"<'}, text="t<&")
        again = parse_fragment(serialize(element))
        assert again.get("x") == 'v"<'
        assert again.text == "t<&"

    def test_every_escaped_char_roundtrips(self):
        # The full set the translate tables rewrite, mixed with
        # untouched neighbours, in both text and attribute position.
        payload = 'a&b<c>d"e\'f & << >> "" &amp;'
        element = Element("a", attrib={"x": payload}, text=payload)
        again = parse_fragment(serialize(element))
        assert again.get("x") == payload
        assert again.text == payload

    def test_escape_leaves_clean_strings_alone(self):
        clean = "plain text 123 _-.:'"
        assert escape_text(clean) == clean
        assert escape_attribute(clean) == clean

    def test_escape_every_table_entry(self):
        assert escape_text('&<>"') == '&amp;&lt;&gt;"'
        assert escape_attribute('&<>"') == "&amp;&lt;&gt;&quot;"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(Element("a")) == "<a/>"

    def test_attributes_and_text(self):
        element = Element("a", attrib={"id": "1"}, text="hi")
        assert serialize(element) == '<a id="1">hi</a>'

    def test_sorted_attributes_deterministic(self):
        element = Element("a", attrib={"b": "2", "a": "1"})
        assert serialize(element, sort_attributes=True) == '<a a="1" b="2"/>'

    def test_pretty_has_indentation(self):
        element = parse_fragment("<a><b><c/></b></a>")
        pretty = serialize(element, pretty=True)
        assert "  <b>" in pretty
        assert "    <c/>" in pretty

    def test_pretty_inlines_text_only_elements(self):
        element = parse_fragment("<a><b>text</b></a>")
        assert "<b>text</b>" in serialize(element, pretty=True)


class TestCanonical:
    def test_sibling_order_irrelevant(self):
        left = parse_fragment("<a><b id='1'/><c id='2'/></a>")
        right = parse_fragment("<a><c id='2'/><b id='1'/></a>")
        assert trees_equal(left, right)
        assert tree_hash(left) == tree_hash(right)

    def test_attribute_order_irrelevant(self):
        assert trees_equal(parse_fragment("<a x='1' y='2'/>"),
                           parse_fragment("<a y='2' x='1'/>"))

    def test_different_text_not_equal(self):
        assert not trees_equal(parse_fragment("<a>x</a>"),
                               parse_fragment("<a>y</a>"))

    def test_multiset_semantics(self):
        left = parse_fragment("<a><b/><b/></a>")
        right = parse_fragment("<a><b/></a>")
        assert not trees_equal(left, right)

    def test_deep_reorder(self):
        left = parse_fragment("<a><b><x/><y/></b></a>")
        right = parse_fragment("<a><b><y/><x/></b></a>")
        assert canonical_form(left) == canonical_form(right)


class TestDiff:
    def test_equal_trees_no_diff(self, paper_doc):
        assert diff_trees(paper_doc, paper_doc.copy()) == []

    def test_attribute_diff_reported(self):
        left = parse_fragment("<a x='1'/>")
        right = parse_fragment("<a x='2'/>")
        problems = diff_trees(left, right)
        assert len(problems) == 1
        assert "attributes differ" in problems[0]

    def test_missing_child_reported(self):
        left = parse_fragment("<a><b id='1'/></a>")
        right = parse_fragment("<a/>")
        problems = diff_trees(left, right)
        assert any("no match" in p for p in problems)

    def test_tag_mismatch_reported(self):
        problems = diff_trees(parse_fragment("<a/>"), parse_fragment("<b/>"))
        assert any("tag" in p for p in problems)
