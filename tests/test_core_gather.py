"""Unit tests for the gather driver over hand-wired multi-site setups."""

import pytest

from repro.core import (
    CoreError,
    GatherDriver,
    HierarchySchema,
    PartitionPlan,
    Status,
    get_status,
)
from repro.xmlkit import serialize

from tests.conftest import (
    FIGURE2_QUERY,
    OAKLAND,
    SHADYSIDE,
    id_path,
)

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


def build_mesh(paper_doc, cache_results=True, nesting_strategy=None):
    """Drivers for a 3-site deployment with direct owner routing."""
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
        "shady": [SHADYSIDE],
    })
    owners = plan.owner_map(paper_doc)
    dbs = plan.build_databases(paper_doc)
    schema = HierarchySchema.from_document(paper_doc)
    drivers = {}
    sent_log = []

    def owner_site_of(path):
        path = tuple(tuple(e) for e in path)
        while path and path not in owners:
            path = path[:-1]
        return owners.get(path)

    def make_send(site):
        def send(subquery):
            target = owner_site_of(subquery.anchor_path)
            sent_log.append((site, target, subquery.query))
            return drivers[target].answer_any(subquery.query)
        return send

    kwargs = {}
    if nesting_strategy is not None:
        kwargs["nesting_strategy"] = nesting_strategy
    for site, db in dbs.items():
        drivers[site] = GatherDriver(db, make_send(site), schema=schema,
                                     cache_results=cache_results, **kwargs)
    return drivers, dbs, sent_log


class TestAnswering:
    def test_figure2_query_distributed(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        results, outcome = drivers["top"].answer_user_query(FIGURE2_QUERY)
        answers = sorted(
            (r.parent is None, r.id, r.child("price").text) for r in results
        )
        assert [(a[1], a[2]) for a in answers] == \
            [("1", "25"), ("1", "50"), ("2", "25")]
        assert outcome.used_remote_data

    def test_results_are_clean_copies(self, paper_doc):
        drivers, dbs, _log = build_mesh(paper_doc)
        results, _ = drivers["top"].answer_user_query(FIGURE2_QUERY)
        for result in results:
            assert result.get("status") is None
            assert result.parent is None

    def test_second_query_serves_from_cache(self, paper_doc):
        drivers, _dbs, log = build_mesh(paper_doc)
        query = PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
        drivers["top"].answer_user_query(query)
        first_count = len(log)
        results, outcome = drivers["top"].answer_user_query(query)
        assert len(log) == first_count  # no new traffic
        assert not outcome.used_remote_data
        assert len(results) == 1

    def test_caching_disabled_requeries(self, paper_doc):
        drivers, dbs, log = build_mesh(paper_doc, cache_results=False)
        query = PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
        drivers["top"].answer_user_query(query)
        first_count = len(log)
        drivers["top"].answer_user_query(query)
        assert len(log) > first_count
        # And the site database stayed pristine.
        assert get_status(dbs["top"].find(OAKLAND)) is Status.INCOMPLETE

    def test_partial_match_after_narrower_query(self, paper_doc):
        """Figure-2-style partial-match: block 1 cached via an earlier
        query is reused; only block 2 is fetched."""
        drivers, _dbs, log = build_mesh(paper_doc)
        drivers["top"].answer_user_query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']")
        log.clear()
        results, _ = drivers["top"].answer_user_query(
            PREFIX + "/neighborhood[@id='Oakland']"
            "/block[@id='1' or @id='2']")
        assert len(results) == 2
        assert all("block[@id = '2']" in q for _s, _t, q in log)

    def test_empty_answer_for_nonexistent(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        results, outcome = drivers["top"].answer_user_query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='99']")
        assert results == []

    def test_negative_remote_answer_not_repeated(self, paper_doc):
        drivers, _dbs, log = build_mesh(paper_doc)
        query = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
                 "/parkingSpace[available='nope']")
        results, outcome = drivers["top"].answer_user_query(query)
        assert results == []
        assert outcome.rounds <= 3


class TestScalars:
    def test_count(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        count = drivers["top"].answer_scalar(
            f"count({PREFIX}/neighborhood[@id='Oakland']"
            "//parkingSpace[available='yes'])")
        assert count == 2.0

    def test_boolean(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        assert drivers["shady"].answer_scalar(
            f"boolean({PREFIX}/neighborhood[@id='Oakland'])") is True

    def test_sum(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        total = drivers["top"].answer_scalar(
            f"sum({PREFIX}/neighborhood[@id='Shadyside']"
            "/block[@id='1']/parkingSpace/price)")
        assert total == 75.0

    def test_unsupported_scalar_rejected(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        with pytest.raises(CoreError):
            drivers["top"].answer_scalar("concat('a', 'b')")


class TestNestedGather:
    NESTED = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
              "/parkingSpace[not(price > ../parkingSpace/price)]")

    def test_fetch_subtree_strategy(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        results, outcome = drivers["shady"].answer_user_query(self.NESTED)
        assert [r.child("price").text for r in results] == ["0"]

    def test_probe_strategy(self, paper_doc):
        from repro.core.qeg import BOOLEAN_PROBE

        drivers, _dbs, _log = build_mesh(paper_doc,
                                         nesting_strategy=BOOLEAN_PROBE)
        query = PREFIX + "[./neighborhood[@id='Oakland']]/neighborhood"
        results, _ = drivers["shady"].answer_user_query(query)
        assert {r.id for r in results} == {"Oakland", "Shadyside"}

    def test_probe_prunes_false(self, paper_doc):
        from repro.core.qeg import BOOLEAN_PROBE

        drivers, _dbs, _log = build_mesh(paper_doc,
                                         nesting_strategy=BOOLEAN_PROBE)
        query = PREFIX + "[./neighborhood[@id='Nowhere']]/neighborhood"
        results, _ = drivers["shady"].answer_user_query(query)
        assert results == []


class TestSubqueryAnswering:
    def test_answer_subquery_is_wire_fragment(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        fragment = drivers["oak"].answer_subquery(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']")
        assert fragment.tag == "usRegion"
        assert "status=" in serialize(fragment)

    def test_answer_any_dispatches(self, paper_doc):
        drivers, _dbs, _log = build_mesh(paper_doc)
        assert drivers["oak"].answer_any(
            "boolean(" + PREFIX + ")") is True
        fragment = drivers["oak"].answer_any(
            PREFIX + "/neighborhood[@id='Oakland']")
        assert fragment.tag == "usRegion"


class TestFailureModes:
    def test_dead_remote_raises_gather_error(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
        })
        dbs = plan.build_databases(paper_doc)
        schema = HierarchySchema.from_document(paper_doc)

        def broken_send(subquery):
            raise ConnectionError("site down")

        driver = GatherDriver(dbs["top"], broken_send, schema=schema)
        with pytest.raises(ConnectionError):
            driver.answer_user_query(
                PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']")

    def test_unhelpful_remote_detected(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
        })
        dbs = plan.build_databases(paper_doc)
        schema = HierarchySchema.from_document(paper_doc)
        # A remote that always returns nothing: queries still terminate
        # (absence is an acceptable answer), with empty results.
        driver = GatherDriver(dbs["top"], lambda sq: None, schema=schema)
        results, _ = driver.answer_user_query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']")
        assert results == []
