"""Tests for the reactor runtime and the pipelined client.

Covers the correlation-id matching that makes out-of-order pipelined
replies safe, the serial-peer compatibility fallback, concurrent
pipelined stress against both server runtimes, the reactor's
backpressure watermarks and overload shedding, the oversized-frame
refusal on both runtimes, and wire parity: with pipelining disabled
the reactor cluster produces byte-identical traffic to the threaded
one.
"""

import itertools
import socket
import struct
import threading
import time

import pytest

from repro.net import AckMessage, QueryMessage
from repro.net.aioruntime import (
    AsyncSiteServer,
    PipelinedTcpNetwork,
    _PipelinedConnection,
)
from repro.net.errors import NetError
from repro.net.framing import (
    MAX_MESSAGE_BYTES,
    FrameReader,
    recv_framed,
    send_framed,
)
from repro.net.messages import Message, peek_message_id, peek_reply_to
from repro.net.tcpruntime import TcpCluster, TcpSiteServer

from tests.conftest import FIGURE2_QUERY, OAKLAND

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


class _AckAgent:
    site_id = "echo"

    def handle_message(self, message):
        return AckMessage(message.message_id, ok=True, sender="echo")


class _SlowAckAgent(_AckAgent):
    def __init__(self, delay):
        self.delay = delay

    def handle_message(self, message):
        time.sleep(self.delay)
        return super().handle_message(message)


@pytest.fixture(params=["threaded", "reactor"])
def echo_server(request):
    cls = TcpSiteServer if request.param == "threaded" else AsyncSiteServer
    server = cls(_AckAgent()).start()
    yield server
    server.stop()


@pytest.fixture
def reactor_cluster(paper_doc, paper_plan):
    with TcpCluster(paper_doc, paper_plan, runtime="reactor") as tcp:
        yield tcp


class TestReactorCluster:
    def test_figure2_query_over_reactor(self, reactor_cluster):
        results, _site, outcome = reactor_cluster.cluster.query(
            FIGURE2_QUERY)
        assert len(results) == 3
        assert outcome.used_remote_data
        assert reactor_cluster.network.pool_stats["pipelined"] > 0

    def test_query_via_messages_over_reactor(self, reactor_cluster):
        results, _site = reactor_cluster.cluster.query_via_messages(
            FIGURE2_QUERY)
        assert len(results) == 3

    def test_updates_over_reactor(self, reactor_cluster):
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = reactor_cluster.cluster.add_sensing_agent("sa-aio", [space])
        sa.network = reactor_cluster.network
        sa.send_update(space, values={"available": "yes"})
        element = reactor_cluster.cluster.database("oak").find(space)
        assert element.child("available").text == "yes"

    def test_pipelined_client_against_threaded_servers(self, paper_doc,
                                                       paper_plan):
        # The client shim composes with the old runtime: pipelined
        # exchanges against connection-per-thread servers.
        with TcpCluster(paper_doc, paper_plan, runtime="threaded",
                        pipelining=True) as tcp:
            results, _site, _ = tcp.cluster.query(FIGURE2_QUERY)
            assert len(results) == 3
            assert tcp.network.pool_stats["pipelined"] > 0
            assert tcp.network.pool_stats["serial_fallbacks"] == 0

    def test_reactor_port_conflict_surfaces_at_start(self):
        taken = socket.socket()
        taken.bind(("127.0.0.1", 0))
        taken.listen(1)
        try:
            with pytest.raises(OSError):
                AsyncSiteServer(_AckAgent(), port=taken.getsockname()[1]
                                ).start()
        finally:
            taken.close()


class _ScriptedPeer:
    """A raw server socket driven by the test, for reply scripting."""

    def __init__(self):
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(2)
        self.address = self.listener.getsockname()
        self.conn = None
        self.reader = None

    def accept(self):
        self.conn, _ = self.listener.accept()
        self.reader = FrameReader(self.conn)
        return self.conn

    def close(self):
        for sock in (self.conn, self.listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass


class TestPipelinedCorrelation:
    def test_out_of_order_replies_matched_by_correlation_id(self):
        peer = _ScriptedPeer()
        network = PipelinedTcpNetwork(connections_per_site=1)
        network.register_address("peer", peer.address)
        replies = {}
        errors = []

        def scripted():
            # Read BOTH requests before answering, then answer them in
            # reverse order: the second request's reply overtakes the
            # first's on the shared connection.
            peer.accept()
            payloads = [peer.reader.recv_frame() for _ in range(2)]
            for payload in reversed(payloads):
                mid = peek_message_id(payload)
                send_framed(peer.conn,
                            AckMessage(mid, ok=True, sender="peer").encode())

        def ask(key):
            try:
                message = QueryMessage(f"/{key}")
                reply = network.request("c", "peer", message)
                replies[key] = (message.message_id, reply)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        server = threading.Thread(target=scripted)
        server.start()
        first = threading.Thread(target=ask, args=("a",))
        first.start()
        time.sleep(0.05)  # let the first exchange take the connection
        second = threading.Thread(target=ask, args=("b",))
        second.start()
        for thread in (first, second, server):
            thread.join(5)
        try:
            assert not errors
            # Each waiter got the reply carrying ITS request id, not
            # the first frame that happened to arrive.
            for key in ("a", "b"):
                sent_id, reply = replies[key]
                assert reply.in_reply_to == sent_id
            assert network.pool_stats["pipeline_connects"] == 1
            assert network.pool_stats["serial_fallbacks"] == 0
        finally:
            network.close()
            peer.close()

    def test_uncorrelated_reply_falls_back_to_serial(self):
        peer = _ScriptedPeer()
        network = PipelinedTcpNetwork(connections_per_site=1)
        network.register_address("peer", peer.address)
        outcome = {}

        def scripted():
            peer.accept()
            payload = peer.reader.recv_frame()
            # An old serial peer: the reply carries no usable
            # correlation id (replyTo=0), so the client must hand it
            # to the oldest waiter and drop to serial mode for good.
            send_framed(peer.conn,
                        AckMessage(0, ok=True, sender="peer").encode())
            # The next exchange still works (now strictly serial).
            payload = peer.reader.recv_frame()
            send_framed(peer.conn, AckMessage(
                peek_message_id(payload), ok=True, sender="peer").encode())

        server = threading.Thread(target=scripted)
        server.start()
        try:
            first = network.request("c", "peer", QueryMessage("/a"))
            assert first.ok
            assert network.pool_stats["serial_fallbacks"] == 1
            stats = network.pipeline_stats()["peer"]
            assert stats[0]["serial_only"] is True

            second = network.request("c", "peer", QueryMessage("/b"))
            assert second.ok
            # Only counted at the moment of falling back, not per use.
            assert network.pool_stats["serial_fallbacks"] == 1
        finally:
            server.join(5)
            network.close()
            peer.close()

    def test_timed_out_request_is_tombstoned_not_misdelivered(self):
        left, right = socket.socketpair()
        conn = _PipelinedConnection(left, "peer", max_inflight=8,
                                    timeout=0.3)
        server_reader = FrameReader(right)
        try:
            survivor = conn.send_async(8, QueryMessage("/b").encode())
            with pytest.raises(NetError, match="timed out"):
                conn.exchange(7, QueryMessage("/a").encode())
            for _ in range(2):  # both frames reached the peer
                assert server_reader.recv_frame() is not None
            # The late reply to the abandoned request must be dropped
            # by its tombstone -- NOT delivered oldest-first, which
            # would hand request 8 the wrong payload.
            send_framed(right, AckMessage(7, ok=True,
                                          sender="peer").encode())
            send_framed(right, AckMessage(8, ok=True,
                                          sender="peer").encode())
            assert survivor.event.wait(2)
            assert survivor.error is None
            assert peek_reply_to(survivor.payload) == 8
            assert conn.serial_only is False
            assert conn.inflight == 0
        finally:
            conn.close()
            right.close()

    def test_connection_death_fails_all_waiters_fast(self):
        left, right = socket.socketpair()
        conn = _PipelinedConnection(left, "peer", max_inflight=8,
                                    timeout=30.0)
        try:
            waiters = [conn.send_async(i, QueryMessage("/a").encode())
                       for i in (1, 2, 3)]
            right.close()  # the peer resets mid-flight
            for waiter in waiters:
                assert waiter.event.wait(2)
                assert isinstance(waiter.error, (NetError, OSError))
            assert conn.closed
            with pytest.raises(NetError, match="closed"):
                conn.send_async(4, QueryMessage("/a").encode())
        finally:
            conn.close()


class TestPipelinedStress:
    def test_concurrent_pipelined_exchanges_share_one_connection(
            self, echo_server):
        """32 threads, 4 exchanges each, one socket -- both runtimes."""
        network = PipelinedTcpNetwork(connections_per_site=1,
                                      max_inflight=64)
        network.register_address("echo", echo_server.address)
        errors = []

        # Establish the single shared connection before the stampede
        # so every thread pipelines over it.
        assert network.request("c", "echo", QueryMessage("/warm")).ok

        def client():
            try:
                for _ in range(4):
                    message = QueryMessage("/q")
                    reply = network.request("c", "echo", message)
                    assert reply.ok
                    assert reply.in_reply_to == message.message_id
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        try:
            assert not errors
            assert network.pool_stats["pipeline_connects"] == 1
            assert network.pool_stats["pipelined"] == 1 + 32 * 4
            assert network.pool_stats["serial_fallbacks"] == 0
        finally:
            network.close()

    def test_request_async_futures_resolve(self, echo_server):
        network = PipelinedTcpNetwork(connections_per_site=1)
        network.register_address("echo", echo_server.address)
        try:
            messages = [QueryMessage(f"/q{i}") for i in range(10)]
            futures = [network.request_async("c", "echo", m)
                       for m in messages]
            for message, future in zip(messages, futures):
                reply = future.result(timeout=10)
                assert reply.ok
                assert reply.in_reply_to == message.message_id
        finally:
            network.close()


class TestReactorBackpressure:
    def test_overload_sheds_with_retryable_error(self):
        server = AsyncSiteServer(_SlowAckAgent(0.15), max_pending=2,
                                 handler_workers=1).start()
        sock = socket.create_connection(server.address)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            messages = [QueryMessage(f"/q{i}") for i in range(8)]
            # One burst, one write: the frames land in one (or few)
            # data_received calls, ahead of any read-pause, so the
            # admission gate itself must shed the excess.
            sock.sendall(b"".join(
                struct.pack(">I", len(e := m.encode().encode("utf-8"))) + e
                for m in messages))
            reader = FrameReader(sock)
            acks, sheds = [], []
            for _ in range(8):
                reply = Message.decode(reader.recv_frame())
                (sheds if reply.kind == "error" else acks).append(reply)
            assert len(acks) + len(sheds) == 8
            assert sheds, "an 8-frame burst past max_pending=2 must shed"
            sent_ids = {m.message_id for m in messages}
            for shed in sheds:
                assert shed.code == "server-overloaded"
                assert shed.retryable is True
                assert shed.in_reply_to in sent_ids  # peeked, not parsed
            stats = server.server_stats()
            assert stats["overload_rejections"] == len(sheds)
            assert stats["admitted"] == len(acks)
        finally:
            sock.close()
            server.stop()

    def test_read_pause_and_resume_watermarks(self):
        server = AsyncSiteServer(_SlowAckAgent(0.03), max_pending=8,
                                 handler_workers=1).start()
        network = PipelinedTcpNetwork(connections_per_site=1,
                                      max_inflight=64)
        network.register_address("echo", server.address)
        try:
            # Paced arrivals outrun the 30ms handler: the admitted
            # queue climbs past the pause watermark (6 of 8), the
            # reactor stops reading, the backlog drains to the resume
            # watermark, reading resumes -- and nothing is shed,
            # because TCP flow control held the rest at the peer.
            futures = []
            for i in range(12):
                futures.append(network.request_async(
                    "c", "echo", QueryMessage(f"/q{i}")))
                time.sleep(0.004)
            for future in futures:
                assert future.result(timeout=10).ok
            stats = server.server_stats()
            assert stats["read_pauses"] >= 1
            assert stats["read_resumes"] >= 1
            assert stats["overload_rejections"] == 0
            assert stats["max_queue_depth"] <= 8
        finally:
            network.close()
            server.stop()

    def test_drain_sheds_then_settles(self):
        server = AsyncSiteServer(_AckAgent()).start()
        network = PipelinedTcpNetwork(connections_per_site=1)
        network.register_address("echo", server.address)
        try:
            assert network.request("c", "echo", QueryMessage("/a")).ok
            server.begin_drain()
            # The established pipelined connection gets a structured,
            # retryable refusal (and then loses the connection -- a
            # draining site's pooled sockets must not linger).
            reply = network.request("c", "echo", QueryMessage("/b"))
            assert reply.kind == "error"
            assert reply.code == "server-overloaded"
            assert reply.retryable is True
            assert "draining" in reply.detail
            assert server.wait_drained(timeout=5)
            assert server.server_stats()["drain_rejections"] >= 1
        finally:
            network.close()
            server.stop()


class TestOversizedFrames:
    def test_oversized_frame_answered_then_closed(self, echo_server):
        """A lying length prefix gets a structured non-retryable
        refusal before the connection dies -- on both runtimes."""
        sock = socket.create_connection(echo_server.address)
        try:
            sock.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
            reply = Message.decode(recv_framed(sock))
            assert reply.kind == "error"
            assert reply.code == "frame-too-large"
            assert reply.retryable is False
            assert str(MAX_MESSAGE_BYTES + 1) in reply.detail
            # The stream cannot be resynchronised: the server closes.
            assert recv_framed(sock) is None
        finally:
            sock.close()


class TestWireParity:
    QUERIES = (
        FIGURE2_QUERY,
        PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']",
        PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
                 "/parkingSpace[available='yes']",
    )

    def _run(self, runtime, paper_doc, paper_plan, monkeypatch):
        from repro.net import messages as messages_module
        from repro.xmlkit import canonical_form

        # Pin the process-global message-id sequence (ids show up in
        # the framed bytes) and the clock (timestamps do too).
        monkeypatch.setattr(messages_module, "_SEQUENCE",
                            itertools.count(1000))
        with TcpCluster(paper_doc.copy(), paper_plan, runtime=runtime,
                        pipelining=False, clock=lambda: 1000.0) as tcp:
            answers = []
            for query in self.QUERIES:
                results, _, _ = tcp.cluster.query(query)
                answers.append(sorted(canonical_form(r) for r in results))
            return answers, tcp.network.traffic.summary()

    def test_reactor_without_pipelining_is_byte_identical(
            self, paper_doc, paper_plan, monkeypatch):
        threaded = self._run("threaded", paper_doc, paper_plan, monkeypatch)
        reactor = self._run("reactor", paper_doc, paper_plan, monkeypatch)
        assert reactor[0] == threaded[0]
        assert reactor[1] == threaded[1]

    def test_pipelined_answers_match_threaded(self, paper_doc, paper_plan):
        from repro.xmlkit import canonical_form

        def norm(items):
            out = []
            for item in items:
                clone = item.copy()
                for node in clone.iter():
                    node.delete_attribute("timestamp")
                out.append(canonical_form(clone))
            return sorted(out)

        with TcpCluster(paper_doc.copy(), paper_plan) as tcp:
            threaded, _, _ = tcp.cluster.query(FIGURE2_QUERY)
            threaded = norm(threaded)
        with TcpCluster(paper_doc.copy(), paper_plan,
                        runtime="reactor") as tcp:
            reactor, _, _ = tcp.cluster.query(FIGURE2_QUERY)
            reactor = norm(reactor)
        assert reactor == threaded
