"""Unit tests for the site database: merging, updates, eviction."""

import pytest

from repro.core import (
    CacheError,
    CoreError,
    PartitionPlan,
    SensorDatabase,
    Status,
    UnknownNodeError,
    get_status,
    get_timestamp,
    structural_violations,
)
from repro.xmlkit import parse_fragment

from tests.conftest import OAKLAND, SHADYSIDE, id_path


@pytest.fixture
def oak_db(paper_doc, settable_clock):
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
    })
    return plan.build_databases(
        paper_doc, default_clock=settable_clock)["oak"]


@pytest.fixture
def top_db(paper_doc, settable_clock):
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
        "shady": [SHADYSIDE],
    })
    return plan.build_databases(
        paper_doc, default_clock=settable_clock)["top"]


class TestConstruction:
    def test_empty(self):
        db = SensorDatabase.empty("usRegion", "NE")
        assert db.root.tag == "usRegion"
        assert get_status(db.root) is Status.INCOMPLETE

    def test_requires_element(self):
        with pytest.raises(CoreError):
            SensorDatabase("not an element")

    def test_bootstrap_statuses(self, oak_db):
        assert get_status(oak_db.find(OAKLAND)) is Status.OWNED
        # Ancestors hold local ID information.
        city = oak_db.find(OAKLAND[:-1])
        assert get_status(city) is Status.ID_COMPLETE
        # Sibling neighborhood appears as a stub (part of city's ID info).
        assert get_status(oak_db.find(SHADYSIDE)) is Status.INCOMPLETE

    def test_bootstrap_structurally_valid(self, oak_db):
        assert structural_violations(oak_db) == []

    def test_owned_paths(self, oak_db):
        owned = oak_db.owned_paths()
        assert OAKLAND in owned
        # The whole owned region: neighborhood + 2 blocks + 3 spaces.
        assert len(owned) == 6


class TestStatusQueries:
    def test_effective_status_climbs(self, oak_db):
        neighborhood = oak_db.find(OAKLAND)
        aggregate = neighborhood.child("available-spaces")
        assert oak_db.effective_status(aggregate) is Status.OWNED

    def test_owns(self, oak_db):
        assert oak_db.owns(oak_db.find(OAKLAND))
        assert not oak_db.owns(oak_db.find(SHADYSIDE))


class TestUpdates:
    def test_apply_update_sets_values_and_timestamp(self, oak_db,
                                                    settable_clock):
        settable_clock.now = 5000.0
        path = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        element = oak_db.apply_update(path, values={"available": "yes"})
        assert element.child("available").text == "yes"
        assert get_timestamp(element) == 5000.0

    def test_apply_update_attributes(self, oak_db):
        element = oak_db.apply_update(OAKLAND, attributes={"zipcode": "999"})
        assert element.get("zipcode") == "999"

    def test_update_creates_missing_value_child(self, oak_db):
        element = oak_db.apply_update(OAKLAND, values={"note": "hi"})
        assert element.child("note").text == "hi"

    def test_update_rejects_non_owned(self, oak_db):
        with pytest.raises(CoreError):
            oak_db.apply_update(SHADYSIDE, values={"x": "1"})

    def test_update_rejects_unknown_node(self, oak_db):
        with pytest.raises(UnknownNodeError):
            oak_db.apply_update(OAKLAND + (("block", "99"),),
                                values={"x": "1"})

    def test_update_cannot_touch_id_or_status(self, oak_db):
        with pytest.raises(CoreError):
            oak_db.apply_update(OAKLAND, attributes={"id": "Hacked"})
        with pytest.raises(CoreError):
            oak_db.apply_update(OAKLAND, attributes={"status": "owned"})

    def test_update_cannot_target_idable_child_value(self, oak_db):
        with pytest.raises(CoreError):
            oak_db.apply_update(OAKLAND, values={"block": "zap"})


class TestStoreFragment:
    def _wire_fragment(self):
        """A fragment as produced by a remote QEG answer for Shadyside."""
        return parse_fragment("""
        <usRegion id='NE' status='id-complete'>
          <state id='PA' status='id-complete'>
            <county id='Allegheny' status='id-complete'>
              <city id='Pittsburgh' status='id-complete'>
                <neighborhood id='Oakland' status='incomplete'/>
                <neighborhood id='Shadyside' status='complete'
                              zipcode='15232' timestamp='2000.0'>
                  <available-spaces>3</available-spaces>
                  <block id='1' status='incomplete'/>
                </neighborhood>
              </city>
            </county>
          </state>
        </usRegion>
        """)

    def test_upgrade_from_stub(self, oak_db):
        assert get_status(oak_db.find(SHADYSIDE)) is Status.INCOMPLETE
        oak_db.store_fragment(self._wire_fragment())
        shady = oak_db.find(SHADYSIDE)
        assert get_status(shady) is Status.COMPLETE
        assert shady.get("zipcode") == "15232"
        assert shady.child("available-spaces").text == "3"
        assert structural_violations(oak_db) == []

    def test_owned_nodes_never_touched(self, oak_db):
        fragment = self._wire_fragment()
        oakland = fragment.child("state").child("county").child("city") \
            .child("neighborhood", id="Oakland")
        oakland.set("status", "complete")
        oakland.set("zipcode", "INTRUDER")
        oakland.set("timestamp", "99999.0")
        oak_db.store_fragment(fragment)
        assert get_status(oak_db.find(OAKLAND)) is Status.OWNED
        assert oak_db.find(OAKLAND).get("zipcode") == "15213"

    def test_newer_timestamp_refreshes(self, oak_db):
        oak_db.store_fragment(self._wire_fragment())
        fresher = self._wire_fragment()
        shady = fresher.child("state").child("county").child("city") \
            .child("neighborhood", id="Shadyside")
        shady.set("timestamp", "3000.0")
        shady.child("available-spaces").set_text("1")
        oak_db.store_fragment(fresher)
        assert oak_db.find(SHADYSIDE).child("available-spaces").text == "1"

    def test_older_timestamp_ignored(self, oak_db):
        oak_db.store_fragment(self._wire_fragment())
        staler = self._wire_fragment()
        shady = staler.child("state").child("county").child("city") \
            .child("neighborhood", id="Shadyside")
        shady.set("timestamp", "1.0")
        shady.child("available-spaces").set_text("9")
        oak_db.store_fragment(staler)
        assert oak_db.find(SHADYSIDE).child("available-spaces").text == "3"

    def test_root_mismatch_rejected(self, oak_db):
        with pytest.raises(CacheError):
            oak_db.store_fragment(parse_fragment("<other id='X'/>"))

    def test_never_downgrades(self, oak_db):
        oak_db.store_fragment(self._wire_fragment())
        weaker = self._wire_fragment()
        shady = weaker.child("state").child("county").child("city") \
            .child("neighborhood", id="Shadyside")
        shady.set("status", "incomplete")
        for child in list(shady.children):
            shady.remove(child)
        for name in list(shady.attrib):
            if name not in ("id", "status"):
                shady.delete_attribute(name)
        oak_db.store_fragment(weaker)
        assert get_status(oak_db.find(SHADYSIDE)) is Status.COMPLETE


class TestEviction:
    def test_evict_to_stub(self, oak_db):
        oak_db.store_fragment(TestStoreFragment._wire_fragment(None))
        oak_db.evict(SHADYSIDE)
        shady = oak_db.find(SHADYSIDE)
        assert get_status(shady) is Status.INCOMPLETE
        assert shady.children == []
        assert structural_violations(oak_db) == []

    def test_evict_keep_ids_demotes_to_id_complete(self, oak_db):
        oak_db.store_fragment(TestStoreFragment._wire_fragment(None))
        oak_db.evict(SHADYSIDE, keep_ids=True)
        shady = oak_db.find(SHADYSIDE)
        assert get_status(shady) is Status.ID_COMPLETE
        # Child IDs survive, local content does not.
        assert shady.child("block", id="1") is not None
        assert shady.child("available-spaces") is None
        assert structural_violations(oak_db) == []

    def test_cannot_evict_owned(self, oak_db):
        with pytest.raises(CacheError):
            oak_db.evict(OAKLAND)

    def test_cannot_evict_subtree_containing_owned(self, oak_db):
        with pytest.raises(CacheError):
            oak_db.evict(OAKLAND[:-1])  # the city above the owned region


class TestOwnershipMarks:
    def test_release_and_mark(self, oak_db):
        oak_db.release_ownership(OAKLAND + (("block", "2"),))
        assert get_status(
            oak_db.find(OAKLAND + (("block", "2"),))) is Status.COMPLETE
        oak_db.mark_owned(OAKLAND + (("block", "2"),))
        assert get_status(
            oak_db.find(OAKLAND + (("block", "2"),))) is Status.OWNED

    def test_mark_owned_requires_local_info(self, oak_db):
        with pytest.raises(CoreError):
            oak_db.mark_owned(SHADYSIDE)  # only a stub here

    def test_release_requires_owned(self, oak_db):
        with pytest.raises(CoreError):
            oak_db.release_ownership(SHADYSIDE)


def test_describe_mentions_statuses(oak_db):
    text = oak_db.describe()
    assert "[owned]" in text
    assert "neighborhood=Oakland" in text
