"""Unit tests for wire messages and the loopback transport."""

import pytest

from repro.net import (
    AckMessage,
    AdoptMessage,
    AnswerMessage,
    BatchAnswerMessage,
    BatchQueryMessage,
    LoopbackNetwork,
    Message,
    MessageError,
    QueryMessage,
    UnknownSite,
    UpdateMessage,
)
from repro.xmlkit import parse_fragment, trees_equal


class TestEncoding:
    def test_query_roundtrip(self):
        message = QueryMessage("/a[@id='1']/b", now=123.5, scalar=True,
                               user=False, sender="site-1")
        decoded = Message.decode(message.encode())
        assert isinstance(decoded, QueryMessage)
        assert decoded.query == "/a[@id='1']/b"
        assert decoded.now == 123.5
        assert decoded.scalar is True
        assert decoded.user is False
        assert decoded.sender == "site-1"
        assert decoded.message_id == message.message_id

    def test_query_with_special_characters(self):
        message = QueryMessage("/a[price < 5 and name != \"x&y\"]")
        decoded = Message.decode(message.encode())
        assert decoded.query == "/a[price < 5 and name != \"x&y\"]"

    def test_answer_with_fragment(self):
        fragment = parse_fragment("<a id='1' status='complete'><b/></a>")
        message = AnswerMessage(7, fragment=fragment, sender="s")
        decoded = Message.decode(message.encode())
        assert decoded.in_reply_to == 7
        assert trees_equal(decoded.fragment, fragment)

    def test_answer_with_scalars(self):
        for value in (True, False, 3.5, None):
            decoded = Message.decode(
                AnswerMessage(1, scalar=value).encode())
            assert decoded.scalar == value

    def test_answer_with_results(self):
        results = [parse_fragment("<r id='1'/>"), parse_fragment("<r id='2'/>")]
        decoded = Message.decode(AnswerMessage(1, results=results).encode())
        assert [r.id for r in decoded.results] == ["1", "2"]

    def test_update_roundtrip(self):
        message = UpdateMessage(
            [("a", "1"), ("b", "2")],
            attributes={"zipcode": "15213"},
            values={"available": "yes"},
            sender="sa-1",
        )
        decoded = Message.decode(message.encode())
        assert decoded.id_path == (("a", "1"), ("b", "2"))
        assert decoded.attributes == {"zipcode": "15213"}
        assert decoded.values == {"available": "yes"}

    def test_ack_roundtrip(self):
        decoded = Message.decode(
            AckMessage(9, ok=False, detail="nope").encode())
        assert decoded.in_reply_to == 9
        assert decoded.ok is False
        assert decoded.detail == "nope"

    def test_adopt_roundtrip(self):
        fragment = parse_fragment("<a id='1' status='complete'/>")
        message = AdoptMessage([[("a", "1")]], fragment)
        decoded = Message.decode(message.encode())
        assert decoded.id_paths == [(("a", "1"),)]
        assert trees_equal(decoded.fragment, fragment)

    def test_batch_query_roundtrip(self):
        message = BatchQueryMessage(
            [("/a[@id='1']/b", False), ("count(/a//spot)", True)],
            now=42.25, sender="site-3")
        decoded = Message.decode(message.encode())
        assert isinstance(decoded, BatchQueryMessage)
        assert decoded.items == [("/a[@id='1']/b", False),
                                 ("count(/a//spot)", True)]
        assert decoded.now == 42.25
        assert decoded.sender == "site-3"
        assert len(decoded) == 2

    def test_batch_query_single_item(self):
        decoded = Message.decode(
            BatchQueryMessage([("/a", True)]).encode())
        assert decoded.items == [("/a", True)]
        assert decoded.now is None

    def test_batch_query_empty(self):
        decoded = Message.decode(BatchQueryMessage([]).encode())
        assert decoded.items == []
        assert len(decoded) == 0

    def test_batch_query_special_characters(self):
        query = "/a[price < 5 and name != \"x&y\"]"
        decoded = Message.decode(
            BatchQueryMessage([(query, False)]).encode())
        assert decoded.items == [(query, False)]

    def test_batch_answer_roundtrip(self):
        fragment = parse_fragment("<a id='1' status='complete'><b/></a>")
        message = BatchAnswerMessage(
            11,
            answers=[fragment, ("scalar", 3.5), None, ("scalar", True)],
            sender="site-9")
        decoded = Message.decode(message.encode())
        assert isinstance(decoded, BatchAnswerMessage)
        assert decoded.in_reply_to == 11
        assert len(decoded) == 4
        assert trees_equal(decoded.answers[0], fragment)
        assert decoded.answers[1] == ("scalar", 3.5)
        assert decoded.answers[2] is None
        assert decoded.answers[3] == ("scalar", True)

    def test_batch_answer_empty(self):
        decoded = Message.decode(BatchAnswerMessage(5, answers=[]).encode())
        assert decoded.in_reply_to == 5
        assert decoded.answers == []

    def test_batch_answer_scalar_none_distinct_from_no_answer(self):
        # A remote that *answered* a scalar probe with None is not the
        # same as a remote that had nothing for a fragment ask.
        decoded = Message.decode(
            BatchAnswerMessage(1, answers=[("scalar", None), None]).encode())
        assert decoded.answers[0] == ("scalar", None)
        assert decoded.answers[1] is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(MessageError):
            Message.decode("<message kind='mystery' id='1'/>")

    def test_encoded_size_positive(self):
        assert QueryMessage("/a").encoded_size() > 0

    def test_message_ids_unique(self):
        a, b = QueryMessage("/a"), QueryMessage("/a")
        assert a.message_id != b.message_id


class _EchoAgent:
    def __init__(self):
        self.seen = []

    def handle_message(self, message):
        self.seen.append(message)
        return AckMessage(message.message_id, ok=True, sender="echo")


class TestLoopback:
    def test_request_delivers_and_replies(self):
        network = LoopbackNetwork()
        agent = _EchoAgent()
        network.register("echo", agent)
        reply = network.request("client", "echo", QueryMessage("/a"))
        assert reply.ok
        assert len(agent.seen) == 1

    def test_unknown_site(self):
        with pytest.raises(UnknownSite):
            LoopbackNetwork().request("a", "ghost", QueryMessage("/a"))

    def test_traffic_counted(self):
        network = LoopbackNetwork(count_bytes=True)
        network.register("echo", _EchoAgent())
        network.request("client", "echo", QueryMessage("/a"))
        summary = network.traffic.summary()
        assert summary["messages"] == 2  # request + reply
        assert summary["bytes"] > 0
        assert ("client", "echo") in summary["links"]

    def test_interceptors_run(self):
        network = LoopbackNetwork()
        network.register("echo", _EchoAgent())
        calls = []
        network.interceptors.append(
            lambda src, dst, m: calls.append((src, dst)))
        network.tell("c", "echo", QueryMessage("/a"))
        assert calls == [("c", "echo")]

    def test_interceptor_can_inject_failures(self):
        network = LoopbackNetwork()
        network.register("echo", _EchoAgent())

        def bomb(src, dst, message):
            raise ConnectionError("link down")

        network.interceptors.append(bomb)
        with pytest.raises(ConnectionError):
            network.request("c", "echo", QueryMessage("/a"))
