"""Unit tests for the XML node model."""

import pytest

from repro.xmlkit import Document, Element, Text, XmlStructureError, is_valid_name


class TestNames:
    def test_simple_names_valid(self):
        for name in ("a", "usRegion", "parking-space", "x.y", "_hidden", "A1"):
            assert is_valid_name(name)

    def test_invalid_names(self):
        for name in ("", "1abc", "-x", ".x", "a b", "a<b", "a&b"):
            assert not is_valid_name(name)

    def test_element_rejects_bad_tag(self):
        with pytest.raises(XmlStructureError):
            Element("1bad")

    def test_element_rejects_bad_attribute(self):
        with pytest.raises(XmlStructureError):
            Element("ok", attrib={"1bad": "x"})

    def test_set_rejects_bad_attribute(self):
        with pytest.raises(XmlStructureError):
            Element("ok").set("bad name", "x")


class TestConstruction:
    def test_text_constructor(self):
        element = Element("price", text="25")
        assert element.text == "25"

    def test_children_constructor(self):
        child = Element("a")
        parent = Element("p", children=[child])
        assert child.parent is parent
        assert parent.children == [child]

    def test_attrib_copied_not_aliased(self):
        attrs = {"id": "1"}
        element = Element("a", attrib=attrs)
        attrs["id"] = "2"
        assert element.get("id") == "1"

    def test_set_coerces_to_string(self):
        element = Element("a")
        element.set("n", 42)
        assert element.get("n") == "42"

    def test_id_property(self):
        assert Element("a", attrib={"id": "x"}).id == "x"
        assert Element("a").id is None


class TestMutation:
    def test_append_sets_parent(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        assert child.parent is parent

    def test_append_attached_node_fails(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        with pytest.raises(XmlStructureError):
            Element("q").append(child)

    def test_append_non_node_fails(self):
        with pytest.raises(XmlStructureError):
            Element("p").append("not a node")

    def test_remove_detaches(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        parent.remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_remove_non_child_fails(self):
        with pytest.raises(XmlStructureError):
            Element("p").remove(Element("c"))

    def test_detach(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        assert child.detach() is child
        assert child.parent is None
        # Detaching twice is a no-op.
        child.detach()

    def test_clear_children(self):
        parent = Element("p", children=[Element("a"), Element("b")])
        kids = list(parent.children)
        parent.clear_children()
        assert parent.children == []
        assert all(k.parent is None for k in kids)

    def test_set_text_replaces_only_text(self):
        parent = Element("p", text="old")
        parent.append(Element("keep"))
        parent.set_text("new")
        assert parent.text == "new"
        assert parent.child("keep") is not None

    def test_set_text_none_removes(self):
        parent = Element("p", text="old")
        parent.set_text(None)
        assert parent.text is None

    def test_delete_attribute_noop_when_absent(self):
        element = Element("a")
        element.delete_attribute("nope")  # must not raise


class TestNavigation:
    def _tree(self):
        root = Element("r", attrib={"id": "R"})
        a = root.append(Element("a", attrib={"id": "1"}))
        b = root.append(Element("b"))
        a.append(Element("c", text="deep"))
        b.append(Element("c", text="other"))
        return root, a, b

    def test_element_children_filter(self):
        root, a, b = self._tree()
        assert list(root.element_children()) == [a, b]
        assert list(root.element_children("a")) == [a]

    def test_child_by_tag_and_id(self):
        root, a, _b = self._tree()
        assert root.child("a") is a
        assert root.child("a", id="1") is a
        assert root.child("a", id="2") is None

    def test_iter_visits_all_elements(self):
        root, *_ = self._tree()
        assert sum(1 for _ in root.iter()) == 5
        assert sum(1 for _ in root.iter("c")) == 2

    def test_descendants_excludes_self(self):
        root, *_ = self._tree()
        assert root not in list(root.descendants())
        assert sum(1 for _ in root.descendants()) == 4

    def test_ancestors_and_root(self):
        root, a, _b = self._tree()
        c = a.child("c")
        assert list(c.ancestors()) == [a, root]
        assert c.root() is root
        assert c.depth() == 2
        assert root.depth() == 0

    def test_path_from_root(self):
        root, a, _b = self._tree()
        c = a.child("c")
        assert c.path_from_root() == [root, a, c]

    def test_string_value_concatenates_descendant_text(self):
        root, *_ = self._tree()
        assert root.string_value() == "deepother"

    def test_text_none_vs_empty(self):
        assert Element("a").text is None
        assert Element("a", text="").text == ""

    def test_size(self):
        root, *_ = self._tree()
        assert root.size() == 5


class TestCopy:
    def test_copy_is_deep_and_detached(self):
        root = Element("r", attrib={"id": "R"})
        root.append(Element("a", text="x"))
        clone = root.copy()
        assert clone.parent is None
        assert clone is not root
        assert clone.child("a").text == "x"
        clone.child("a").set_text("y")
        assert root.child("a").text == "x"

    def test_shallow_copy(self):
        root = Element("r", attrib={"id": "R"}, children=[Element("a")])
        clone = root.shallow_copy()
        assert clone.attrib == root.attrib
        assert clone.children == []

    def test_text_copy(self):
        text = Text("hello")
        clone = text.copy()
        assert clone == text and clone is not text


class TestDocument:
    def test_document_requires_element(self):
        with pytest.raises(XmlStructureError):
            Document("nope")

    def test_document_copy(self):
        doc = Document(Element("r", attrib={"id": "1"}))
        clone = doc.copy()
        assert clone.root is not doc.root
        assert clone.root.tag == "r"
