"""Executable version of docs/TUTORIAL.md — the documented steps work."""

from repro.core import SensorDatabase
from repro.net import Cluster, TcpCluster
from repro.xmlkit import parse_fragment

DOCUMENT = """
<campus id='hq'>
  <building id='north'>
    <floor id='1'>
      <room id='101'><temp>21.5</temp><occupied>no</occupied></room>
      <room id='102'><temp>23.0</temp><occupied>yes</occupied></room>
    </floor>
    <floor id='2'>
      <room id='201'><temp>19.0</temp><occupied>no</occupied></room>
    </floor>
  </building>
  <building id='south'>
    <floor id='1'>
      <room id='101'><temp>22.0</temp><occupied>yes</occupied></room>
    </floor>
  </building>
</campus>
"""

PLAN = {
    "hq-site": [[("campus", "hq")]],
    "north-site": [[("campus", "hq"), ("building", "north")]],
    "south-site": [[("campus", "hq"), ("building", "south")]],
}


def build():
    return Cluster(parse_fragment(DOCUMENT), PLAN, service="campus")


def test_step_2_partition_and_dns():
    cluster = build()
    record = cluster.dns.lookup("north.hq.campus.intel-iris.net")
    assert record.site == "north-site"
    assert cluster.validate() == []


def test_step_3_queries():
    cluster = build()
    results, site, outcome = cluster.query(
        "/campus[@id='hq']/building[@id='north']//room[occupied='no']")
    assert {r.id for r in results} == {"101", "201"}
    assert site == "north-site"
    assert not outcome.used_remote_data
    assert cluster.scalar(
        "count(/campus[@id='hq']//room[occupied='no'])") == 2.0


def test_step_3_cross_building_caching():
    cluster = build()
    query = "/campus[@id='hq']//room[occupied='no']"
    _r, site, first = cluster.query(query)
    assert site == "hq-site"
    assert first.used_remote_data
    # Repeats reuse the cache; only predicate re-checks on rooms that
    # failed last time remain (zero with aggressive generalization).
    _r, _s, second = cluster.query(query)
    assert len(second.subqueries_sent) < len(first.subqueries_sent)

    from repro.core import GENERALIZE_AGGRESSIVE
    from repro.net import OAConfig

    eager = Cluster(parse_fragment(DOCUMENT), PLAN, service="campus",
                    oa_config=OAConfig(
                        generalization=GENERALIZE_AGGRESSIVE))
    eager.query(query)
    _r, _s, repeat = eager.query(query)
    assert not repeat.used_remote_data


def test_step_4_updates():
    cluster = build()
    room = (("campus", "hq"), ("building", "north"),
            ("floor", "1"), ("room", "101"))
    thermostat = cluster.add_sensing_agent("thermo-101", [room])
    thermostat.send_update(room, values={"temp": "24.5",
                                         "occupied": "yes"})
    results, _, _ = cluster.query(
        "/campus[@id='hq']/building[@id='north']//room[occupied='no']")
    assert {r.id for r in results} == {"201"}


def test_step_5_staleness_and_precision():
    clock = type("Clock", (), {"now": 0.0,
                               "__call__": lambda self: self.now})()
    cluster = Cluster(parse_fragment(DOCUMENT), PLAN, service="campus",
                      clock=clock)
    query = "count(/campus[@id='hq']//room[occupied='no'])"
    exact = cluster.scalar(query)
    clock.now = 30.0
    assert cluster.scalar(query, max_age=120) == exact


def test_step_6_subscription():
    cluster = build()
    seen = []
    cluster.subscribe(
        "/campus[@id='hq']/building[@id='north']//room[occupied='no']",
        lambda rooms: seen.append({r.id for r in rooms}))
    room = (("campus", "hq"), ("building", "north"),
            ("floor", "1"), ("room", "101"))
    sa = cluster.add_sensing_agent("sa", [room])
    sa.send_update(room, values={"occupied": "yes"})
    assert seen[0] == {"101", "201"}
    assert seen[-1] == {"201"}


def test_step_7_operations():
    cluster = build()
    cluster.delegate((("campus", "hq"), ("building", "north"),
                      ("floor", "2")), "south-site")
    cluster.add_node((("campus", "hq"), ("building", "south"),
                      ("floor", "1")), "room", "103",
                     values={"temp": "20.0", "occupied": "no"})
    results, _, _ = cluster.query(
        "/campus[@id='hq']//room[occupied='no']")
    assert {r.id for r in results} == {"101", "201", "103"}
    assert cluster.validate(structural_only=True) == []


def test_step_8_tcp_and_persistence(tmp_path):
    with TcpCluster(parse_fragment(DOCUMENT), PLAN,
                    service="campus") as tcp:
        results, _, _ = tcp.cluster.query(
            "/campus[@id='hq']//room[occupied='no']")
        assert len(results) == 2
        tcp.cluster.database("north-site").save(
            str(tmp_path / "north.xml"))
    restored = SensorDatabase.load(str(tmp_path / "north.xml"),
                                   site_id="north-site")
    assert restored.find((("campus", "hq"), ("building", "north"),
                          ("floor", "1"), ("room", "101"))) is not None
