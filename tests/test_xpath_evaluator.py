"""Unit tests for XPath evaluation: axes, predicates, functions, types."""

import math

import pytest

from repro.xmlkit import Document, parse_fragment
from repro.xpath import compile_xpath, evaluate_xpath
from repro.xpath.errors import XPathEvaluationError, XPathTypeError
from repro.xpath.types import AttributeRef


@pytest.fixture
def doc():
    return parse_fragment("""
    <shop id='s1'>
      <dept id='d1' floor='2'>
        <item id='i1'><price>10</price><stock>5</stock></item>
        <item id='i2'><price>20</price><stock>0</stock></item>
      </dept>
      <dept id='d2' floor='1'>
        <item id='i3'><price>15</price><stock>7</stock></item>
      </dept>
      <info>general</info>
    </shop>
    """)


def q(query, node, **kw):
    return compile_xpath(query).evaluate(node, **kw)


class TestAxes:
    def test_child(self, doc):
        assert len(q("/shop/dept", doc)) == 2

    def test_child_from_context(self, doc):
        dept = doc.child("dept")
        assert len(q("item", dept)) == 2

    def test_descendant_or_self(self, doc):
        assert len(q("//item", doc)) == 3

    def test_descendant_explicit(self, doc):
        assert len(q("descendant::item", doc)) == 3

    def test_parent(self, doc):
        item = q("//item[@id='i1']", doc)[0]
        assert q("..", item)[0].tag == "dept"

    def test_parent_of_root_is_document(self, doc):
        document = Document(doc)
        result = q("/shop/..", document)
        assert len(result) == 1 and isinstance(result[0], Document)

    def test_ancestor(self, doc):
        item = q("//item[@id='i3']", doc)[0]
        tags = [n.tag for n in q("ancestor::*", item)]
        assert tags == ["dept", "shop"] or sorted(tags) == ["dept", "shop"]

    def test_ancestor_or_self(self, doc):
        item = q("//item[@id='i3']", doc)[0]
        assert len(q("ancestor-or-self::*", item)) == 3

    def test_self(self, doc):
        assert q("self::shop", doc)[0] is doc
        assert q("self::other", doc) == []

    def test_attribute_axis(self, doc):
        result = q("/shop/dept/@floor", doc)
        assert sorted(a.value for a in result) == ["1", "2"]
        assert all(isinstance(a, AttributeRef) for a in result)

    def test_attribute_wildcard(self, doc):
        dept = doc.child("dept")
        assert len(q("@*", dept)) == 2

    def test_wildcard_element(self, doc):
        assert len(q("/shop/*", doc)) == 3

    def test_text_nodes(self, doc):
        result = q("/shop/info/text()", doc)
        assert len(result) == 1 and result[0].value == "general"

    def test_node_test_matches_text_and_elements(self, doc):
        info = doc.child("info")
        assert len(q("node()", info)) == 1  # the text node

    def test_dedup_across_paths(self, doc):
        # Both steps reach the same items; node-set must be deduplicated.
        result = q("//dept/item | /shop/dept/item", doc)
        assert len(result) == 3


class TestPredicates:
    def test_attribute_equality(self, doc):
        assert len(q("//dept[@floor='2']", doc)) == 1

    def test_child_value_comparison(self, doc):
        assert len(q("//item[price > 12]", doc)) == 2

    def test_nested_predicates(self, doc):
        assert len(q("/shop[dept[@floor='1']]", doc)) == 1

    def test_boolean_connectives(self, doc):
        assert len(q("//item[price > 5 and stock > 0]", doc)) == 2
        assert len(q("//item[price > 18 or stock > 6]", doc)) == 2

    def test_existence_predicate(self, doc):
        assert len(q("//item[stock]", doc)) == 3
        assert len(q("//item[missing]", doc)) == 0

    def test_not_function(self, doc):
        assert len(q("//item[not(stock > 0)]", doc)) == 1

    def test_relative_parent_reference(self, doc):
        # Cheapest item per dept, the paper's min() workaround: ".."
        # scopes the comparison to each item's own department.
        result = q("//item[not(price > ../item/price)]", doc)
        assert [n.id for n in result] == ["i1", "i3"]

    def test_multiple_predicates_conjoin(self, doc):
        assert len(q("//item[price > 5][stock > 0]", doc)) == 2


class TestCoreFunctions:
    def test_count(self, doc):
        assert q("count(//item)", doc) == 3.0

    def test_sum(self, doc):
        assert q("sum(//price)", doc) == 45.0

    def test_name(self, doc):
        assert q("name(/shop)", doc) == "shop"

    def test_string_of_element(self, doc):
        assert q("string(//item[@id='i1']/price)", doc) == "10"

    def test_concat_contains_starts(self, doc):
        assert q("concat('a', 'b', 'c')", doc) == "abc"
        assert q("contains('hello', 'ell')", doc) is True
        assert q("starts-with('hello', 'he')", doc) is True

    def test_substring_family(self, doc):
        assert q("substring('12345', 2, 3)", doc) == "234"
        assert q("substring('12345', 2)", doc) == "2345"
        assert q("substring-before('a=b', '=')", doc) == "a"
        assert q("substring-after('a=b', '=')", doc) == "b"

    def test_substring_rounding_rules(self, doc):
        # Spec example: substring('12345', 1.5, 2.6) returns '234'.
        assert q("substring('12345', 1.5, 2.6)", doc) == "234"

    def test_string_length_and_normalize(self, doc):
        assert q("string-length('abc')", doc) == 3.0
        assert q("normalize-space('  a   b ')", doc) == "a b"

    def test_translate(self, doc):
        assert q("translate('bar', 'abc', 'ABC')", doc) == "BAr"
        assert q("translate('--aaa--', 'a-', 'A')", doc) == "AAA"

    def test_number_conversions(self, doc):
        assert q("number('12.5')", doc) == 12.5
        assert math.isnan(q("number('abc')", doc))
        assert q("number(true())", doc) == 1.0

    def test_floor_ceiling_round(self, doc):
        assert q("floor(2.7)", doc) == 2.0
        assert q("ceiling(2.1)", doc) == 3.0
        assert q("round(2.5)", doc) == 3.0
        assert q("round(-2.5)", doc) == -2.0  # XPath rounds .5 toward +inf

    def test_boolean_true_false(self, doc):
        assert q("boolean(//item)", doc) is True
        assert q("boolean(//missing)", doc) is False
        assert q("true()", doc) is True
        assert q("false()", doc) is False

    def test_unknown_function_raises(self, doc):
        with pytest.raises(XPathEvaluationError):
            q("fancy(1)", doc)

    def test_arity_checked(self, doc):
        with pytest.raises(XPathEvaluationError):
            q("count()", doc)

    def test_timestamp_extension(self, doc):
        doc.set("timestamp", "123.5")
        assert q("timestamp()", doc) == 123.5

    def test_timestamp_climbs_ancestors(self, doc):
        doc.set("timestamp", "99.0")
        item = q("//item[@id='i1']", doc)[0]
        assert q("timestamp()", item) == 99.0

    def test_current_time_uses_context(self, doc):
        assert q("current-time()", doc, now=42.0) == 42.0

    def test_current_time_without_clock_raises(self, doc):
        with pytest.raises(XPathEvaluationError):
            q("current-time()", doc)


class TestArithmeticAndComparison:
    def test_arithmetic(self, doc):
        assert q("1 + 2 * 3", doc) == 7.0
        assert q("10 div 4", doc) == 2.5
        assert q("7 mod 3", doc) == 1.0
        assert q("-7 mod 3", doc) == -1.0  # truncating, not floor

    def test_division_by_zero(self, doc):
        assert q("1 div 0", doc) == math.inf
        assert q("-1 div 0", doc) == -math.inf
        assert math.isnan(q("0 div 0", doc))

    def test_node_set_to_number_comparison(self, doc):
        assert q("//price > 19", doc) is True  # existential
        assert q("//price > 100", doc) is False

    def test_node_set_to_node_set_comparison(self, doc):
        # Exists a price equal to a stock value? (5,0,7 vs 10,20,15) -> no.
        assert q("//price = //stock", doc) is False

    def test_string_comparison(self, doc):
        assert q("'a' = 'a'", doc) is True
        assert q("'a' != 'b'", doc) is True

    def test_boolean_comparison_with_node_set(self, doc):
        assert q("//item = true()", doc) is True
        assert q("//missing = false()", doc) is True

    def test_union_type_error(self, doc):
        with pytest.raises(XPathTypeError):
            q("1 | 2", doc)

    def test_variables(self, doc):
        assert q("$x + 1", doc, variables={"x": 2.0}) == 3.0

    def test_unbound_variable(self, doc):
        with pytest.raises(XPathEvaluationError):
            q("$nope", doc)


class TestCompileApi:
    def test_select_requires_node_set(self, doc):
        with pytest.raises(XPathTypeError):
            compile_xpath("count(//item)").select(doc)

    def test_evaluate_xpath_shortcut(self, doc):
        assert evaluate_xpath("count(//dept)", doc) == 2.0

    def test_query_equality_by_ast(self):
        assert compile_xpath("/a/b") == compile_xpath("/a/b")
        assert compile_xpath("/a / b") == compile_xpath("/a/b")

    def test_is_absolute(self):
        assert compile_xpath("/a").is_absolute
        assert not compile_xpath("a").is_absolute

    def test_extension_functions(self, doc):
        query = compile_xpath(
            "double(count(//item))",
            extension_functions={
                "double": lambda ctx, args: 2 * args[0],
            },
        )
        assert query.evaluate(doc) == 6.0

    def test_paper_figure_2_and_3(self, paper_doc):
        """Figure 2's query over Figure 3's fragment returns space 1."""
        query = compile_xpath(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
            "/city[@id='Pittsburgh']"
            "/neighborhood[@id='Oakland' OR @id='Shadyside']"
            "/block[@id='1']/parkingSpace[available='yes']"
        )
        result = query.select(paper_doc)
        oakland = [r for r in result
                   if r.parent.parent.id == "Oakland"]
        assert [r.id for r in oakland] == ["1"]
