"""Unit tests for structural fragment merging."""

import pytest

from repro.xmlkit import (
    XmlMergeError,
    graft,
    merge_into,
    parse_fragment,
    strip_matching,
    trees_equal,
)


class TestMergeInto:
    def test_identity_mismatch_rejected(self):
        with pytest.raises(XmlMergeError):
            merge_into(parse_fragment("<a id='1'/>"),
                       parse_fragment("<a id='2'/>"))

    def test_attributes_unioned_source_wins(self):
        target = parse_fragment("<a id='1' x='old' keep='k'/>")
        source = parse_fragment("<a id='1' x='new' extra='e'/>")
        merge_into(target, source)
        assert target.get("x") == "new"
        assert target.get("keep") == "k"
        assert target.get("extra") == "e"

    def test_prefer_target(self):
        target = parse_fragment("<a id='1' x='old'/>")
        merge_into(target, parse_fragment("<a id='1' x='new'/>"),
                   prefer_source=False)
        assert target.get("x") == "old"

    def test_children_matched_by_tag_and_id(self):
        target = parse_fragment("<a id='1'><b id='1' v='t'/></a>")
        source = parse_fragment(
            "<a id='1'><b id='1' v='s'/><b id='2' v='n'/></a>")
        merge_into(target, source)
        ids = sorted(c.id for c in target.element_children("b"))
        assert ids == ["1", "2"]
        assert target.child("b", id="1").get("v") == "s"

    def test_text_replaced_when_source_has_text(self):
        target = parse_fragment("<a id='1'>old</a>")
        merge_into(target, parse_fragment("<a id='1'>new</a>"))
        assert target.text == "new"

    def test_text_kept_when_source_silent(self):
        target = parse_fragment("<a id='1'>old</a>")
        merge_into(target, parse_fragment("<a id='1'/>"))
        assert target.text == "old"

    def test_deep_merge(self):
        target = parse_fragment("<a id='1'><b id='1'><c id='1'/></b></a>")
        source = parse_fragment("<a id='1'><b id='1'><c id='2'/></b></a>")
        merge_into(target, source)
        b = target.child("b")
        assert {c.id for c in b.element_children("c")} == {"1", "2"}

    def test_on_merge_callback_sees_pairs(self):
        calls = []
        target = parse_fragment("<a id='1'><b id='1'/></a>")
        source = parse_fragment("<a id='1'><b id='1'/></a>")
        merge_into(target, source,
                   on_merge=lambda t, s: calls.append((t.tag, s.tag)))
        assert ("a", "a") in calls
        assert ("b", "b") in calls

    def test_source_not_mutated(self):
        target = parse_fragment("<a id='1'/>")
        source = parse_fragment("<a id='1'><b id='9'/></a>")
        snapshot = source.copy()
        merge_into(target, source)
        assert trees_equal(source, snapshot)
        # Target got a *copy*, not the source's child.
        assert target.child("b") is not source.child("b")


class TestGraft:
    def test_graft_new_child(self):
        parent = parse_fragment("<a id='1'/>")
        grafted = graft(parent, parse_fragment("<b id='2' v='x'/>"))
        assert grafted.parent is parent
        assert parent.child("b", id="2").get("v") == "x"

    def test_graft_merges_matching(self):
        parent = parse_fragment("<a id='1'><b id='2' old='1'/></a>")
        graft(parent, parse_fragment("<b id='2' new='2'/>"))
        b = parent.child("b")
        assert b.get("old") == "1" and b.get("new") == "2"
        assert len(list(parent.element_children("b"))) == 1

    def test_graft_requires_element(self):
        with pytest.raises(XmlMergeError):
            graft(parse_fragment("<a/>"), "not an element")


class TestStripMatching:
    def test_removes_whole_subtrees(self):
        root = parse_fragment("<a><b drop='1'><c/></b><b/></a>")
        removed = strip_matching(root, lambda e: e.get("drop") == "1")
        assert removed == 2  # b and its c
        assert len(list(root.element_children("b"))) == 1

    def test_never_removes_root(self):
        root = parse_fragment("<a drop='1'><b/></a>")
        strip_matching(root, lambda e: e.get("drop") == "1")
        assert root.tag == "a"
