"""Tests for site-database persistence (save/restart an OA from disk)."""

from repro.core import PartitionPlan, SensorDatabase, Status, get_status
from repro.core.invariants import (
    structural_violations,
    violations_against_reference,
)
from repro.xmlkit import trees_equal

from tests.conftest import OAKLAND, id_path


def test_save_load_roundtrip(paper_doc, tmp_path):
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
    })
    original = plan.build_databases(paper_doc)["oak"]
    path = tmp_path / "oak.xml"
    original.save(str(path))

    restored = SensorDatabase.load(str(path), site_id="oak")
    assert trees_equal(restored.root, original.root)
    assert get_status(restored.find(OAKLAND)) is Status.OWNED
    assert structural_violations(restored) == []
    assert violations_against_reference(restored, paper_doc) == []


def test_restarted_database_serves_queries(paper_doc, tmp_path):
    from repro.core import GatherDriver, HierarchySchema

    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
    })
    databases = plan.build_databases(paper_doc)
    path = tmp_path / "oak.xml"
    databases["oak"].save(str(path))
    restored = SensorDatabase.load(str(path), site_id="oak")

    driver = GatherDriver(restored, send=lambda sq: None,
                          schema=HierarchySchema.from_document(paper_doc))
    results, outcome = driver.answer_user_query(
        "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
        "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
        "/block[@id='1']/parkingSpace[available='yes']")
    assert [r.id for r in results] == ["1"]
    assert not outcome.used_remote_data


def test_cached_state_survives_restart(paper_doc, tmp_path):
    from repro.net import Cluster

    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
    })
    cluster = Cluster(paper_doc, plan)
    query = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
             "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
             "/block[@id='2']")
    cluster.query(query, at_site="top")  # caches block 2 at top

    path = tmp_path / "top.xml"
    cluster.database("top").save(str(path))
    restored = SensorDatabase.load(str(path), site_id="top")
    block = restored.find(OAKLAND + (("block", "2"),))
    assert get_status(block) is Status.COMPLETE
