"""Adaptive rebalancing: hot-spot detection, live fragment splits,
ownership migration.

The tentpole robustness loop exercised end to end on the loopback
cluster: skewed query load makes one site hot; the balancer attributes
the load to IDable subtrees, plans a split (lightcurvedb-style
``n_new_fragments`` sizing), and executes a live migration through the
Section-4 take-ownership protocol plus a DNS re-map -- after which
queries from every vantage still answer correctly, the old owner's
semantic/summary caches drop the migrated region, and its replicas of
the moved paths are retired.  With the subsystem disabled the wire is
byte-identical to a rebalancing-free build.
"""

import pytest

from repro.core import PartitionPlan
from repro.core.status import Status, get_status
from repro.net import Cluster, OAConfig
from repro.obs.registry import rebalance_counters
from repro.rebalance import (
    Migration,
    PathLoadTracker,
    RebalanceConfig,
    detect_overloaded,
    n_new_fragments,
    plan_moves,
)
from repro.replication import ReplicationConfig, replica_peers
from repro.xmlkit import parse_fragment

from tests.conftest import OAKLAND, PAPER_DOCUMENT, id_path
from tests.test_failure_injection import (
    OAK_BLOCK,
    PAPER_PLAN,
    answer_set,
    fast_retries,
)

OAK_BLOCK2 = OAK_BLOCK.replace("block[@id='1']", "block[@id='2']")
OAK_BLOCK1_PATH = OAKLAND + (("block", "1"),)


def rebalance_cluster(rebalance=None, replication=None, count_bytes=False,
                      oa_config=None):
    return Cluster(
        parse_fragment(PAPER_DOCUMENT), PartitionPlan(PAPER_PLAN),
        oa_config=oa_config or OAConfig(retry_policy=fast_retries(),
                                        partial_answers=True),
        count_bytes=count_bytes,
        rebalance=rebalance,
        replication=replication,
    )


def skewed_load(cluster, hot=30, warm=10):
    """Hammer Oakland's block 1, with a side of block 2 (so the hot
    site's load is splittable -- a single all-the-load unit cannot be
    improved by moving)."""
    for _ in range(hot):
        cluster.query(OAK_BLOCK)
    for _ in range(warm):
        cluster.query(OAK_BLOCK2)


class TestRebalanceConfig:
    def test_defaults_enabled(self):
        assert RebalanceConfig().enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            RebalanceConfig(overload_ratio=0.5)
        with pytest.raises(ValueError):
            RebalanceConfig(headroom=0.0)
        with pytest.raises(ValueError):
            RebalanceConfig(max_moves_per_tick=0)
        with pytest.raises(ValueError):
            RebalanceConfig(adopt_attempts=0)


class TestPathLoadTracker:
    def test_queries_attributed_to_anchor(self):
        tracker = PathLoadTracker()
        tracker.record_query(OAK_BLOCK)
        tracker.record_query(OAK_BLOCK)
        snapshot = tracker.snapshot()
        assert snapshot[OAK_BLOCK1_PATH] == 2
        assert tracker.total == 2

    def test_scalar_wrapper_unwrapped(self):
        tracker = PathLoadTracker()
        tracker.record_query(f"count({OAK_BLOCK})")
        assert tracker.snapshot()[OAK_BLOCK1_PATH] == 1

    def test_unparseable_counts_unattributed(self):
        tracker = PathLoadTracker()
        tracker.record_query("not an xpath ((((")
        assert tracker.snapshot() == {}
        assert tracker.counters()["unattributed"] == 1
        assert tracker.counters()["queries"] == 1

    def test_memo_bounded(self):
        tracker = PathLoadTracker(memo_limit=4)
        for i in range(10):
            tracker.record_query(
                OAK_BLOCK.replace("block[@id='1']", f"block[@id='{i}']"))
        assert len(tracker._memo) <= 4
        assert tracker.total == 10

    def test_record_path_direct(self):
        tracker = PathLoadTracker()
        tracker.record_path(OAKLAND)
        assert tracker.snapshot()[OAKLAND] == 1


class TestDetection:
    def test_hot_site_detected(self):
        loads = {"a": 90.0, "b": 10.0, "c": 5.0}
        hot = detect_overloaded(loads, ratio=2.0, min_load=16)
        assert [site for site, _ in hot] == ["a"]

    def test_min_load_gates_idle_clusters(self):
        assert detect_overloaded({"a": 10.0, "b": 0.0},
                                 ratio=2.0, min_load=16) == []

    def test_single_site_never_hot(self):
        assert detect_overloaded({"a": 1e6}, ratio=2.0, min_load=1) == []


class TestPlanMoves:
    LOADS = {"hot": 40.0, "idle1": 0.0, "idle2": 0.0}

    def test_hot_unit_moves_to_least_loaded(self):
        units = {OAK_BLOCK1_PATH: 30.0, OAKLAND + (("block", "2"),): 10.0}
        moves = plan_moves("hot", self.LOADS, units)
        assert moves
        assert moves[0].id_path == OAK_BLOCK1_PATH
        assert moves[0].target in ("idle1", "idle2")

    def test_whole_load_unit_stays_put(self):
        # Relocating all the load helps nobody; the planner refuses.
        assert plan_moves("hot", self.LOADS, {OAK_BLOCK1_PATH: 40.0}) == []

    def test_no_overlapping_moves(self):
        child = OAK_BLOCK1_PATH + (("parkingSpace", "1"),)
        units = {OAK_BLOCK1_PATH: 20.0, child: 15.0,
                 OAKLAND + (("block", "2"),): 5.0}
        moves = plan_moves("hot", self.LOADS, units, max_moves=4)
        chosen = [move.id_path for move in moves]
        for i, a in enumerate(chosen):
            for b in chosen[i + 1:]:
                assert a[:len(b)] != b and b[:len(a)] != a

    def test_targets_restricted_to_live_sites(self):
        units = {OAK_BLOCK1_PATH: 30.0, OAKLAND + (("block", "2"),): 10.0}
        moves = plan_moves("hot", self.LOADS, units, targets={"hot", "idle2"})
        assert all(move.target == "idle2" for move in moves)


class TestLiveMigration:
    def _migrated(self, **kwargs):
        cluster = rebalance_cluster(
            rebalance=RebalanceConfig(min_queries=4, overload_ratio=1.5),
            **kwargs)
        baseline = answer_set(cluster.query(OAK_BLOCK, at_site="top")[0])
        skewed_load(cluster)
        moves = cluster.balancer.tick()
        assert [move.source for move in moves] == ["oak"]
        return cluster, moves[0], baseline

    def test_hot_subtree_migrates(self):
        cluster, move, _ = self._migrated()
        assert move.id_path == OAK_BLOCK1_PATH
        assert cluster.owner_map[OAK_BLOCK1_PATH] == move.target
        assert cluster.dns.authoritative_site(OAK_BLOCK1_PATH) == move.target
        # The split: oak keeps its assignment root and block 2.
        assert cluster.owner_map[OAKLAND] == "oak"
        assert cluster.owner_map[OAKLAND + (("block", "2"),)] == "oak"

    def test_ownership_statuses_flip(self):
        cluster, move, _ = self._migrated()
        old = cluster.agents["oak"].database.find(OAK_BLOCK1_PATH)
        new = cluster.agents[move.target].database.find(OAK_BLOCK1_PATH)
        assert get_status(old) is not Status.OWNED
        assert get_status(new) is Status.OWNED

    def test_queries_correct_from_every_vantage(self):
        cluster, move, baseline = self._migrated()
        for site in cluster.agents:
            results, _, outcome = cluster.query(OAK_BLOCK, at_site=site)
            assert outcome.complete
            assert answer_set(results) == baseline

    def test_migration_log_both_sides(self):
        cluster, move, _ = self._migrated()
        [out] = cluster.agents["oak"].migration_log
        assert out["direction"] == "out" and out["peer"] == move.target
        [inbound] = cluster.agents[move.target].migration_log
        assert inbound["direction"] == "in" and inbound["peer"] == "oak"

    def test_explain_annotates_ownership_moved(self):
        cluster, move, _ = self._migrated()
        report = cluster.agents[move.target].explain(OAK_BLOCK)
        assert report.rebalance is not None
        [entry] = report.rebalance
        assert entry["covers_query"]
        assert "[ownership moved]" in report.render()

    def test_balancer_counters(self):
        cluster, _, _ = self._migrated()
        counters = cluster.balancer.counters()
        assert counters["hotspots"] == 1
        assert counters["migrations_executed"] == 1
        assert counters["migrations_failed"] == 0
        assert counters["paths_moved"] >= 1

    def test_cluster_metrics_surface(self):
        cluster, move, _ = self._migrated()
        snapshot = cluster.metrics()
        rebalance = snapshot["rebalance"]
        assert rebalance["migrations_out"] == 1
        assert rebalance["migrations_in"] == 1
        assert rebalance["balancer"]["migrations_executed"] == 1
        assert rebalance["tracked_queries"] > 0

    def test_second_tick_is_stable(self):
        # Counters are diffed per tick: the already-served load must
        # not re-trigger a migration of the now-idle subtree.
        cluster, _, _ = self._migrated()
        assert cluster.balancer.tick() == []


class TestCacheEviction:
    def test_aggregate_cache_dropped_on_old_owner(self):
        cluster = rebalance_cluster(
            rebalance=RebalanceConfig(min_queries=4, overload_ratio=1.5))
        cluster.scalar(f"count({OAK_BLOCK})", at_site="oak")
        oak = cluster.agents["oak"]
        assert oak.driver.aggregates.metrics()["entries"] == 1
        skewed_load(cluster)
        cluster.balancer.tick()
        assert oak.stats["migration_cache_evictions"] == 1
        assert oak.driver.aggregates.metrics()["entries"] == 0

    def test_unrelated_entries_survive(self):
        cluster = rebalance_cluster(
            rebalance=RebalanceConfig(min_queries=4, overload_ratio=1.5))
        shady = ("/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='Shadyside']/block[@id='1']")
        cluster.scalar(f"count({shady})", at_site="oak")
        oak = cluster.agents["oak"]
        skewed_load(cluster)
        cluster.balancer.tick()
        assert oak.driver.aggregates.metrics()["entries"] == 1


class TestReplicaRePlacement:
    def _cluster(self):
        cluster = rebalance_cluster(
            rebalance=RebalanceConfig(min_queries=4, overload_ratio=1.5),
            replication=ReplicationConfig(k=2))
        cluster.agents["oak"].replication.replicate_owned()
        return cluster

    def test_old_owner_replicas_retired(self):
        cluster = self._cluster()
        sites = sorted(cluster.agents)
        skewed_load(cluster)
        [move] = cluster.balancer.tick()
        assert cluster.agents["oak"].replication.counters(
            )["retires_sent"] == len(replica_peers("oak", sites, 2))
        for peer in replica_peers("oak", sites, 2):
            manager = cluster.agents[peer].replication
            assert manager.counters()["retired_entries"] > 0
            fragment, stamps = manager.export_for("oak",
                                                  [OAK_BLOCK1_PATH])
            assert not stamps  # the moved region is gone from the copy

    def test_new_owner_pushes_to_its_ring(self):
        cluster = self._cluster()
        sites = sorted(cluster.agents)
        skewed_load(cluster)
        [move] = cluster.balancer.tick()
        for peer in replica_peers(move.target, sites, 2):
            manager = cluster.agents[peer].replication
            assert manager.holds_replica_of(move.target)

    def test_query_survives_new_owner_death(self):
        # Kill the NEW owner right after the migration: no query is
        # dropped -- the old owner's demoted copy and the ring replicas
        # between them still answer completely and correctly.
        cluster = self._cluster()
        baseline = answer_set(cluster.query(OAK_BLOCK, at_site="shady")[0])
        skewed_load(cluster)
        [move] = cluster.balancer.tick()
        cluster.kill_site(move.target)
        results, _, outcome = cluster.query(OAK_BLOCK, at_site="top")
        assert outcome.complete
        assert answer_set(results) == baseline

    def test_new_owner_ring_serves_migrated_region(self):
        # The failover machinery itself: with the new owner dead, its
        # ring peers vouch for (and serve) the migrated region they
        # were pushed on adoption.
        from repro.core.answer import Subquery

        cluster = self._cluster()
        skewed_load(cluster)
        [move] = cluster.balancer.tick()
        cluster.kill_site(move.target)
        asker = cluster.agents["shady"]
        probe = Subquery(OAK_BLOCK, OAK_BLOCK1_PATH, Subquery.INCOMPLETE)
        [reply] = asker.replication.failover(
            move.target, [probe], attempts=3, causes=["dead"])
        from repro.core.gather import SubqueryFailure

        assert not isinstance(reply, SubqueryFailure)

    def test_old_ring_refuses_retired_region(self):
        # After retirement the OLD owner's ring no longer vouches for
        # the migrated region: a failover against it degrades honestly
        # instead of claiming the frozen copy is live.
        from repro.core.answer import Subquery
        from repro.core.gather import SubqueryFailure

        cluster = self._cluster()
        skewed_load(cluster)
        [move] = cluster.balancer.tick()
        cluster.kill_site("oak")
        asker = cluster.agents["top"]
        probe = Subquery(OAK_BLOCK, OAK_BLOCK1_PATH, Subquery.INCOMPLETE)
        [reply] = asker.replication.failover(
            "oak", [probe], attempts=3, causes=["dead"])
        assert isinstance(reply, SubqueryFailure)


class TestReconcile:
    def test_demotes_owner_dns_disavows(self):
        cluster = rebalance_cluster(rebalance=RebalanceConfig())
        # Simulate the double-loss aftermath: shady adopted Oakland's
        # block 1 (fragment merged, status flipped) but both the adopt
        # reply and the abort release were lost -- the DNS flip never
        # happened, so both sites now claim the path.
        from repro.core.ownership import (
            accept_ownership,
            export_local_information,
        )
        fragment = export_local_information(
            cluster.agents["oak"].database, OAK_BLOCK1_PATH)
        database = cluster.agents["shady"].database
        accept_ownership(database, OAK_BLOCK1_PATH, fragment)
        stray = database.find(OAK_BLOCK1_PATH)
        assert get_status(stray) is Status.OWNED
        demoted = cluster.balancer.reconcile()
        assert demoted >= 1
        assert get_status(stray) is not Status.OWNED
        # The true owner keeps it: DNS still points at oak.
        owned = cluster.agents["oak"].database.find(OAK_BLOCK1_PATH)
        assert get_status(owned) is Status.OWNED

    def test_consistent_cluster_is_a_noop(self):
        cluster = rebalance_cluster(rebalance=RebalanceConfig())
        assert cluster.balancer.reconcile() == 0

    def test_runs_every_reconcile_every_ticks(self):
        cluster = rebalance_cluster(
            rebalance=RebalanceConfig(reconcile_every=3))
        for _ in range(3):
            cluster.balancer.tick()
        assert cluster.balancer.counters()["reconcile_runs"] == 1


class TestWireParity:
    """Disabled rebalancing leaves the wire byte-identical."""

    def _traffic(self, rebalance, ticks=0, skew=False):
        cluster = rebalance_cluster(rebalance=rebalance, count_bytes=True)
        if skew:
            skewed_load(cluster)
        else:
            cluster.query(OAK_BLOCK, at_site="top")
            cluster.scalar(f"count({OAK_BLOCK})", at_site="top")
        for _ in range(ticks):
            cluster.balancer.tick()
        return (cluster.network.traffic.messages,
                cluster.network.traffic.bytes)

    def test_disabled_config_is_byte_identical_to_absent(self):
        absent = self._traffic(None)
        disabled = self._traffic(RebalanceConfig(enabled=False))
        assert disabled == absent

    def test_enabled_without_hotspot_is_byte_identical(self):
        # The balancer itself is wire-silent: detection and planning
        # are local; only an executed migration talks.
        absent = self._traffic(None)
        enabled = self._traffic(RebalanceConfig(min_queries=10 ** 6),
                                ticks=3)
        assert enabled == absent

    def test_migration_does_add_traffic(self):
        # Guard the guard: the parity assertions are vacuous if an
        # actual migration were also traffic-neutral.
        quiet = self._traffic(None, skew=True)
        moved = self._traffic(RebalanceConfig(min_queries=4,
                                              overload_ratio=1.5),
                              ticks=1, skew=True)
        assert moved[1] > quiet[1]


class TestRebalanceCountersHelper:
    def test_counts_without_balancer(self):
        cluster = rebalance_cluster()
        cluster.query(OAK_BLOCK, at_site="top")
        totals = rebalance_counters(cluster.agents)
        assert totals["migrations_out"] == 0
        assert totals["tracked_queries"] > 0
        assert "balancer" not in totals
