"""Unit tests for status tags and the hierarchy schema."""

import pytest

from repro.core import (
    CoreError,
    HierarchySchema,
    Status,
    get_status,
    get_timestamp,
    set_status,
    set_timestamp,
    strip_internal_attributes,
)
from repro.core.status import parse_status
from repro.xmlkit import Element, parse_fragment


class TestStatus:
    def test_ranks_ordered(self):
        assert Status.OWNED.rank > Status.COMPLETE.rank > \
            Status.ID_COMPLETE.rank > Status.INCOMPLETE.rank

    def test_local_information_property(self):
        assert Status.OWNED.has_local_information
        assert Status.COMPLETE.has_local_information
        assert not Status.ID_COMPLETE.has_local_information
        assert not Status.INCOMPLETE.has_local_information

    def test_id_information_property(self):
        assert Status.ID_COMPLETE.has_id_information
        assert not Status.INCOMPLETE.has_id_information

    def test_set_get_roundtrip(self):
        element = Element("a")
        set_status(element, Status.ID_COMPLETE)
        assert element.get("status") == "id-complete"
        assert get_status(element) is Status.ID_COMPLETE

    def test_default_is_incomplete(self):
        assert get_status(Element("a")) is Status.INCOMPLETE

    def test_parse_rejects_junk(self):
        with pytest.raises(CoreError):
            parse_status("half-done")

    def test_timestamps(self):
        element = Element("a")
        assert get_timestamp(element) is None
        set_timestamp(element, 12.5)
        assert get_timestamp(element) == 12.5

    def test_strip_internal(self):
        root = parse_fragment(
            "<a status='owned' timestamp='1'><b status='complete'/></a>")
        strip_internal_attributes(root)
        assert root.get("status") is None
        assert root.child("b").get("status") is None
        # Timestamps are queryable data, not internal bookkeeping.
        assert root.get("timestamp") == "1"


class TestSchema:
    def test_from_document(self, paper_doc):
        schema = HierarchySchema.from_document(paper_doc)
        assert schema.root_tag == "usRegion"
        assert schema.is_idable_tag("parkingSpace")
        assert not schema.is_idable_tag("available-spaces")
        assert schema.children_of("neighborhood") == {"block"}

    def test_descendant_tags(self, paper_schema):
        assert paper_schema.descendant_idable_tags("city") == \
            {"city", "neighborhood", "block", "parkingSpace"}
        assert paper_schema.descendant_idable_tags(
            "city", include_self=False) == \
            {"neighborhood", "block", "parkingSpace"}

    def test_local_info_required_expansion(self, paper_schema):
        """Section 3.5's example: .../block requires {block, parkingSpace}."""
        assert paper_schema.local_info_required({"block"}) == \
            {"block", "parkingSpace"}
        assert paper_schema.local_info_required({"parkingSpace"}) == \
            {"parkingSpace"}

    def test_local_info_required_wildcard(self, paper_schema):
        assert paper_schema.local_info_required({"*"}) == \
            paper_schema.idable_tags

    def test_register_and_retire(self):
        schema = HierarchySchema("root", {"root": {"a"}})
        schema.register_child("a", "b")
        assert schema.is_idable_tag("b")
        schema.retire("b")
        assert not schema.is_idable_tag("b")
        assert "b" not in schema.children_of("a")

    def test_explicit_construction(self):
        schema = HierarchySchema("r", {"r": {"x", "y"}, "x": {"z"}})
        assert schema.descendant_idable_tags("r") == {"r", "x", "y", "z"}

    def test_cycle_safe(self):
        schema = HierarchySchema("r", {"r": {"r"}})  # degenerate recursion
        assert schema.descendant_idable_tags("r") == {"r"}
