"""Unit tests for subquery subsumption in the gather driver."""

import pytest

from repro.core import PartitionPlan, Subquery, compile_pattern
from repro.core.gather import _is_path_prefix, _subsumed_by

from tests.conftest import OAKLAND, PITTSBURGH, SHADYSIDE, id_path

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


@pytest.fixture
def pattern(paper_schema):
    return compile_pattern(
        PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
        "/parkingSpace[available='yes']",
        schema=paper_schema,
    )


def _sq(anchor, consumed=None, gap=False, subtree=False, scalar=False):
    return Subquery("/q", anchor, Subquery.INCOMPLETE, scalar=scalar,
                    consumed=consumed, descendant_gap=gap, subtree=subtree)


class TestPathPrefix:
    def test_prefix_relation(self):
        assert _is_path_prefix(PITTSBURGH, OAKLAND)
        assert _is_path_prefix(OAKLAND, OAKLAND)
        assert not _is_path_prefix(OAKLAND, PITTSBURGH)
        assert not _is_path_prefix(SHADYSIDE, OAKLAND)


class TestSubsumption:
    def test_deeper_aligned_ask_subsumed(self, pattern):
        # Answered: neighborhood-anchored ask consuming 5 items (the
        # neighborhood step); pending: block-anchored ask consuming 6.
        answered = [_sq(OAKLAND, consumed=5)]
        pending = _sq(OAKLAND + (("block", "1"),), consumed=6)
        assert _subsumed_by(pending, answered, pattern)

    def test_same_ask_shape_subsumed(self, pattern):
        answered = [_sq(OAKLAND, consumed=5)]
        pending = _sq(OAKLAND, consumed=5)
        assert _subsumed_by(pending, answered, pattern)

    def test_sibling_not_subsumed(self, pattern):
        answered = [_sq(OAKLAND, consumed=5)]
        pending = _sq(SHADYSIDE, consumed=5)
        assert not _subsumed_by(pending, answered, pattern)

    def test_misaligned_consumption_not_subsumed(self, pattern):
        # The pending ask starts an *earlier* pattern position than the
        # depth difference explains -- it may select different data.
        answered = [_sq(OAKLAND, consumed=5)]
        pending = _sq(OAKLAND + (("block", "1"),), consumed=5)
        assert not _subsumed_by(pending, answered, pattern)

    def test_subtree_fetch_subsumes_everything_below(self, pattern):
        answered = [_sq(OAKLAND, subtree=True)]
        for pending in (
            _sq(OAKLAND + (("block", "1"),), consumed=6),
            _sq(OAKLAND + (("block", "2"),), subtree=True),
            _sq(OAKLAND + (("block", "1"),), consumed=5, gap=True),
        ):
            assert _subsumed_by(pending, answered, pattern)

    def test_narrow_ask_does_not_subsume_subtree_fetch(self, pattern):
        answered = [_sq(OAKLAND, consumed=5)]
        pending = _sq(OAKLAND + (("block", "1"),), subtree=True)
        assert not _subsumed_by(pending, answered, pattern)

    def test_descendant_gap_blocks_subsumption(self, pattern):
        answered = [_sq(OAKLAND, consumed=5, gap=True)]
        pending = _sq(OAKLAND + (("block", "1"),), consumed=6)
        assert not _subsumed_by(pending, answered, pattern)

    def test_scalar_answers_subsume_nothing(self, pattern):
        answered = [_sq(OAKLAND, consumed=5, scalar=True)]
        pending = _sq(OAKLAND + (("block", "1"),), consumed=6)
        assert not _subsumed_by(pending, answered, pattern)

    def test_descendant_pattern_items_block_alignment(self, paper_schema):
        pattern = compile_pattern(
            PREFIX + "/neighborhood[@id='Oakland']//parkingSpace",
            schema=paper_schema)
        # items: ... neighborhood(4), parkingSpace(5, descendant)
        answered = [_sq(OAKLAND, consumed=5)]
        pending = _sq(OAKLAND + (("block", "1"),), consumed=6)
        # The in-between item is a // item: depth alignment proves
        # nothing, so no subsumption.
        assert not _subsumed_by(pending, answered, pattern)


class TestSubsumptionEndToEnd:
    def test_predicate_query_one_round_trip_per_region(self, paper_doc,
                                                       paper_schema):
        """The Section-2-style query makes exactly one subquery per
        missing neighborhood, not one per parking-space stub."""
        from repro.core import GatherDriver

        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
            "shady": [SHADYSIDE],
        })
        dbs = plan.build_databases(paper_doc)
        drivers = {}

        def make_send(_site):
            def send(subquery):
                path = tuple(tuple(e) for e in subquery.anchor_path)
                target = "oak" if path[:5] == OAKLAND else "shady"
                return drivers[target].answer_any(subquery.query)
            return send

        for site, db in dbs.items():
            drivers[site] = GatherDriver(db, make_send(site),
                                         schema=paper_schema)
        query = (PREFIX + "/neighborhood[@id='Oakland' or @id='Shadyside']"
                 "/block[@id='1']/parkingSpace[available='yes']")
        results, outcome = drivers["top"].answer_user_query(query)
        assert len(results) == 3
        assert len(outcome.subqueries_sent) == 2  # one per neighborhood
