"""Integration tests on the coastal-monitoring service (second domain).

Exercises the system on a differently shaped hierarchy (3 levels,
``//`` queries, consistency tolerances), as the paper's Oregon-coast
deployment motivates.
"""

import pytest

from repro.core import PartitionPlan
from repro.net import Cluster
from repro.service import (
    CoastalConfig,
    build_coastal_document,
    high_risk_query,
    region_alert_query,
    station_path,
)


@pytest.fixture
def coastal(settable_clock):
    config = CoastalConfig(regions=3, stations_per_region=4)
    document = build_coastal_document(config)
    plan = PartitionPlan({
        "hq": [(("coastline", "oregon"),)],
        "north": [(("coastline", "oregon"), ("region", "north-coast"))],
        "central": [(("coastline", "oregon"), ("region", "central-coast"))],
        "south": [(("coastline", "oregon"), ("region", "south-coast"))],
    })
    cluster = Cluster(document.copy(), plan, service="coast",
                      clock=settable_clock)
    return document, cluster, settable_clock


class TestCoastalQueries:
    def test_descendant_risk_sweep(self, coastal):
        document, cluster, _clock = coastal
        results, _site, _outcome = cluster.query(high_risk_query())
        expected = {
            (station.parent.id, station.id)
            for station in document.iter("station")
            if station.child("rip-current-risk").text == "high"
        }
        got = {(r.parent.id if r.parent else None, r.id) for r in results}
        # Results are detached copies; compare by station id only.
        assert {s for _r, s in got} == {s for _r, s in expected}

    def test_region_alert_with_tolerance(self, coastal):
        _document, cluster, clock = coastal
        results, _, _ = cluster.query(region_alert_query("north-coast"))
        assert len(results) == 1
        assert results[0].tag == "alert-level"

    def test_station_update_and_requery(self, coastal):
        _document, cluster, _clock = coastal
        path = station_path("north-coast", "st-1")
        sa = cluster.add_sensing_agent("buoy-1", [path])
        sa.send_update(path, values={"rip-current-risk": "high",
                                     "wave-height": "5.10"})
        results, _, _ = cluster.query(high_risk_query())
        assert any(r.id == "st-1" for r in results)

    def test_cross_region_aggregate(self, coastal):
        _document, cluster, _clock = coastal
        count = cluster.scalar("count(/coastline[@id='oregon']//station)")
        assert count == 12.0

    def test_validate(self, coastal):
        _document, cluster, _clock = coastal
        cluster.query(high_risk_query())
        assert cluster.validate() == []

    def test_stale_tolerance_refetches_from_owner(self, coastal):
        _document, cluster, clock = coastal
        query = region_alert_query("south-coast")
        # Warm a cache at hq.
        cluster.query(query, at_site="hq")
        agent = cluster.agent("hq")
        baseline = agent.stats["subqueries_sent"]
        # Within tolerance: served from cache.
        clock.advance(30)
        cluster.query(query, at_site="hq")
        assert agent.stats["subqueries_sent"] == baseline
        # Beyond the 120s tolerance: the owner is consulted again.
        clock.advance(200)
        cluster.query(query, at_site="hq")
        assert agent.stats["subqueries_sent"] > baseline
