"""Fast shape checks of the simulated experiments (mini Figures 7-10).

The full-scale regenerations live in ``benchmarks/``; these integration
tests verify the qualitative claims on scaled-down runs so the suite
stays quick.
"""

import pytest

from repro.arch import (
    all_architectures,
    balanced_hot_neighborhood,
    hierarchical,
)
from repro.net import OAConfig
from repro.service import (
    ParkingConfig,
    QueryWorkload,
    UpdateWorkload,
    build_parking_document,
)
from repro.sim import CostModel, SimulatedCluster


@pytest.fixture(scope="module")
def setup():
    config = ParkingConfig.paper_small()
    document = build_parking_document(config)
    return config, document


def run_arch(config, document, arch, workload, n_clients=10, duration=12,
             update_rate=100, oa_config=None):
    sim = SimulatedCluster(document.copy(), arch, cost_model=CostModel(),
                           oa_config=oa_config)
    updates = UpdateWorkload(config, seed=99)
    return sim.run(workload, n_clients=n_clients, duration=duration,
                   warmup=3, update_workload=updates,
                   update_rate=update_rate)


class TestFigure7Shape:
    def test_architecture_ordering_on_mix(self, setup):
        config, document = setup
        throughputs = {}
        for arch in all_architectures(config):
            metrics = run_arch(config, document, arch,
                               QueryWorkload.qw_mix(config, seed=42))
            throughputs[arch.name] = metrics.throughput
        assert throughputs["centralized"] < throughputs["centralized-query"]
        assert throughputs["centralized-query"] < \
            throughputs["distributed-two-level"]
        # Arch 4 wins the mixed workload by a clear margin (paper: >=60%).
        assert throughputs["hierarchical"] > \
            1.5 * throughputs["distributed-two-level"]

    def test_arch3_beats_arch4_on_type1(self, setup):
        """Paper: hierarchical is ~25% worse than two-level on QW-1
        because it uses fewer machines for block data."""
        config, document = setup
        archs = {a.name: a for a in all_architectures(config)}
        two_level = run_arch(config, document,
                             archs["distributed-two-level"],
                             QueryWorkload.qw(config, 1, seed=7),
                             n_clients=16)
        hier = run_arch(config, document, archs["hierarchical"],
                        QueryWorkload.qw(config, 1, seed=7), n_clients=16)
        assert two_level.throughput > hier.throughput
        assert hier.throughput > 0.5 * two_level.throughput


class TestFigure8Shape:
    def test_balanced_beats_original_under_skew(self, setup):
        # Run cache-less, as in the paper's load-balancing experiment:
        # aggressive caching would re-concentrate the hot neighborhood's
        # data at its (single) LCA site, which is exactly the cache
        # bypass problem Section 5.5 points out.
        config, document = setup
        skewed = dict(skew=0.9, hot_city="Pittsburgh",
                      hot_neighborhood="Oakland", seed=13)
        no_cache = OAConfig(cache_results=False)
        original = run_arch(
            config, document, hierarchical(config),
            QueryWorkload.qw_mix2(config, **skewed), n_clients=16,
            oa_config=no_cache)
        balanced = run_arch(
            config, document,
            balanced_hot_neighborhood(config, "Pittsburgh", "Oakland"),
            QueryWorkload.qw_mix2(config, **skewed), n_clients=16,
            oa_config=no_cache)
        # The paper reports a ~4x gain; require a clear (>2x) win.
        assert balanced.throughput > 2 * original.throughput


class TestFigure10Shape:
    def test_caching_overhead_small(self, setup):
        """Type-1 queries always run at the data's site: caching on/off
        must not change their throughput much ("minimal overhead")."""
        config, document = setup
        workload = QueryWorkload.qw(config, 1, seed=5)
        cached = run_arch(config, document, hierarchical(config), workload,
                          oa_config=OAConfig(cache_results=True))
        uncached = run_arch(config, document, hierarchical(config),
                            QueryWorkload.qw(config, 1, seed=5),
                            oa_config=OAConfig(cache_results=False))
        assert cached.throughput == pytest.approx(uncached.throughput,
                                                  rel=0.25)

    def test_mixed_workload_benefits_from_caching(self, setup):
        config, document = setup
        cached = run_arch(config, document, hierarchical(config),
                          QueryWorkload.qw_mix(config, seed=6),
                          oa_config=OAConfig(cache_results=True))
        uncached = run_arch(config, document, hierarchical(config),
                            QueryWorkload.qw_mix(config, seed=6),
                            oa_config=OAConfig(cache_results=False))
        assert cached.throughput > uncached.throughput


class TestUpdateScaling:
    def test_single_oa_update_rate(self):
        """Section 5.2: one OA sustains ~200 updates/s."""
        model = CostModel()
        assert 1.0 / model.update_cost == pytest.approx(200, rel=0.5)

    def test_update_capacity_scales_with_oas(self, setup):
        """Total update capacity grows linearly with the number of OAs
        the data is spread over (Section 5.2)."""
        config, document = setup
        model = CostModel()
        for n_sites, arch in (
            (1, all_architectures(config)[0]),
            (9, hierarchical(config)),
        ):
            sim = SimulatedCluster(document.copy(), arch, cost_model=model)
            updates = UpdateWorkload(config, seed=3)
            # Offered load far above one site's capacity.
            metrics = sim.run(QueryWorkload.qw(config, 1, seed=1),
                              n_clients=0 or 1, duration=5, warmup=1,
                              update_workload=updates,
                              update_rate=150 * n_sites)
            # The run finishing at all demonstrates the queues drain;
            # detailed capacity checks happen in the benchmarks.
            assert metrics.duration > 0
