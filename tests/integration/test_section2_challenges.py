"""The motivating challenges of Section 2, run end-to-end.

Section 2 argues that naive approaches (answer-only, placeholders,
external metadata) cannot determine whether a distributed answer is
complete.  These tests run the section's own scenarios through the
full system and check the completeness questions are answered
correctly.
"""

import pytest

from repro.net import Cluster
from repro.xmlkit import parse_fragment

from tests.conftest import FIGURE2_QUERY, OAKLAND, SHADYSIDE, id_path

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


class TestFigure2Completeness:
    """Is parking space 1 the entire answer?  The system must know."""

    def test_other_spaces_in_block_1_are_accounted_for(self, paper_cluster):
        # Oakland block 1 has spaces 1 (yes) and 2 (no): the distributed
        # answer contains space 1 only, because space 2 was examined at
        # its owner and rejected -- not because it was missing.
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
            "/parkingSpace[available='yes']")
        assert [r.id for r in results] == ["1"]

    def test_shadyside_absence_vs_all_taken(self, paper_doc):
        """The paper's crux: "no parking spaces were returned from
        Shadyside: was that because they are all taken or the site
        database was missing Shadyside?"  Both cases, distinguished."""
        plan = {
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
            "shady": [SHADYSIDE],
        }
        # Case A: Shadyside data exists and has available spaces ->
        # they are fetched despite being absent from the LCA fragment.
        cluster = Cluster(paper_doc.copy(), plan)
        results, _, _ = cluster.query(FIGURE2_QUERY, at_site="top")
        assert len(results) == 3

        # Case B: all Shadyside spaces become taken -> the same query
        # returns only Oakland's space, and completes without error.
        taken = Cluster(paper_doc.copy(), plan)
        sa = taken.add_sensing_agent("sa", [])
        for space_id in ("1", "2"):
            sa.send_update(SHADYSIDE + (("block", "1"),
                                        ("parkingSpace", space_id)),
                           values={"available": "no"})
        results, _, _ = taken.query(FIGURE2_QUERY, at_site="top")
        assert [r.id for r in results] == ["1"]  # Oakland's only


class TestFreeSpotsAttributeChallenge:
    """Section 2's harder example: a neighborhood-level aggregate
    attribute gates whether the sites below need to be visited at all."""

    @pytest.fixture
    def cluster(self):
        document = parse_fragment("""
        <usRegion id='NE'><state id='PA'><county id='Allegheny'>
          <city id='Pittsburgh'>
            <neighborhood id='Oakland' numberOfFreeSpots='1'>
              <block id='1'>
                <parkingSpace id='1'>
                  <available>yes</available><price>0</price>
                </parkingSpace>
              </block>
            </neighborhood>
            <neighborhood id='Shadyside' numberOfFreeSpots='0'>
              <block id='1'>
                <parkingSpace id='1'>
                  <available>no</available><price>0</price>
                </parkingSpace>
              </block>
            </neighborhood>
          </city>
        </county></state></usRegion>
        """)
        city = id_path("usRegion=NE/state=PA/county=Allegheny"
                       "/city=Pittsburgh")
        return Cluster(document, {
            "top": [id_path("usRegion=NE")],
            "oak": [city + (("neighborhood", "Oakland"),)],
            "shady": [city + (("neighborhood", "Shadyside"),)],
        })

    QUERY = (PREFIX + "/neighborhood[@id='Oakland' or @id='Shadyside']"
             "[@numberOfFreeSpots > 0]"
             "/block[@id='1']/parkingSpace[available='yes'][price='0']")

    def test_correct_answer(self, cluster):
        results, _, _ = cluster.query(self.QUERY, at_site="top")
        assert len(results) == 1
        assert results[0].child("price").text == "0"

    def test_attribute_prunes_remote_visits_when_cached(self, cluster):
        # Warm the city-level cache with both neighborhoods' local
        # information (which includes the aggregate attribute).
        for neighborhood in ("Oakland", "Shadyside"):
            cluster.query(
                PREFIX + f"/neighborhood[@id='{neighborhood}']",
                at_site="top")
        agent = cluster.agent("top")
        sent_before = agent.stats["subqueries_sent"]
        results, _, _ = cluster.query(self.QUERY, at_site="top")
        sent = agent.stats["subqueries_sent"] - sent_before
        assert len(results) == 1
        # Shadyside fails the attribute predicate *locally* at the
        # city's cached copy; only Oakland's subtree is consulted (and
        # only because its result data must be materialized).
        # (The count alone demonstrates the pruning.)
        assert sent <= 1
