"""End-to-end integration tests on the paper-scale parking service."""

import pytest

from repro.arch import hierarchical
from repro.net import Cluster, OAConfig
from repro.service import (
    ParkingConfig,
    QueryWorkload,
    UpdateWorkload,
    all_space_paths,
    build_parking_document,
    type1_query,
    type3_query,
)
from repro.xmlkit import canonical_form
from repro.xpath import compile_xpath


@pytest.fixture(scope="module")
def deployment():
    config = ParkingConfig.paper_small()
    document = build_parking_document(config)
    cluster = Cluster(document.copy(), hierarchical(config).plan)
    return config, document, cluster


def _normalized(element):
    """Canonical form modulo data timestamps (which only the
    distributed system attaches; they are queryable, not content)."""
    clone = element.copy()
    for node in clone.iter():
        node.delete_attribute("timestamp")
    return canonical_form(clone)


def reference_answer(document, query):
    """Ground truth: evaluate directly over the global document."""
    from repro.core.consistency import strip_consistency_predicates
    from repro.xpath import parse
    from repro.xpath.evaluator import Evaluator

    ast = strip_consistency_predicates(parse(query))
    matches = Evaluator().evaluate(ast, document, now=0.0)
    return sorted(_normalized(m) for m in matches)


def cluster_answer(cluster, query, at_site=None):
    results, _site, _outcome = cluster.query(query, at_site=at_site)
    return sorted(_normalized(r) for r in results)


class TestDistributedEqualsCentralized:
    def test_all_workload_types(self, deployment):
        config, document, cluster = deployment
        workload = QueryWorkload.qw_mix(config, seed=11)
        for query, _qtype in workload.take(60):
            assert cluster_answer(cluster, query) == \
                reference_answer(document, query), query

    def test_available_space_selections(self, deployment):
        config, document, cluster = deployment
        workload = QueryWorkload.qw_mix(config, selection="available",
                                        seed=12)
        for query, _qtype in workload.take(30):
            assert cluster_answer(cluster, query) == \
                reference_answer(document, query), query

    def test_descendant_query(self, deployment):
        config, document, cluster = deployment
        query = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
                 "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
                 "//parkingSpace[price='0'][available='yes']")
        assert cluster_answer(cluster, query) == \
            reference_answer(document, query)

    def test_queries_from_every_entry_point(self, deployment):
        config, document, cluster = deployment
        query = type3_query(config, "Pittsburgh", "Oakland", "Shadyside", "7")
        expected = reference_answer(document, query)
        for site in cluster.sites:
            assert cluster_answer(cluster, query, at_site=site) == expected

    def test_nested_depth_query(self, deployment):
        config, document, cluster = deployment
        query = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
                 "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
                 "/block[@id='3']"
                 "/parkingSpace[not(price > ../parkingSpace/price)]")
        assert cluster_answer(cluster, query) == \
            reference_answer(document, query)

    def test_scalar_aggregates_match(self, deployment):
        config, document, cluster = deployment
        query = ("count(/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='Shadyside']"
                 "//parkingSpace[available='yes'])")
        expected = compile_xpath(
            query.replace("count(", "count(", 1)[6:-1]).select(document)
        assert cluster.scalar(query) == float(len(expected))


class TestUpdateFlow:
    def test_update_then_query_round_trip(self, deployment):
        config, _document, cluster = deployment
        space = all_space_paths(config)[123]
        sa = cluster.add_sensing_agent("sa-int", [space])
        sa.send_update(space, values={"available": "yes", "price": "0"})
        block_query = type1_query(config, space[3][1], space[4][1],
                                  space[5][1])
        results, _, _ = cluster.query(block_query)
        space_el = [s for s in results[0].iter("parkingSpace")
                    if s.id == space[6][1]][0]
        assert space_el.child("available").text == "yes"

    def test_many_updates_keep_invariants(self, deployment):
        config, _document, cluster = deployment
        updates = UpdateWorkload(config, seed=42)
        sa = cluster.add_sensing_agent("sa-bulk", [])
        for path, values in updates.take(200):
            sa.send_update(path, values=values)
        from repro.core.invariants import structural_violations

        for site in cluster.sites:
            assert structural_violations(cluster.database(site)) == []


class TestCachingBehaviour:
    def test_cache_warms_and_hits(self):
        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        cluster = Cluster(document, hierarchical(config, n_sites=9).plan)
        query = type3_query(config, "Pittsburgh", "Oakland", "Shadyside",
                            "2")
        site, _ = cluster.route_query(query)
        agent = cluster.agent(site)
        cluster.query(query)
        sent_after_first = agent.stats["subqueries_sent"]
        assert sent_after_first > 0
        cluster.query(query)
        assert agent.stats["subqueries_sent"] == sent_after_first

    def test_partial_match_across_different_queries(self):
        """A type-3 query is partially answered by earlier type-1 data
        cached at the city site (the paper's partial-match story)."""
        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        cluster = Cluster(document, hierarchical(config, n_sites=9).plan)
        t3 = type3_query(config, "Pittsburgh", "Oakland", "Shadyside", "1")
        city_site, _ = cluster.route_query(t3)

        # Warm: a type-1 query for Oakland block 1 forced through the
        # city site caches Oakland's data there.
        t1 = type1_query(config, "Pittsburgh", "Oakland", "1")
        cluster.query(t1, at_site=city_site)
        agent = cluster.agent(city_site)
        before = agent.stats["subqueries_sent"]
        cluster.query(t3)
        fetched = agent.stats["subqueries_sent"] - before
        # Only the Shadyside half is missing.
        assert fetched == 1

    def test_no_cache_mode_stays_pristine(self):
        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        cluster = Cluster(document, hierarchical(config, n_sites=9).plan,
                          oa_config=OAConfig(cache_results=False))
        t3 = type3_query(config, "Pittsburgh", "Oakland", "Shadyside", "1")
        site, _ = cluster.route_query(t3)
        size_before = cluster.database(site).size()
        cluster.query(t3)
        assert cluster.database(site).size() == size_before


class TestLoadBalancingUnderTraffic:
    def test_delegations_keep_answers_correct(self):
        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        cluster = Cluster(document.copy(), hierarchical(config, 9).plan)
        query = type1_query(config, "Pittsburgh", "Oakland", "2")
        baseline = cluster_answer(cluster, query)
        # Migrate Oakland's blocks one by one, querying in between.
        from repro.service.parking import block_path

        for index, block in enumerate(config.block_ids()):
            target = f"site-{index % 9}"
            path = block_path(config, "Pittsburgh", "Oakland", block)
            if cluster.owner_map[tuple(path)] != target:
                cluster.delegate(path, target)
            assert cluster_answer(cluster, query) == baseline
        assert cluster.validate() == []


class TestConcurrentRuntime:
    def test_parallel_clients_get_correct_answers(self):
        from repro.net import make_concurrent_cluster, run_concurrent_clients

        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        cluster = make_concurrent_cluster(document,
                                          hierarchical(config, 9).plan)
        workload = QueryWorkload.qw_mix(config, seed=21)
        result = run_concurrent_clients(cluster, workload, n_clients=4,
                                        queries_per_client=10)
        assert result.completed == 40
        assert result.throughput > 0
        assert cluster.validate() == []
