"""Properties of the id-path index and the serialization memo.

Random interleavings of the database mutators must leave the index
exactly equal to a from-scratch rebuild, and memoized serialization
must stay byte-identical to the uncached serializer at every step.
"""

from hypothesis import given, settings, strategies as st

from repro.core import CacheError, CoreError, SensorDatabase
from repro.core.idable import iter_idable_with_paths
from repro.xmlkit import Element, serialize

_ROOT = (("top", "R"),)
_MID_COUNT = 4
_LEAF_COUNT = 3


def _mid_path(mid):
    return _ROOT + (("mid", f"m{mid}"),)


def _leaf_path(mid, leaf):
    return _mid_path(mid) + (("leaf", f"l{leaf}"),)


def _build_database():
    """Root owns m0's subtree; the other mids start as bare stubs."""
    root = Element("top", attrib={"id": "R", "status": "id-complete"})
    for mid in range(_MID_COUNT):
        if mid == 0:
            node = Element("mid", attrib={
                "id": "m0", "status": "owned", "timestamp": "0.0"})
            node.append(Element("v", text="0"))
            for leaf in range(_LEAF_COUNT):
                child = Element("leaf", attrib={
                    "id": f"l{leaf}", "status": "owned", "timestamp": "0.0"})
                child.append(Element("v", text="0"))
                node.append(child)
        else:
            node = Element("mid", attrib={
                "id": f"m{mid}", "status": "incomplete"})
        root.append(node)
    return SensorDatabase(root, clock=lambda: 1234.0)


def _wire_fragment(mid, timestamp, value):
    """An answer fragment caching *mid*'s local information."""
    root = Element("top", attrib={"id": "R", "status": "id-complete"})
    node = Element("mid", attrib={
        "id": f"m{mid}", "status": "complete",
        "timestamp": f"{timestamp}.0"})
    node.append(Element("v", text=str(value)))
    for leaf in range(_LEAF_COUNT):
        node.append(Element("leaf", attrib={
            "id": f"l{leaf}", "status": "incomplete"}))
    root.append(node)
    return root


_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.integers(0, _MID_COUNT - 1),
                  st.integers(1, 9), st.integers(0, 99)),
        st.tuples(st.just("update"), st.integers(0, _MID_COUNT - 1),
                  st.integers(0, 99)),
        st.tuples(st.just("update-leaf"), st.integers(0, _LEAF_COUNT - 1),
                  st.integers(0, 99)),
        st.tuples(st.just("evict"), st.integers(0, _MID_COUNT - 1),
                  st.booleans()),
        st.tuples(st.just("evict-all")),
        st.tuples(st.just("own"), st.integers(0, _MID_COUNT - 1)),
        st.tuples(st.just("release"), st.integers(0, _MID_COUNT - 1)),
    ),
    min_size=1, max_size=12,
)


def _apply(database, op):
    """Run one operation; domain errors (evicting owned data, owning a
    stub, ...) are legal no-ops for this property."""
    kind = op[0]
    try:
        if kind == "store":
            database.store_fragment(_wire_fragment(op[1], op[2], op[3]))
        elif kind == "update":
            database.apply_update(_mid_path(op[1]),
                                  values={"v": str(op[2])},
                                  require_owned=False)
        elif kind == "update-leaf":
            database.apply_update(_leaf_path(0, op[1]),
                                  values={"v": str(op[2])})
        elif kind == "evict":
            database.evict(_mid_path(op[1]), keep_ids=op[2])
        elif kind == "evict-all":
            database.evict_all_cached()
        elif kind == "own":
            database.mark_owned(_mid_path(op[1]))
        elif kind == "release":
            database.release_ownership(_mid_path(op[1]))
    except (CacheError, CoreError):
        pass


class TestIndexEquivalence:
    @given(_OPERATIONS)
    @settings(max_examples=60, deadline=None)
    def test_index_equals_rebuild_after_every_operation(self, operations):
        database = _build_database()
        database.find(_ROOT)  # force the initial build
        for op in operations:
            _apply(database, op)
            assert database.debug_verify_index() == []
        # And the index agrees with the linear resolver on every path.
        for path, element in iter_idable_with_paths(database.root):
            assert database.find(path) is element

    @given(_OPERATIONS)
    @settings(max_examples=60, deadline=None)
    def test_memoized_serialization_byte_identical(self, operations):
        database = _build_database()
        for op in operations:
            _apply(database, op)
            warm = serialize(database.root)
            assert warm == serialize(database.root, use_cache=False)
        warm_sorted = serialize(database.root, sort_attributes=True)
        assert warm_sorted == serialize(
            database.root, sort_attributes=True, use_cache=False)
