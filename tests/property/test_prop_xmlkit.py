"""Property-based tests for the XML substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlkit import (
    Element,
    canonical_form,
    diff_trees,
    merge_into,
    parse_fragment,
    serialize,
    trees_equal,
)

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'.-_",
    max_size=12,
)


@st.composite
def elements(draw, depth=3):
    tag = draw(_names)
    attrib = draw(st.dictionaries(_names, _values, max_size=3))
    element = Element(tag, attrib=attrib)
    text = draw(st.one_of(st.none(), _values))
    if text is not None and text.strip():
        element.set_text(text.strip())
    if depth > 0:
        for child in draw(st.lists(elements(depth=depth - 1), max_size=3)):
            element.append(child)
    return element


class TestRoundtrip:
    @given(elements())
    @settings(max_examples=120, deadline=None)
    def test_serialize_parse_identity(self, element):
        assert trees_equal(parse_fragment(serialize(element)), element)

    @given(elements())
    @settings(max_examples=60, deadline=None)
    def test_pretty_serialize_parse_identity(self, element):
        assert trees_equal(parse_fragment(serialize(element, pretty=True)),
                           element)

    @given(elements())
    @settings(max_examples=60, deadline=None)
    def test_copy_equal_and_independent(self, element):
        clone = element.copy()
        assert trees_equal(clone, element)
        clone.set("mutation", "x")
        assert not trees_equal(clone, element)


class TestCanonical:
    @given(elements())
    @settings(max_examples=60, deadline=None)
    def test_canonical_insensitive_to_child_order(self, element):
        if len(element.children) < 2:
            return
        shuffled = element.copy()
        shuffled.children.reverse()
        assert canonical_form(shuffled) == canonical_form(element)

    @given(elements())
    @settings(max_examples=60, deadline=None)
    def test_diff_empty_iff_equal(self, element):
        assert diff_trees(element, element.copy()) == []


class TestMerge:
    @given(elements(depth=2))
    @settings(max_examples=60, deadline=None)
    def test_merge_with_self_copy_is_idempotent(self, element):
        target = element.copy()
        merge_into(target, element)
        # Merging a copy of itself must not duplicate identified
        # children; unidentified same-tag children may merge pairwise,
        # so we only require the identified ones to stay unique.
        for child in target.element_children():
            if child.id is not None:
                same = [
                    c for c in target.element_children(child.tag)
                    if c.id == child.id
                ]
                assert len(same) == 1

    @given(elements(depth=2), elements(depth=2))
    @settings(max_examples=60, deadline=None)
    def test_merge_keeps_all_source_attributes(self, left, right):
        if left.tag != right.tag or \
                left.attrib.get("id") != right.attrib.get("id"):
            return
        target = left.copy()
        merge_into(target, right)
        for name, value in right.attrib.items():
            assert target.get(name) == value
