"""Property-based tests for the XPath engine."""

import math
import string

from hypothesis import given, settings, strategies as st

from repro.xmlkit import Element
from repro.xpath import compile_xpath, parse
from repro.xpath.types import compare, to_boolean, to_number, to_string

_tags = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def documents(draw, depth=3):
    element = Element(draw(_tags), attrib={
        "id": str(draw(st.integers(0, 9))),
        "v": str(draw(st.integers(0, 5))),
    })
    if depth > 0:
        for child in draw(st.lists(documents(depth=depth - 1), max_size=3)):
            element.append(child)
    return element


class TestAxisAlgebra:
    @given(documents())
    @settings(max_examples=80, deadline=None)
    def test_descendants_equals_nested_children(self, doc):
        via_descendant = compile_xpath("count(//b)").evaluate(doc)
        manual = float(sum(1 for _ in doc.iter("b")))
        assert via_descendant == manual

    @given(documents())
    @settings(max_examples=80, deadline=None)
    def test_parent_of_child_is_self(self, doc):
        children = compile_xpath("*").select(doc)
        for child in children:
            parents = compile_xpath("..").select(child)
            assert parents == [doc]

    @given(documents())
    @settings(max_examples=80, deadline=None)
    def test_union_is_deduplicated_superset(self, doc):
        left = compile_xpath("//a").select(doc)
        right = compile_xpath("//b").select(doc)
        union = compile_xpath("//a | //b").select(doc)
        assert len(union) == len(left) + len(right)
        assert {id(n) for n in union} == \
            {id(n) for n in left} | {id(n) for n in right}

    @given(documents())
    @settings(max_examples=80, deadline=None)
    def test_predicate_filters_subset(self, doc):
        everything = compile_xpath("//*").select(doc)
        filtered = compile_xpath("//*[@v='3']").select(doc)
        identifiers = {id(n) for n in everything}
        assert all(id(n) in identifiers for n in filtered)
        assert all(n.get("v") == "3" for n in filtered)

    @given(documents())
    @settings(max_examples=50, deadline=None)
    def test_count_matches_select_length(self, doc):
        count = compile_xpath("count(//*[@v='1'])").evaluate(doc)
        selected = compile_xpath("//*[@v='1']").select(doc)
        assert count == float(len(selected))


class TestUnparseRoundtrip:
    _queries = st.sampled_from([
        "/a/b", "//b[@v='1']", "/a[@id='1' or @id='2']/b",
        "count(//a) + 1", "/a[not(@v='0')]", "//*[@id]",
        "/a[b][c]", "sum(//a/@v) > 3", "/a/b | /a/c",
        "/a[count(b) = 2 and @v='1']",
    ])

    @given(_queries, documents())
    @settings(max_examples=100, deadline=None)
    def test_unparse_preserves_semantics(self, query, doc):
        original = compile_xpath(query)
        roundtripped = compile_xpath(original.unparse())
        left = original.evaluate(doc)
        right = roundtripped.evaluate(doc)
        if isinstance(left, list):
            assert [id(n) for n in left] == [id(n) for n in right]
        elif isinstance(left, float) and math.isnan(left):
            assert math.isnan(right)
        else:
            assert left == right

    @given(_queries)
    @settings(max_examples=50, deadline=None)
    def test_unparse_fixpoint(self, query):
        once = parse(query).unparse()
        assert parse(once).unparse() == once


class TestTypeConversions:
    scalars = st.one_of(
        st.booleans(),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(alphabet=string.printable, max_size=10),
    )

    @given(scalars)
    @settings(max_examples=100, deadline=None)
    def test_boolean_of_string_is_nonempty(self, value):
        if isinstance(value, str):
            assert to_boolean(value) == (len(value) > 0)

    @given(scalars)
    @settings(max_examples=100, deadline=None)
    def test_to_string_to_number_consistent_for_numbers(self, value):
        if isinstance(value, float):
            assert to_number(to_string(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=16),
           st.floats(allow_nan=False, allow_infinity=False, width=16))
    @settings(max_examples=100, deadline=None)
    def test_comparison_trichotomy(self, left, right):
        equal = compare("=", left, right)
        less = compare("<", left, right)
        greater = compare(">", left, right)
        assert sum([equal, less, greater]) == 1

    @given(st.floats(allow_nan=False, allow_infinity=False, width=16),
           st.floats(allow_nan=False, allow_infinity=False, width=16))
    @settings(max_examples=100, deadline=None)
    def test_comparison_antisymmetry(self, left, right):
        assert compare("<", left, right) == compare(">", right, left)
        assert compare("<=", left, right) == compare(">=", right, left)
