"""Executor-independence of gathered answers.

The gather driver dispatches each round's subqueries through a
pluggable executor, but merges the replies in subquery emission order
-- so the answer must be byte-identical whether the round runs
serially, with replies completing in an adversarially shuffled order,
or on real threads.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import PartitionPlan, SerialExecutor, ThreadedExecutor
from repro.net import Cluster, OAConfig
from repro.xmlkit import Element, canonical_form

_SITES = ["s0", "s1", "s2", "s3"]


class ShuffledExecutor:
    """Runs the round's subqueries one by one in a shuffled order.

    Models the worst-case reply arrival order deterministically: the
    results list is still positional, but side effects (cache merges at
    remote sites) happen in scrambled order.
    """

    def __init__(self, seed):
        self._random = random.Random(seed)

    def map(self, fn, items):
        items = list(items)
        order = list(range(len(items)))
        self._random.shuffle(order)
        results = [None] * len(items)
        for index in order:
            results[index] = fn(items[index])
        return results


@st.composite
def hierarchical_documents(draw):
    root = Element("top", attrib={"id": "R"})
    for mid_index in range(draw(st.integers(1, 3))):
        mid = Element("mid", attrib={"id": f"m{mid_index}"})
        root.append(mid)
        mid.append(Element("meta", text=str(draw(st.integers(0, 3)))))
        for leaf_index in range(draw(st.integers(0, 4))):
            leaf = Element("leaf", attrib={"id": f"l{leaf_index}"})
            leaf.append(Element("value", text=str(draw(st.integers(0, 4)))))
            mid.append(leaf)
    return root


@st.composite
def partitions(draw, document):
    assignments = {site: [] for site in _SITES}
    assignments[draw(st.sampled_from(_SITES))].append((("top", "R"),))
    for mid in document.element_children("mid"):
        if draw(st.booleans()):
            mid_path = (("top", "R"), ("mid", mid.id))
            assignments[draw(st.sampled_from(_SITES))].append(mid_path)
            for leaf in mid.element_children("leaf"):
                if draw(st.booleans()):
                    assignments[draw(st.sampled_from(_SITES))].append(
                        mid_path + (("leaf", leaf.id),))
    return PartitionPlan(assignments)


@st.composite
def queries(draw, document):
    mids = [m.id for m in document.element_children("mid")] or ["m0"]
    mid = draw(st.sampled_from(mids))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return f"/top[@id='R']/mid[@id='{mid}']/leaf"
    if kind == 1:
        value = draw(st.integers(0, 4))
        return f"/top[@id='R']//leaf[value='{value}']"
    if kind == 2:
        return f"/top[@id='R']/mid"
    return f"/top[@id='R']/mid[@id='{mid}']/meta"


@st.composite
def scenarios(draw):
    document = draw(hierarchical_documents())
    plan = draw(partitions(document))
    query_list = draw(st.lists(queries(document), min_size=1, max_size=3))
    seed = draw(st.integers(0, 2**16))
    return document, plan, query_list, seed


def _normalized(element):
    clone = element.copy()
    for node in clone.iter():
        node.delete_attribute("timestamp")
    return canonical_form(clone)


def _answers(document, plan, query_list, executor):
    cluster = Cluster(document.copy(), plan, service="prop",
                      oa_config=OAConfig(executor=executor))
    answers = []
    for query in query_list:
        results, _site, _outcome = cluster.query(query)
        answers.append(sorted(_normalized(r) for r in results))
    return answers


class TestExecutorIndependence:
    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_answer_identical_under_every_executor(self, scenario):
        document, plan, query_list, seed = scenario
        serial = _answers(document, plan, query_list, SerialExecutor())
        shuffled = _answers(document, plan, query_list,
                            ShuffledExecutor(seed))
        threaded = _answers(document, plan, query_list,
                            ThreadedExecutor(max_workers=4))
        assert shuffled == serial
        assert threaded == serial
