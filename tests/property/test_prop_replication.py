"""Property: replication never violates a query's freshness bound.

The safety contract of read failover is that a replica copy is served
*only* when its stamp age satisfies the freshness bound the wire query
demands -- for any ring, any replication factor, any mix of reachable,
unreachable and arbitrarily stale replicas.  These properties drive the
bound extraction, the conservative region-age reading, the version
arbitration of reordered batches, and the failover decision itself
with randomized inputs.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.replication import ReplicationConfig, ReplicationManager, \
    freshness_bound, replica_peers
from repro.replication.manager import _ReplicaStore, region_age
from repro.core.gather import ReplicaServed, SubqueryFailure
from repro.core.answer import Subquery
from repro.net.messages import RehydrateAnswer
from repro.xmlkit import Element

NOW = 1_000_000.0
ANCHOR = (("usRegion", "NE"), ("state", "PA"))
SITES = ("asker", "etna", "oak", "shady", "top")

site_names = st.sampled_from(SITES)
ages = st.floats(min_value=0.0, max_value=500.0,
                 allow_nan=False, allow_infinity=False)
tolerances = st.integers(min_value=1, max_value=400)


# -- stubs ---------------------------------------------------------------

class _StubConfig:
    def __init__(self, k):
        self.replication = ReplicationConfig(k=k)


class _StubNetwork:
    """Answers rehydration probes from a canned per-peer table."""

    def __init__(self, answers):
        self.answers = answers

    def request(self, _src, dst, _message):
        answer = self.answers.get(dst)
        if answer is None:
            raise OSError(f"peer {dst!r} unreachable")
        return answer


class _StubAgent:
    def __init__(self, k, answers, site_id="asker"):
        self.site_id = site_id
        self.config = _StubConfig(k)
        self.clock = lambda: NOW
        self.health = None
        self.network = _StubNetwork(answers)
        self.database = None


def _answer(owner, age):
    """A peer's rehydration reply holding one region aged *age*."""
    return RehydrateAnswer(1, owner, fragment=Element("usRegion"),
                          stamps={ANCHOR: (NOW - age, 1)})


def _stamp_age(age):
    """The age failover recomputes from the wire stamp (float round
    trip through ``NOW - age``)."""
    return max(0.0, NOW - (NOW - age))


# -- bound extraction ----------------------------------------------------

class TestFreshnessBoundProperties:

    @given(st.lists(tolerances, min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_bound_is_min_over_all_consistency_predicates(self, bounds):
        query = "/usRegion[@id='NE']" + "".join(
            f"[timestamp() > current-time() - {t}]" for t in bounds)
        assert freshness_bound(query) == float(min(bounds))

    @given(st.lists(tolerances, min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_bound_spans_steps(self, bounds):
        steps = ["/usRegion[@id='NE']", "/state[@id='PA']",
                 "/county[@id='Allegheny']"]
        query = "".join(
            step + f"[timestamp() > current-time() - {t}]"
            for step, t in zip(steps, bounds))
        assert freshness_bound(query) == float(min(bounds))

    @given(st.sampled_from([
        "/usRegion[@id='NE']/state[@id='PA']",
        "/usRegion[@id='NE'][price > 3]",
        "count(/usRegion[@id='NE']//parkingSpace)",
    ]))
    @settings(max_examples=10, deadline=None)
    def test_no_consistency_predicate_means_unbounded(self, query):
        assert freshness_bound(query) is None


# -- region age ----------------------------------------------------------

class TestRegionAgeProperties:

    @given(st.lists(ages, min_size=1, max_size=6), st.lists(ages, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_age_is_oldest_member_under_anchor(self, inside, outside):
        stamps = {}
        for index, age in enumerate(inside):
            path = ANCHOR + (("county", f"c{index}"),)
            stamps[path] = (NOW - age, 1, NOW)
        for index, age in enumerate(outside):
            path = (("usRegion", "NE"), ("state", f"other{index}"))
            stamps[path] = (NOW - age, 1, NOW)
        computed = region_age(stamps, ANCHOR, NOW)
        expected = max(_stamp_age(age) for age in inside)
        assert computed is not None
        assert math.isclose(computed, expected, abs_tol=1e-6)

    @given(st.lists(ages, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_no_related_stamps_means_no_copy(self, outside):
        stamps = {
            (("usRegion", "NE"), ("state", f"other{index}")):
                (NOW - age, 1, NOW)
            for index, age in enumerate(outside)
        }
        assert region_age(stamps, ANCHOR + (("county", "x"),), NOW) is None


# -- version arbitration -------------------------------------------------

class TestVersionArbitrationProperties:

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=50), ages),
        min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_merge_keeps_newest_version_in_any_order(self, batches):
        """Reordered replication batches converge on the max version."""
        store = _ReplicaStore("oak", clock=lambda: NOW)
        for version, age in batches:
            store.merge(None, {ANCHOR: (NOW - age, version)}, NOW)
        newest = max(version for version, _age in batches)
        assert store.stamps[ANCHOR][1] == newest


# -- the failover safety property ----------------------------------------

class TestFailoverFreshnessSafety:

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_failover_never_serves_beyond_the_bound(self, data):
        k = data.draw(st.integers(min_value=1, max_value=4), label="k")
        target = data.draw(site_names, label="target")
        topology = tuple(sorted(SITES))
        peers = replica_peers(target, topology, k)
        peer_ages = {
            peer: data.draw(st.one_of(st.none(), ages), label=f"age[{peer}]")
            for peer in peers
        }
        tolerance = data.draw(st.one_of(st.none(), tolerances),
                              label="tolerance")

        answers = {
            peer: _answer(target, age)
            for peer, age in peer_ages.items()
            if age is not None and peer != "asker"
        }
        agent = _StubAgent(k, answers)
        manager = ReplicationManager(agent)
        manager.set_topology(topology)

        query = "/usRegion[@id='NE']/state[@id='PA']"
        if tolerance is not None:
            query += f"[timestamp() > current-time() - {tolerance}]"
        subquery = Subquery(query, ANCHOR, Subquery.INCOMPLETE)

        replies = manager.failover(target, [subquery], attempts=3,
                                   causes=["dead"])
        assert replies is not None and len(replies) == 1
        reply = replies[0]

        bound = float(tolerance) if tolerance is not None else None
        # Which peers actually offer a copy (the asker holds none).
        offered = [(peer, _stamp_age(age))
                   for peer, age in peer_ages.items()
                   if age is not None and peer != "asker"]
        fresh = [(peer, age) for peer, age in offered
                 if bound is None or age <= bound]

        if isinstance(reply, ReplicaServed):
            # THE property: a served copy always satisfies the bound.
            assert bound is None or reply.age <= bound
            assert reply.owner == target
            # Ring order: the first fresh peer wins.
            assert (reply.replica, reply.age) == fresh[0]
        else:
            assert isinstance(reply, SubqueryFailure)
            # Nothing fresh existed -- failover refused to lie.
            assert not fresh
            saw_stale = any(bound is not None and age > bound
                            for _peer, age in offered)
            assert reply.replica_too_stale == saw_stale
            if saw_stale:
                assert any("too stale" in cause for cause in reply.causes)

    @given(st.integers(min_value=1, max_value=4), ages)
    @settings(max_examples=30, deadline=None)
    def test_scalar_probes_are_never_replica_served(self, k, age):
        target = "oak"
        topology = tuple(sorted(SITES))
        answers = {peer: _answer(target, age)
                   for peer in replica_peers(target, topology, k)}
        agent = _StubAgent(k, answers)
        manager = ReplicationManager(agent)
        manager.set_topology(topology)

        probe = Subquery("boolean(/usRegion[@id='NE'])", ANCHOR,
                         Subquery.NESTED_PROBE, scalar=True)
        replies = manager.failover(target, [probe], attempts=3,
                                   causes=["dead"])
        assert len(replies) == 1
        assert isinstance(replies[0], SubqueryFailure)
        assert any("scalar" in cause for cause in replies[0].causes)
