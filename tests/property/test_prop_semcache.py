"""Property-based tests for the semantic cache.

The canonicalizer's whole contract is "semantics-preserving": for any
query, the canonical form must evaluate identically over any document.
Hypothesis drives that directly, plus the bucket-serving invariant --
a freshness-bucketed cache entry is never served past the caller's
original (tighter) bound.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.semcache import (
    FreshnessBuckets,
    SemanticCache,
    canonical_key,
)
from repro.xmlkit import Element
from repro.xpath import compile_xpath

_tags = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def documents(draw, depth=3):
    element = Element(draw(_tags), attrib={
        "id": str(draw(st.integers(0, 9))),
        "v": str(draw(st.integers(0, 5))),
    })
    if depth > 0:
        for child in draw(st.lists(documents(depth=depth - 1), max_size=3)):
            element.append(child)
    return element


_predicates = st.sampled_from([
    "@v='1'", "@id='2'", "b", "not(@v='0')", "@v < 2", "'1' = @v",
    "@id='1' or @v='2'", "count(b) = 1", "2 >= @v",
])


@st.composite
def queries(draw):
    base = draw(st.sampled_from(["/a", "//a", "//b", "/a/b", "//*",
                                 "/a/b | /a/c", "//b | //a"]))
    predicates = draw(st.lists(_predicates, max_size=3))
    query = base + "".join(f"[{p}]" for p in predicates)
    wrapper = draw(st.sampled_from([None, "count", "boolean"]))
    if wrapper is not None:
        query = f"{wrapper}({query})"
    return query


def _evaluate(query, doc):
    return compile_xpath(query).evaluate(doc)


class TestCanonicalizationPreservesSemantics:
    @given(queries(), documents())
    @settings(max_examples=80, deadline=None)
    def test_canonical_form_evaluates_identically(self, query, doc):
        original = _evaluate(query, doc)
        canonical = _evaluate(canonical_key(query), doc)
        if isinstance(original, list):
            # Union canonicalization may reorder branches; the node-set
            # itself must be identical.
            assert {id(n) for n in original} == {id(n) for n in canonical}
        elif isinstance(original, float) and math.isnan(original):
            assert math.isnan(canonical)
        else:
            assert original == canonical

    @given(queries())
    @settings(max_examples=100, deadline=None)
    def test_canonicalization_is_idempotent(self, query):
        once = canonical_key(query)
        assert canonical_key(once) == once

    @given(st.sampled_from(["/a/b", "//b", "/a"]),
           st.permutations(["@v='1'", "@id='2'", "not(@v='0')"]))
    @settings(max_examples=50, deadline=None)
    def test_predicate_order_never_changes_key(self, base, ordering):
        reference = canonical_key(
            base + "".join(f"[{p}]" for p in sorted(ordering)))
        permuted = canonical_key(
            base + "".join(f"[{p}]" for p in ordering))
        assert permuted == reference

    @given(st.integers(1, 900))
    @settings(max_examples=50, deadline=None)
    def test_consistency_sugar_always_shares_key(self, tolerance):
        sugar = f"/a/b[timestamp > now - {tolerance}]"
        explicit = f"/a/b[timestamp() > current-time() - {tolerance}]"
        assert canonical_key(sugar) == canonical_key(explicit)


class TestBucketInvariants:
    @given(st.floats(min_value=0.01, max_value=5000,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_ceiling_never_tightens_and_is_idempotent(self, tolerance):
        buckets = FreshnessBuckets()
        bucketed = buckets.ceiling(tolerance)
        assert bucketed >= tolerance
        assert buckets.ceiling(bucketed) == bucketed

    @given(st.floats(min_value=0.5, max_value=899,
                     allow_nan=False, allow_infinity=False),
           st.floats(min_value=0.0, max_value=1000,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_bucket_shared_entry_never_served_past_original_bound(
            self, tolerance, age):
        """The subsumption invariant, end to end at the cache layer.

        An entry produced under the *bucketed* (looser) tolerance is
        served to a caller with the *original* bound only while it
        still satisfies that original bound.
        """
        buckets = FreshnessBuckets()
        bucketed = buckets.ceiling(tolerance)
        cache = SemanticCache()
        cache.store("region", 1, now=0.0, tolerance=bucketed)
        entry = cache.lookup("region", now=age, max_age=tolerance,
                             tolerance=tolerance)
        if entry is not None:
            assert age <= tolerance
        elif age + (bucketed - tolerance) <= tolerance:
            raise AssertionError(
                "entry satisfying the original bound was rejected")
