"""Property: split planning is safe for any load shape.

The planner's math is pure, so hypothesis can push on the invariants
directly: the lightcurvedb-style overflow sizing returns at least one
new fragment exactly when the load overflows capacity; a plan never
exceeds its move budget, never picks overlapping units (a unit and its
own subtree cannot both migrate), never targets the hot site itself,
and every move strictly improves on the source's running load -- so a
tick can shuffle ownership around but never make the hot spot hotter.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.rebalance import detect_overloaded, n_new_fragments, plan_moves

loads = st.floats(min_value=0.0, max_value=10_000.0,
                  allow_nan=False, allow_infinity=False)
capacities = st.floats(min_value=0.5, max_value=5_000.0,
                       allow_nan=False, allow_infinity=False)

SITES = ("s0", "s1", "s2", "s3", "s4")

#: IDable units under one deployment: parents and children mixed in,
#: so overlap handling is always exercised.
UNITS = (
    (("zone", "z0"),),
    (("zone", "z0"), ("group", "g0")),
    (("zone", "z0"), ("group", "g1")),
    (("zone", "z1"),),
    (("zone", "z1"), ("group", "g0")),
    (("zone", "z2"),),
)


class TestFragmentSizing:
    """The SNIPPETS §3 shape: >=1 new fragment iff overflowing."""

    @given(current=loads, incoming=loads, capacity=capacities)
    def test_at_least_one_iff_overflowing(self, current, incoming,
                                          capacity):
        n = n_new_fragments(current, capacity, incoming_load=incoming)
        if current + incoming > capacity:
            assert n >= 1
        else:
            assert n == 0

    @given(current=loads, incoming=loads, capacity=capacities,
           fragment=capacities)
    def test_count_covers_the_overflow(self, current, incoming,
                                       capacity, fragment):
        n = n_new_fragments(current, capacity, incoming_load=incoming,
                            fragment_load=fragment)
        overflow = (current + incoming) - capacity
        if overflow > 0:
            assert n == math.ceil(overflow / fragment)
            assert n * fragment >= overflow

    def test_rejects_degenerate_capacity(self):
        import pytest

        with pytest.raises(ValueError):
            n_new_fragments(10.0, 0.0)
        with pytest.raises(ValueError):
            n_new_fragments(10.0, 5.0, fragment_load=0.0)


class TestDetection:
    @given(site_loads=st.dictionaries(st.sampled_from(SITES), loads,
                                      min_size=2))
    def test_hot_sites_exceed_ratio_times_mean(self, site_loads):
        mean = sum(site_loads.values()) / len(site_loads)
        hot = detect_overloaded(site_loads, ratio=2.0, min_load=16)
        for site, load in hot:
            assert load >= 16
            assert load > 2.0 * mean
        # Hottest first.
        assert [load for _, load in hot] == \
            sorted((load for _, load in hot), reverse=True)

    @given(load=loads)
    def test_single_site_never_hot(self, load):
        assert detect_overloaded({"only": load},
                                 ratio=2.0, min_load=0) == []


@st.composite
def planning_inputs(draw):
    site_loads = {site: draw(loads) for site in SITES}
    unit_loads = {
        unit: draw(loads)
        for unit in draw(st.sets(st.sampled_from(UNITS), min_size=1))
    }
    source = draw(st.sampled_from(SITES))
    # The source's load should dominate its units (they are a
    # breakdown of it); lift it when the draw undercuts the sum.
    site_loads[source] = max(site_loads[source],
                             sum(unit_loads.values()))
    max_moves = draw(st.integers(min_value=1, max_value=4))
    return source, site_loads, unit_loads, max_moves


class TestPlanInvariants:
    @settings(max_examples=200)
    @given(inputs=planning_inputs())
    def test_plan_is_safe(self, inputs):
        source, site_loads, unit_loads, max_moves = inputs
        moves = plan_moves(source, site_loads, unit_loads,
                           max_moves=max_moves)
        assert len(moves) <= max_moves
        chosen = [move.id_path for move in moves]
        # No overlapping units: a unit and its own subtree cannot both
        # migrate (the deeper one would be torn from the shallower).
        for i, a in enumerate(chosen):
            for b in chosen[i + 1:]:
                assert a[:len(b)] != b and b[:len(a)] != a
        running = dict(site_loads)
        for move in moves:
            assert move.source == source
            assert move.target != source
            assert move.id_path in unit_loads
            # Strict improvement at execution order: the target ends
            # up below where the source stood.
            assert running[move.target] + move.load < running[source]
            running[move.target] += move.load
            running[source] -= move.load

    @settings(max_examples=200)
    @given(inputs=planning_inputs())
    def test_targets_honour_live_set(self, inputs):
        source, site_loads, unit_loads, max_moves = inputs
        live = {source, "s1"}
        moves = plan_moves(source, site_loads, unit_loads,
                           max_moves=max_moves, targets=live)
        assert all(move.target == "s1" for move in moves)

    @given(inputs=planning_inputs())
    def test_plan_is_deterministic(self, inputs):
        source, site_loads, unit_loads, max_moves = inputs
        first = plan_moves(source, site_loads, unit_loads,
                           max_moves=max_moves)
        second = plan_moves(source, site_loads, unit_loads,
                            max_moves=max_moves)
        assert first == second
