"""Properties of operations: updates and migrations under randomness.

A shadow copy of the global document receives the same logical updates
the cluster receives through its sensing agents; distributed answers
must always match a centralized evaluation over the shadow.  Random
ownership migrations must never change answers or break invariants.
"""

from hypothesis import given, settings, strategies as st

from repro.core import PartitionPlan
from repro.core.invariants import structural_violations
from repro.net import Cluster
from repro.xmlkit import Element, canonical_form
from repro.xpath.evaluator import Evaluator
from repro.xpath.parser import parse

_SITES = ["s0", "s1", "s2"]


def _build_document(mid_count, leaves_per_mid):
    root = Element("top", attrib={"id": "R"})
    for mid_index in range(mid_count):
        mid = Element("mid", attrib={"id": f"m{mid_index}"})
        root.append(mid)
        for leaf_index in range(leaves_per_mid):
            leaf = Element("leaf", attrib={"id": f"l{leaf_index}"})
            leaf.append(Element("value", text="0"))
            mid.append(leaf)
    return root


def _normalized(element):
    clone = element.copy()
    for node in clone.iter():
        node.delete_attribute("timestamp")
    return canonical_form(clone)


def _reference(document, query):
    matches = Evaluator().evaluate(parse(query), document, now=0.0)
    return sorted(_normalized(m) for m in matches)


@st.composite
def update_scenarios(draw):
    mid_count = draw(st.integers(1, 3))
    leaves = draw(st.integers(1, 3))
    owners = {
        f"m{i}": draw(st.sampled_from(_SITES)) for i in range(mid_count)
    }
    updates = draw(st.lists(
        st.tuples(st.integers(0, mid_count - 1),
                  st.integers(0, leaves - 1),
                  st.integers(0, 9)),
        min_size=1, max_size=8,
    ))
    return mid_count, leaves, owners, updates


def _deploy(mid_count, leaves, owners):
    document = _build_document(mid_count, leaves)
    assignments = {site: [] for site in _SITES}
    assignments["s0"].append((("top", "R"),))
    for mid_id, site in owners.items():
        assignments[site].append((("top", "R"), ("mid", mid_id)))
    cluster = Cluster(document.copy(), PartitionPlan(assignments),
                      service="ops")
    return document, cluster


class TestUpdateTransparency:
    @given(update_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_updates_visible_and_consistent(self, scenario):
        mid_count, leaves, owners, updates = scenario
        shadow, cluster = _deploy(mid_count, leaves, owners)
        sa = cluster.add_sensing_agent("sa", [])

        for mid_index, leaf_index, value in updates:
            path = (("top", "R"), ("mid", f"m{mid_index}"),
                    ("leaf", f"l{leaf_index}"))
            sa.send_update(path, values={"value": str(value)})
            # Mirror on the shadow document.
            leaf = shadow.child("mid", id=f"m{mid_index}") \
                .child("leaf", id=f"l{leaf_index}")
            leaf.child("value").set_text(str(value))

        for mid_index, leaf_index, value in updates[-3:]:
            query = (f"/top[@id='R']/mid[@id='m{mid_index}']"
                     f"/leaf[@id='l{leaf_index}']")
            results, _site, _o = cluster.query(query)
            got = sorted(_normalized(r) for r in results)
            assert got == _reference(shadow, query)

        aggregate = "/top[@id='R']//leaf[value > 4]"
        results, _site, _o = cluster.query(aggregate)
        assert sorted(_normalized(r) for r in results) == \
            _reference(shadow, aggregate)

    @given(update_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_updates_preserve_invariants(self, scenario):
        mid_count, leaves, owners, updates = scenario
        _shadow, cluster = _deploy(mid_count, leaves, owners)
        sa = cluster.add_sensing_agent("sa", [])
        for mid_index, leaf_index, value in updates:
            path = (("top", "R"), ("mid", f"m{mid_index}"),
                    ("leaf", f"l{leaf_index}"))
            sa.send_update(path, values={"value": str(value)})
        for site in cluster.sites:
            assert structural_violations(cluster.database(site)) == []


@st.composite
def migration_scenarios(draw):
    mid_count = draw(st.integers(1, 3))
    leaves = draw(st.integers(0, 2))
    owners = {
        f"m{i}": draw(st.sampled_from(_SITES)) for i in range(mid_count)
    }
    moves = draw(st.lists(
        st.tuples(st.integers(0, mid_count - 1), st.sampled_from(_SITES)),
        min_size=1, max_size=5,
    ))
    return mid_count, leaves, owners, moves


class TestMigrationTransparency:
    @given(migration_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_migrations_keep_answers_and_invariants(self, scenario):
        mid_count, leaves, owners, moves = scenario
        shadow, cluster = _deploy(mid_count, leaves, owners)
        query = "/top[@id='R']/mid"
        expected = _reference(shadow, query)

        for mid_index, target in moves:
            path = (("top", "R"), ("mid", f"m{mid_index}"))
            if cluster.owner_map[path] != target:
                cluster.delegate(path, target)
            results, _site, _o = cluster.query(query)
            assert sorted(_normalized(r) for r in results) == expected

        # I1/I2 hold everywhere, and the owner map matches reality.
        from repro.core.invariants import ownership_violations

        databases = {s: cluster.database(s) for s in cluster.sites}
        assert ownership_violations(databases, cluster.owner_map) == []
        for site in cluster.sites:
            assert structural_violations(databases[site]) == []

    @given(migration_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_updates_after_migration_reach_new_owner(self, scenario):
        mid_count, leaves, owners, moves = scenario
        if leaves == 0:
            return
        _shadow, cluster = _deploy(mid_count, leaves, owners)
        sa = cluster.add_sensing_agent("sa", [])
        for mid_index, target in moves:
            path = (("top", "R"), ("mid", f"m{mid_index}"))
            if cluster.owner_map[path] != target:
                cluster.delegate(path, target)
            leaf_path = path + (("leaf", "l0"),)
            sa.send_update(leaf_path, values={"value": "7"})
            owner = cluster.owner_map[leaf_path]
            element = cluster.database(owner).find(leaf_path)
            assert element.child("value").text == "7"
