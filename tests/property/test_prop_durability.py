"""Properties of the durability subsystem under random histories.

Two invariants, checked over randomly generated mutation sequences
with randomly placed checkpoints:

* **Recovery fidelity** -- checkpoint + WAL replay reproduces a
  byte-identical serialized partition, no matter where the crash
  falls relative to the checkpoints;
* **Replay idempotence** -- applying the recovered log a second time
  changes nothing, so a crash *during* recovery (replaying a prefix,
  then starting over) cannot corrupt the partition.
"""

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.core.database import SensorDatabase
from repro.core.evolution import (
    add_idable_child,
    remove_idable_child,
    rename_field,
)
from repro.core.errors import CoreError
from repro.core.status import Status, set_status
from repro.durability import (
    DurabilityConfig,
    DurabilityManager,
    apply_record,
    partition_fingerprint,
)
from repro.xmlkit import Element


def _build_database():
    root = Element("top", attrib={"id": "R"})
    set_status(root, Status.OWNED)
    for mid_index in range(2):
        mid = Element("mid", attrib={"id": f"m{mid_index}"})
        set_status(mid, Status.OWNED)
        root.append(mid)
        for leaf_index in range(2):
            leaf = Element("leaf", attrib={"id": f"l{leaf_index}"})
            set_status(leaf, Status.OWNED)
            leaf.append(Element("value", text="0"))
            mid.append(leaf)
    return SensorDatabase(root, clock=lambda: 1000.0, site_id="s0")


#: One operation = (op kind, *small integers the executor interprets).
_OPS = st.one_of(
    st.tuples(st.just("update"), st.integers(0, 1), st.integers(0, 1),
              st.integers(0, 9)),
    st.tuples(st.just("attribute"), st.integers(0, 1), st.integers(0, 9)),
    st.tuples(st.just("add_node"), st.integers(0, 1), st.integers(0, 4)),
    st.tuples(st.just("remove_node"), st.integers(0, 1), st.integers(0, 4)),
    st.tuples(st.just("rename"), st.integers(0, 1), st.integers(0, 1)),
    st.tuples(st.just("checkpoint")),
)


def _apply_op(database, manager, op):
    kind = op[0]
    if kind == "update":
        _mid, leaf, value = op[1], op[2], op[3]
        path = (("top", "R"), ("mid", f"m{op[1]}"), ("leaf", f"l{leaf}"))
        database.apply_update(path, values={"value": str(value)})
    elif kind == "attribute":
        path = (("top", "R"), ("mid", f"m{op[1]}"))
        database.apply_update(path, attributes={"zone": str(op[2])})
    elif kind == "add_node":
        try:
            add_idable_child(database, (("top", "R"), ("mid", f"m{op[1]}")),
                             "leaf", f"extra{op[2]}",
                             values={"value": "1"})
        except CoreError:
            pass  # already added earlier in the history
    elif kind == "remove_node":
        path = (("top", "R"), ("mid", f"m{op[1]}"),
                ("leaf", f"extra{op[2]}"))
        if database.find(path) is not None:
            remove_idable_child(database, path)
    elif kind == "rename":
        path = (("top", "R"), ("mid", f"m{op[1]}"), ("leaf", "l0"))
        old, new = ("value", "reading") if op[2] else ("reading", "value")
        try:
            rename_field(database, path, old, new)
        except CoreError:
            pass  # the field currently has the other name
    elif kind == "checkpoint":
        manager.checkpoint()


class TestRecoveryProperties:
    @given(st.lists(_OPS, min_size=1, max_size=30),
           st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_recover_reproduces_partition_byte_identically(
            self, operations, checkpoint_interval):
        directory = tempfile.mkdtemp(prefix="prop-durability-")
        try:
            config = DurabilityConfig(
                directory=directory, sync_every=0,
                checkpoint_interval=checkpoint_interval)
            manager = DurabilityManager(config, "s0",
                                        clock=lambda: 1000.0)
            database = _build_database()
            manager.attach(database)
            for op in operations:
                _apply_op(database, manager, op)
            live = partition_fingerprint(database)
            manager.abort()  # crash

            reborn = DurabilityManager(
                DurabilityConfig(directory=directory, sync_every=0,
                                 checkpoint_interval=checkpoint_interval),
                "s0", clock=lambda: 1000.0)
            recovered = reborn.recover()
            assert partition_fingerprint(recovered) == live

            # Replay idempotence: applying the whole recovered log
            # again (as a restarted recovery would) changes nothing.
            for record in reborn._wal.recovered_records:
                apply_record(recovered, record)
            assert partition_fingerprint(recovered) == live
            reborn.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    @given(st.lists(_OPS, min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_double_crash_recovery_is_stable(self, operations):
        """Recovering twice (crash between) lands on the same bytes."""
        directory = tempfile.mkdtemp(prefix="prop-durability-")
        try:
            config = DurabilityConfig(directory=directory, sync_every=0,
                                      checkpoint_interval=0)
            manager = DurabilityManager(config, "s0",
                                        clock=lambda: 1000.0)
            database = _build_database()
            manager.attach(database)
            for op in operations:
                _apply_op(database, manager, op)
            live = partition_fingerprint(database)
            manager.abort()

            first = DurabilityManager(config, "s0", clock=lambda: 1000.0)
            once = partition_fingerprint(first.recover())
            first.abort()  # crash again before any checkpoint

            second = DurabilityManager(config, "s0", clock=lambda: 1000.0)
            twice = partition_fingerprint(second.recover())
            second.close()
            assert once == live
            assert twice == live
        finally:
            shutil.rmtree(directory, ignore_errors=True)
