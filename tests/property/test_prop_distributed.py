"""The flagship properties: distribution transparency and invariants.

For random hierarchical documents, random ownership partitions and
random queries, the distributed system must return exactly the answer a
centralized evaluation of the same query over the global document
returns -- and every site database must satisfy the storage invariants
before, during and after arbitrary query/caching activity.
"""

from hypothesis import given, settings, strategies as st

from repro.core import PartitionPlan
from repro.core.invariants import structural_violations
from repro.net import Cluster
from repro.xmlkit import Element, canonical_form
from repro.xpath.evaluator import Evaluator

_LEVELS = ["top", "mid", "leaf"]
_SITES = ["s0", "s1", "s2", "s3"]


@st.composite
def hierarchical_documents(draw):
    """Random 3-level documents with IDable structure + value fields."""
    root = Element("top", attrib={"id": "R"})
    n_mid = draw(st.integers(1, 3))
    for mid_index in range(n_mid):
        mid = Element("mid", attrib={"id": f"m{mid_index}"})
        root.append(mid)
        mid.append(Element("meta", text=str(draw(st.integers(0, 3)))))
        for leaf_index in range(draw(st.integers(0, 3))):
            leaf = Element("leaf", attrib={"id": f"l{leaf_index}"})
            leaf.append(Element("value", text=str(draw(st.integers(0, 4)))))
            mid.append(leaf)
    return root


@st.composite
def partitions(draw, document):
    """A random ownership plan over *document* (root always owned)."""
    assignments = {site: [] for site in _SITES}
    assignments[draw(st.sampled_from(_SITES))].append((("top", "R"),))
    for mid in document.element_children("mid"):
        if draw(st.booleans()):
            mid_path = (("top", "R"), ("mid", mid.id))
            assignments[draw(st.sampled_from(_SITES))].append(mid_path)
            for leaf in mid.element_children("leaf"):
                if draw(st.booleans()):
                    assignments[draw(st.sampled_from(_SITES))].append(
                        mid_path + (("leaf", leaf.id),))
    return PartitionPlan(assignments)


@st.composite
def queries(draw, document):
    mids = [m.id for m in document.element_children("mid")] or ["m0"]
    mid = draw(st.sampled_from(mids))
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return f"/top[@id='R']/mid[@id='{mid}']"
    if kind == 1:
        return f"/top[@id='R']/mid[@id='{mid}']/leaf"
    if kind == 2:
        value = draw(st.integers(0, 4))
        return (f"/top[@id='R']/mid[@id='{mid}']"
                f"/leaf[value='{value}']")
    if kind == 3:
        other = draw(st.sampled_from(mids))
        return f"/top[@id='R']/mid[@id='{mid}' or @id='{other}']/leaf"
    if kind == 4:
        value = draw(st.integers(0, 4))
        return f"/top[@id='R']//leaf[value='{value}']"
    return f"/top[@id='R']/mid[@id='{mid}']/meta"


def _normalized(element):
    clone = element.copy()
    for node in clone.iter():
        node.delete_attribute("timestamp")
    return canonical_form(clone)


def reference_answer(document, query):
    matches = Evaluator().evaluate(
        __import__("repro.xpath.parser", fromlist=["parse"]).parse(query),
        document, now=0.0)
    return sorted(_normalized(m) for m in matches)


@st.composite
def scenarios(draw):
    document = draw(hierarchical_documents())
    plan = draw(partitions(document))
    query_list = draw(st.lists(queries(document), min_size=1, max_size=4))
    return document, plan, query_list


class TestDistributionTransparency:
    @given(scenarios())
    @settings(max_examples=60, deadline=None)
    def test_distributed_equals_centralized(self, scenario):
        document, plan, query_list = scenario
        cluster = Cluster(document.copy(), plan, service="prop")
        for query in query_list:
            results, _site, _outcome = cluster.query(query)
            got = sorted(_normalized(r) for r in results)
            assert got == reference_answer(document, query), query

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_after_query_sequences(self, scenario):
        document, plan, query_list = scenario
        cluster = Cluster(document.copy(), plan, service="prop")
        for query in query_list:
            cluster.query(query)
            for site in cluster.sites:
                assert structural_violations(cluster.database(site)) == []

    @given(scenarios())
    @settings(max_examples=30, deadline=None)
    def test_repeat_query_returns_same_answer(self, scenario):
        document, plan, query_list = scenario
        cluster = Cluster(document.copy(), plan, service="prop")
        query = query_list[0]
        first, site, _ = cluster.query(query)
        second, _, _ = cluster.query(query, at_site=site)
        assert sorted(_normalized(r) for r in first) == \
            sorted(_normalized(r) for r in second)

    @given(scenarios())
    @settings(max_examples=30, deadline=None)
    def test_aggressive_generalization_repeat_is_local(self, scenario):
        """With aggressive subquery generalization, the first query's
        cache answers any repetition without remote traffic -- even for
        predicate queries, whose failed siblings were over-fetched."""
        from repro.core import GENERALIZE_AGGRESSIVE
        from repro.net import OAConfig

        document, plan, query_list = scenario
        cluster = Cluster(
            document.copy(), plan, service="prop",
            oa_config=OAConfig(generalization=GENERALIZE_AGGRESSIVE))
        query = query_list[0]
        first, site, _ = cluster.query(query)
        sent_after_first = cluster.agent(site).stats["subqueries_sent"]
        second, _, _ = cluster.query(query, at_site=site)
        assert sorted(_normalized(r) for r in first) == \
            sorted(_normalized(r) for r in second)
        assert cluster.agent(site).stats["subqueries_sent"] == \
            sent_after_first

    @given(scenarios())
    @settings(max_examples=30, deadline=None)
    def test_eviction_preserves_correctness(self, scenario):
        document, plan, query_list = scenario
        cluster = Cluster(document.copy(), plan, service="prop")
        query = query_list[-1]
        expected = reference_answer(document, query)
        cluster.query(query)
        for site in cluster.sites:
            cluster.database(site).evict_all_cached()
            assert structural_violations(cluster.database(site)) == []
        results, _, _ = cluster.query(query)
        assert sorted(_normalized(r) for r in results) == expected


class TestWireFragmentInvariants:
    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_qeg_answers_satisfy_c1_c2(self, scenario):
        """Every wire fragment a site emits is cacheable by construction:
        it passes the C1/C2 structural checks against the ground truth."""
        from repro.core import compile_pattern, fragment_violations, run_qeg

        document, plan, query_list = scenario
        databases = plan.build_databases(document)
        for query in query_list:
            for db in databases.values():
                result = run_qeg(db, compile_pattern(query))
                if result.answer is not None:
                    assert fragment_violations(result.answer,
                                               document) == []

    @given(scenarios())
    @settings(max_examples=30, deadline=None)
    def test_merging_any_answer_anywhere_is_safe(self, scenario):
        """Any site's answer merges into any other site's database
        without breaking the storage invariants."""
        from repro.core import compile_pattern, run_qeg
        from repro.core.invariants import (
            structural_violations,
            violations_against_reference,
        )

        document, plan, query_list = scenario
        databases = plan.build_databases(document)
        sites = sorted(databases)
        for query in query_list[:2]:
            for producer in sites:
                result = run_qeg(databases[producer],
                                 compile_pattern(query))
                if result.answer is None:
                    continue
                for consumer in sites:
                    databases[consumer].store_fragment(result.answer.copy())
        for site in sites:
            assert structural_violations(databases[site]) == []
            assert violations_against_reference(databases[site],
                                                document) == []
