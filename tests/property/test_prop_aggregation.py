"""Property: the partial-aggregate algebra is a commutative monoid,
and summary-served answers equal the naive fan-out byte-for-byte.

The hierarchy's correctness rests on three algebraic facts the rollup
tree exploits freely -- merge order never matters (children reply in
any order), merge grouping never matters (interior sites pre-merge),
and a duplicated reply changes nothing -- plus one end-to-end fact:
for *any* tree shape and *any* partition of it over sites, an
aggregate answered through summaries prints identically to the same
aggregate computed by naive leaf fan-out.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.agg import (
    AggregationConfig,
    Partial,
    SHAPES,
    collapse,
    merge_states,
    state_of,
)
from repro.core import PartitionPlan
from repro.net import Cluster
from repro.xmlkit import Element
from repro.xpath.evaluator import Evaluator
from repro.xpath import parser as xpath_parser
from repro.xpath.types import node_string_value, to_number

# Magnitudes stay below ~1e100: large enough to stress the rational
# sum, small enough that no intermediate rounds to infinity (where
# fsum raises and byte-identity becomes an IEEE-ordering question).
finite_values = st.floats(min_value=-1e100, max_value=1e100,
                          allow_nan=False, width=64)
values = st.one_of(
    finite_values,
    st.sampled_from([float("nan"), float("inf"), float("-inf")]),
)
value_lists = st.lists(values, max_size=12)

REGIONS = [
    (("region", "R"),),
    (("region", "R"), ("group", "g0")),
    (("region", "R"), ("group", "g1")),
    (("region", "R"), ("group", "g1"), ("sensor", "s3")),
]

states = st.dictionaries(
    st.sampled_from(REGIONS),
    st.tuples(value_lists.map(Partial.of_values),
              st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False)),
    max_size=4,
)


def _same_float(a, b):
    return repr(a) == repr(b)  # NaN-safe, sign-of-zero-exact


# ----------------------------------------------------------------------
# The merge monoid
# ----------------------------------------------------------------------
class TestMergeAlgebra:
    @given(value_lists, value_lists)
    def test_commutative(self, xs, ys):
        a, b = Partial.of_values(xs), Partial.of_values(ys)
        assert a.merge(b) == b.merge(a)

    @given(value_lists, value_lists, value_lists)
    def test_associative(self, xs, ys, zs):
        a, b, c = (Partial.of_values(v) for v in (xs, ys, zs))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(value_lists)
    def test_empty_partial_is_identity(self, xs):
        a = Partial.of_values(xs)
        assert a.merge(Partial()) == a
        assert Partial().merge(a) == a

    @given(value_lists, value_lists, value_lists)
    def test_any_merge_tree_finalizes_identically(self, xs, ys, zs):
        chunks = [Partial.of_values(v) for v in (xs, ys, zs)]
        whole = Partial.of_values(xs + ys + zs)
        left = chunks[0].merge(chunks[1]).merge(chunks[2])
        right = chunks[2].merge(chunks[1].merge(chunks[0]))
        for shape in SHAPES:
            assert _same_float(left.finalize(shape),
                               whole.finalize(shape))
            assert _same_float(right.finalize(shape),
                               whole.finalize(shape))

    @given(value_lists)
    def test_wire_roundtrip_is_lossless(self, xs):
        partial = Partial.of_values(xs)
        again = Partial.from_attrs(partial.to_attrs())
        assert again == partial
        for shape in SHAPES:
            assert _same_float(again.finalize(shape),
                               partial.finalize(shape))


class TestStateAlgebra:
    @given(states, states)
    def test_commutative(self, a, b):
        assert merge_states(a, b) == merge_states(b, a)

    @given(states, states, states)
    def test_associative(self, a, b, c):
        assert merge_states(merge_states(a, b), c) == \
            merge_states(a, merge_states(b, c))

    @given(states)
    def test_duplicate_safe(self, a):
        assert merge_states(a, a) == a

    @given(states, states)
    def test_collapse_ignores_merge_order(self, a, b):
        left, left_ts = collapse(merge_states(a, b), now=0.0)
        right, right_ts = collapse(merge_states(b, a), now=0.0)
        assert left == right
        assert left_ts == right_ts


# ----------------------------------------------------------------------
# Summary-served == naive fan-out, for any tree shape
# ----------------------------------------------------------------------
@st.composite
def deployments(draw):
    """A random-shape document, a random partition of it, and the
    query depth: zones branch irregularly (including empty ones) and
    any zone may be delegated to its own site."""
    depth = draw(st.integers(min_value=1, max_value=3))
    rng = random.Random(draw(st.integers(0, 2 ** 16)))
    root = Element("deployment", attrib={"id": "D"})
    assignments = {"root": [(("deployment", "D"),)]}
    site_count = [0]

    def grow(parent, parent_path, level):
        for index in range(rng.randint(0, 3)):
            zone = Element("zone", attrib={"id": f"z{index}"})
            parent.append(zone)
            path = parent_path + ((("zone", f"z{index}")),)
            if rng.random() < 0.4:
                site_count[0] += 1
                assignments[f"site{site_count[0]}"] = [path]
            if level + 1 < depth:
                grow(zone, path, level + 1)
            else:
                for offset in range(rng.randint(0, 3)):
                    sensor = Element("sensor",
                                     attrib={"id": f"s{offset}"})
                    value = draw(values)
                    sensor.append(Element("value", text=repr(value)))
                    zone.append(sensor)

    grow(root, (("deployment", "D"),), 0)
    query_tail = "/zone" * depth + "/sensor/value"
    return root, assignments, f"/deployment[@id='D']{query_tail}"


@settings(max_examples=25, deadline=None)
@given(deployments(), st.sampled_from(SHAPES))
def test_summary_answers_print_identically_to_naive(scenario, shape):
    root, assignments, inner = scenario
    plan = PartitionPlan(assignments)
    summary_cluster = Cluster(root.copy(), plan,
                              aggregation=AggregationConfig())
    served = summary_cluster.scalar(f"{shape}({inner})",
                                    at_site="root", now=10.0)

    # The naive leaf fan-out ground truth: every matched value pulled
    # to one place, aggregated the evaluator's way.
    matches = Evaluator().evaluate(xpath_parser.parse(inner), root,
                                   now=10.0)
    leaf_values = [to_number(node_string_value(node)) for node in matches]
    naive = _naive(shape, leaf_values)
    assert repr(served) == repr(naive)

    # And the distributed naive path agrees for the shapes it serves.
    if shape in ("count", "sum"):
        naive_cluster = Cluster(root.copy(), plan)
        assert repr(naive_cluster.scalar(f"{shape}({inner})",
                                         at_site="root", now=10.0)) \
            == repr(served)


def _naive(shape, leaf_values):
    if shape == "count":
        return float(len(leaf_values))
    if shape == "sum":
        try:
            return float(math.fsum(leaf_values))
        except (OverflowError, ValueError):
            return float(sum(leaf_values))
    if not leaf_values or any(math.isnan(v) for v in leaf_values):
        return float("nan")
    if shape == "avg":
        total = _naive("sum", leaf_values)
        if math.isnan(total) or math.isinf(total):
            return total
        return total / len(leaf_values)
    if shape == "min":
        return float(min(leaf_values))
    return float(max(leaf_values))
