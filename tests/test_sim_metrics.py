"""Unit tests for the metrics collector."""

import pytest

from repro.sim import WorkloadMetrics


@pytest.fixture
def metrics():
    m = WorkloadMetrics()
    m.begin_window(10.0)
    return m


class TestWindowing:
    def test_empty_window(self, metrics):
        metrics.close_window(20.0)
        assert metrics.throughput == 0.0
        assert metrics.mean_latency == 0.0
        assert metrics.percentile_latency(0.95) == 0.0

    def test_throughput_over_duration(self, metrics):
        for index in range(20):
            metrics.record(10.0 + index * 0.5, latency=0.1, query_type=1)
        metrics.close_window(20.0)
        assert metrics.throughput == pytest.approx(2.0)
        assert metrics.completed == 20

    def test_begin_window_resets(self, metrics):
        metrics.record(11.0, 0.1, 1)
        metrics.begin_window(15.0)
        assert metrics.completed == 0
        assert metrics.latencies == []

    def test_zero_duration_guard(self, metrics):
        metrics.record(10.0, 0.1)
        metrics.close_window(10.0)
        assert metrics.throughput == 0.0


class TestLatencies:
    def test_mean_and_percentile(self, metrics):
        for latency in (0.1, 0.2, 0.3, 0.4, 1.0):
            metrics.record(11.0, latency)
        metrics.close_window(20.0)
        assert metrics.mean_latency == pytest.approx(0.4)
        assert metrics.percentile_latency(0.5) == pytest.approx(0.3)
        assert metrics.percentile_latency(0.99) == pytest.approx(1.0)

    def test_per_type_accounting(self, metrics):
        metrics.record(11.0, 0.1, query_type=1)
        metrics.record(12.0, 0.3, query_type=1)
        metrics.record(13.0, 0.5, query_type=3)
        assert metrics.completed_by_type == {1: 2, 3: 1}
        assert metrics.mean_latency_of(1) == pytest.approx(0.2)
        assert metrics.mean_latency_of(3) == pytest.approx(0.5)
        assert metrics.mean_latency_of(4) == 0.0


class TestTimeline:
    def test_throughput_trace_binning(self, metrics):
        for when in (10.5, 11.0, 12.5, 18.0):
            metrics.record(when, 0.1)
        metrics.close_window(20.0)
        trace = metrics.throughput_trace(bin_seconds=5.0)
        assert trace[0] == (15.0, 3)
        assert trace[1] == (20.0, 1)
        assert sum(count for _t, count in trace) == 4

    def test_empty_trace(self, metrics):
        metrics.close_window(20.0)
        assert metrics.throughput_trace() == []

    def test_summary_fields(self, metrics):
        metrics.record(11.0, 0.25, query_type=2)
        metrics.close_window(20.0)
        summary = metrics.summary()
        assert summary["completed"] == 1
        assert summary["mean_latency_ms"] == 250.0
        assert summary["by_type"] == {2: 1}
