"""Unit tests for the QEG walker: the four status cases and beyond."""

import pytest

from repro.core import (
    PartitionPlan,
    Status,
    Subquery,
    UnsupportedDistributedQueryError,
    compile_pattern,
    fragment_violations,
    get_status,
    run_qeg,
)
from repro.core.qeg import BOOLEAN_PROBE

from tests.conftest import FIGURE2_QUERY, OAKLAND, SHADYSIDE, id_path

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


def _no_data(result):
    """True when a QEG answer carries no local information (only ID
    scaffolding / negative knowledge)."""
    if result.answer is None:
        return True
    from repro.core import Status, get_status

    return all(
        get_status(node) is not Status.COMPLETE
        for node in result.answer.iter()
    )



@pytest.fixture
def dbs(paper_doc):
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
        "shady": [SHADYSIDE],
    })
    return plan.build_databases(paper_doc)


class TestCompilePattern:
    def test_items_from_steps(self, paper_schema):
        pattern = compile_pattern(FIGURE2_QUERY, schema=paper_schema)
        assert len(pattern.items) == 7
        assert not pattern.has_nesting

    def test_descendant_flag(self, paper_schema):
        pattern = compile_pattern("/usRegion[@id='NE']//parkingSpace",
                                  schema=paper_schema)
        assert pattern.items[1].descendant

    def test_relative_query_rejected(self, paper_schema):
        with pytest.raises(UnsupportedDistributedQueryError):
            compile_pattern("a/b", schema=paper_schema)

    def test_scalar_rejected(self, paper_schema):
        with pytest.raises(UnsupportedDistributedQueryError):
            compile_pattern("count(/a)", schema=paper_schema)

    def test_parent_axis_on_main_path_rejected(self, paper_schema):
        with pytest.raises(UnsupportedDistributedQueryError):
            compile_pattern("/a/../b", schema=paper_schema)

    def test_trailing_descendant_rejected(self, paper_schema):
        from repro.xpath.errors import XPathSyntaxError

        # "/a//" is already a syntax error at the XPath level.
        with pytest.raises((UnsupportedDistributedQueryError,
                            XPathSyntaxError)):
            compile_pattern("/a//", schema=paper_schema)

    def test_collect_index_for_nested(self, paper_schema):
        pattern = compile_pattern(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
            "/parkingSpace[not(price > ../parkingSpace/price)]",
            schema=paper_schema,
        )
        assert pattern.collect_index == 5  # the block item

    def test_consistency_sugar_rewritten(self, paper_schema):
        pattern = compile_pattern(
            PREFIX + "/neighborhood[@id='Oakland'][timestamp > now - 30]",
            schema=paper_schema,
        )
        split = pattern.items[4].split
        assert len(split.consistency_predicates) == 1


class TestPatternCompileCache:
    def test_recompile_served_from_schema_cache(self, paper_doc):
        from repro.core import HierarchySchema

        schema = HierarchySchema.from_document(paper_doc)
        first = compile_pattern(FIGURE2_QUERY, schema=schema)
        second = compile_pattern(FIGURE2_QUERY, schema=schema)
        assert second is first
        assert schema.compiled_patterns.stats["hits"] == 1

    def test_use_cache_false_bypasses(self, paper_doc):
        from repro.core import HierarchySchema

        schema = HierarchySchema.from_document(paper_doc)
        first = compile_pattern(FIGURE2_QUERY, schema=schema)
        fresh = compile_pattern(FIGURE2_QUERY, schema=schema,
                                use_cache=False)
        assert fresh is not first

    def test_cache_bounded(self, paper_doc):
        from repro.core import HierarchySchema

        schema = HierarchySchema.from_document(paper_doc)
        schema.compiled_patterns.max_entries = 2
        for block in ("1", "2", "3"):
            compile_pattern(PREFIX + "/neighborhood[@id='Oakland']"
                            f"/block[@id='{block}']", schema=schema)
        # Each compile registers the raw and the canonical spelling, but
        # the LRU budget holds regardless.
        assert len(schema.compiled_patterns) == 2
        assert schema.compiled_patterns.stats["evictions"] >= 1

    def test_schema_mutation_invalidates(self, paper_doc):
        from repro.core import HierarchySchema

        schema = HierarchySchema.from_document(paper_doc)
        compile_pattern(FIGURE2_QUERY, schema=schema)
        assert len(schema.compiled_patterns) > 0
        schema.register_child("block", "meter")  # new IDable tag
        assert len(schema.compiled_patterns) == 0
        recompiled = compile_pattern(FIGURE2_QUERY, schema=schema)
        assert recompiled.is_idable_tag("meter")

    def test_schemaless_compiles_share_global_cache(self):
        from repro.core.qeg import PATTERN_CACHE

        PATTERN_CACHE.clear()
        first = compile_pattern("/top[@id='R']/mid")
        second = compile_pattern("/top[@id='R']/mid")
        assert second is first

    def test_driver_compile_uses_cache(self, paper_doc):
        from repro.core import GatherDriver, HierarchySchema, PartitionPlan

        schema = HierarchySchema.from_document(paper_doc)
        plan = PartitionPlan({"one": [id_path("usRegion=NE")]})
        db = plan.build_databases(paper_doc)["one"]
        driver = GatherDriver(db, send=lambda sq: None, schema=schema)
        first = driver.compile(FIGURE2_QUERY)
        assert driver.compile(FIGURE2_QUERY) is first


class TestOwnedCase:
    def test_fully_local_answer(self, dbs, paper_schema):
        query = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
                 "/parkingSpace[available='yes']")
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        assert result.is_complete
        assert result.answer is not None

    def test_pruned_by_predicate(self, dbs, paper_schema):
        query = (PREFIX + "/neighborhood[@id='Oakland']"
                 "[@zipcode='00000']/block")
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        assert result.is_complete
        assert _no_data(result)

    def test_predicates_over_child_id_stubs(self, dbs, paper_schema):
        """Local information includes child IDs, so counting them works."""
        query = PREFIX + "/neighborhood[@id='Oakland'][count(block) = 2]"
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        assert result.is_complete
        assert result.answer is not None

    def test_answer_fragment_is_cacheable(self, dbs, paper_doc,
                                          paper_schema):
        query = PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        assert fragment_violations(result.answer, paper_doc) == []


class TestIncompleteCase:
    def test_id_predicate_prunes_without_subquery(self, dbs, paper_schema):
        query = PREFIX + "/neighborhood[@id='Nonexistent']/block"
        result = run_qeg(dbs["top"], compile_pattern(query, paper_schema))
        assert result.is_complete
        assert _no_data(result)

    def test_matching_stub_asks(self, dbs, paper_schema):
        query = PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
        result = run_qeg(dbs["top"], compile_pattern(query, paper_schema))
        assert len(result.subqueries) == 1
        subquery = result.subqueries[0]
        assert subquery.reason == Subquery.INCOMPLETE
        assert subquery.anchor_path == OAKLAND
        assert subquery.query.endswith("/block[@id = '1']")

    def test_residual_keeps_non_id_predicates(self, dbs, paper_schema):
        query = (PREFIX + "/neighborhood[@id='Oakland']"
                 "/block[@id='1'][count(parkingSpace) > 0]")
        result = run_qeg(dbs["top"], compile_pattern(query, paper_schema))
        assert "count(parkingSpace) > 0" in result.subqueries[0].query

    def test_disjunction_fans_out(self, dbs, paper_schema):
        result = run_qeg(dbs["top"],
                         compile_pattern(FIGURE2_QUERY, paper_schema))
        anchors = {s.anchor_path for s in result.subqueries}
        assert anchors == {OAKLAND, SHADYSIDE}


class TestIdCompleteCase:
    def test_pass_through_to_idable_children(self, dbs, paper_schema):
        # At oak, the city is id-complete; neighborhoods below are the
        # owned region or stubs.
        query = PREFIX + "/neighborhood/block[@id='1']"
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        # Oakland answered locally; Shadyside needs a subquery.
        assert any(s.anchor_path == SHADYSIDE for s in result.subqueries)
        assert result.answer is not None

    def test_local_info_required_asks(self, dbs, paper_schema):
        # Selecting the city itself needs its local information, which
        # the id-complete copy lacks.
        query = PREFIX
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        assert result.subqueries
        assert result.subqueries[0].reason in (
            Subquery.ID_COMPLETE, Subquery.MISSING_SUBTREE)

    def test_non_idable_content_asks(self, dbs, paper_schema):
        # available-spaces lives in the neighborhood's local info, which
        # "top" does not store.
        query = PREFIX + "/neighborhood[@id='Oakland']/available-spaces"
        result = run_qeg(dbs["top"], compile_pattern(query, paper_schema))
        assert result.subqueries

    def test_rest_predicate_at_id_complete_asks(self, dbs, paper_schema):
        query = PREFIX + "[@someattr='x']/neighborhood[@id='Oakland']"
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        assert result.subqueries
        assert result.subqueries[0].reason == Subquery.ID_COMPLETE


class TestCompleteCaseConsistency:
    def _cached_oakland_at_top(self, dbs, paper_schema, timestamp):
        # Cache Oakland at top via a real subquery round.
        query = PREFIX + "/neighborhood[@id='Oakland']"
        remote = run_qeg(dbs["oak"],
                         compile_pattern(query, paper_schema))
        dbs["top"].store_fragment(remote.answer)
        element = dbs["top"].find(OAKLAND)
        element.set("timestamp", repr(float(timestamp)))
        return element

    def test_fresh_cache_used(self, dbs, paper_schema):
        self._cached_oakland_at_top(dbs, paper_schema, timestamp=995.0)
        query = (PREFIX + "/neighborhood[@id='Oakland']"
                 "[timestamp() > current-time() - 30]")
        result = run_qeg(dbs["top"], compile_pattern(query, paper_schema),
                         now=1000.0)
        stale_asks = [s for s in result.subqueries
                      if s.reason == Subquery.STALE]
        assert not stale_asks

    def test_stale_cache_asks_owner(self, dbs, paper_schema):
        self._cached_oakland_at_top(dbs, paper_schema, timestamp=900.0)
        query = (PREFIX + "/neighborhood[@id='Oakland']"
                 "[timestamp() > current-time() - 30]")
        result = run_qeg(dbs["top"], compile_pattern(query, paper_schema),
                         now=1000.0)
        assert any(s.reason == Subquery.STALE for s in result.subqueries)

    def test_owner_ignores_consistency(self, dbs, paper_schema):
        # Make the owner's copy ancient; it must still answer.
        element = dbs["oak"].find(OAKLAND)
        element.set("timestamp", "1.0")
        query = (PREFIX + "/neighborhood[@id='Oakland']"
                 "[timestamp() > current-time() - 30]")
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema),
                         now=1000.0)
        assert result.is_complete
        assert result.answer is not None

    def test_unseparable_predicate_asks(self, dbs, paper_schema):
        self._cached_oakland_at_top(dbs, paper_schema, timestamp=995.0)
        query = (PREFIX + "/neighborhood[@id='Oakland' or "
                 "timestamp() > current-time() - 30]")
        result = run_qeg(dbs["top"], compile_pattern(query, paper_schema),
                         now=1000.0)
        assert any(s.reason == Subquery.UNSEPARABLE
                   for s in result.subqueries)


class TestDescendantQueries:
    def test_descendant_over_incomplete_asks(self, dbs, paper_schema):
        query = "/usRegion[@id='NE']//parkingSpace[available='yes']"
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        # Oakland's spaces answered locally; remote stubs become // asks.
        assert result.answer is not None
        assert all("//" in s.query for s in result.subqueries)

    def test_descendant_local_only(self, dbs, paper_schema):
        query = (PREFIX + "/neighborhood[@id='Oakland']"
                 "//parkingSpace[price='0']")
        result = run_qeg(dbs["oak"], compile_pattern(query, paper_schema))
        assert result.is_complete


class TestNestingStrategies:
    NESTED = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
              "/parkingSpace[not(price > ../parkingSpace/price)]")

    def test_fetch_subtree_local(self, dbs, paper_schema):
        result = run_qeg(dbs["oak"], compile_pattern(self.NESTED,
                                                     paper_schema))
        assert result.is_complete
        assert result.answer is not None

    def test_fetch_subtree_remote_asks_whole_subtree(self, dbs,
                                                     paper_schema):
        result = run_qeg(dbs["top"], compile_pattern(self.NESTED,
                                                     paper_schema))
        fetches = [s for s in result.subqueries
                   if s.reason in (Subquery.NESTED_FETCH,
                                   Subquery.INCOMPLETE)]
        assert fetches
        # The fetch targets the block (the earliest referenced tag), or
        # the neighborhood stub on the way there.
        assert fetches[0].anchor_path[:5] == OAKLAND

    def test_probe_strategy_emits_scalar_probe(self, dbs, paper_schema):
        query = PREFIX + "[./neighborhood[@id='Oakland']]/neighborhood"
        pattern = compile_pattern(query, paper_schema)
        result = run_qeg(dbs["shady"], pattern,
                         nesting_strategy=BOOLEAN_PROBE)
        probes = [s for s in result.subqueries if s.scalar]
        assert probes
        assert probes[0].query.startswith("boolean(")

    def test_probe_results_consumed(self, dbs, paper_schema):
        query = PREFIX + "[./neighborhood[@id='Oakland']]/neighborhood"
        pattern = compile_pattern(query, paper_schema)
        first = run_qeg(dbs["shady"], pattern,
                        nesting_strategy=BOOLEAN_PROBE)
        probe_results = {s.query: True for s in first.subqueries if s.scalar}
        second = run_qeg(dbs["shady"], pattern,
                         probe_results=probe_results,
                         nesting_strategy=BOOLEAN_PROBE)
        assert not [s for s in second.subqueries if s.scalar]

    def test_probe_false_prunes(self, dbs, paper_schema):
        query = PREFIX + "[./neighborhood[@id='Nowhere']]/neighborhood"
        pattern = compile_pattern(query, paper_schema)
        first = run_qeg(dbs["shady"], pattern,
                        nesting_strategy=BOOLEAN_PROBE)
        probe_results = {s.query: False for s in first.subqueries if s.scalar}
        second = run_qeg(dbs["shady"], pattern,
                         probe_results=probe_results,
                         nesting_strategy=BOOLEAN_PROBE)
        assert second.is_complete
        assert _no_data(second)


class TestSubsumption:
    def test_all_children_cached_answers_wildcard(self, dbs, paper_doc,
                                                  paper_schema):
        """Section 3.3: once every neighborhood is cached at the city's
        site, a query over all neighborhoods is answered locally."""
        for neighborhood in ("Oakland", "Shadyside"):
            query = PREFIX + f"/neighborhood[@id='{neighborhood}']"
            owner = "oak" if neighborhood == "Oakland" else "shady"
            remote = run_qeg(dbs[owner],
                             compile_pattern(query, paper_schema))
            dbs["top"].store_fragment(remote.answer)
        wildcard = PREFIX + "/neighborhood"
        result = run_qeg(dbs["top"], compile_pattern(wildcard, paper_schema))
        # Both neighborhoods' local info is needed AND cached; but their
        # blocks (subtrees) are not -> subtree fetches, not failures.
        reasons = {s.reason for s in result.subqueries}
        assert reasons <= {Subquery.MISSING_SUBTREE}

    def test_wildcard_leaf_level(self, dbs, paper_schema):
        # Cache everything under Oakland at top, then ask for its spaces.
        remote = run_qeg(
            dbs["oak"],
            compile_pattern(PREFIX + "/neighborhood[@id='Oakland']"
                            "/block[@id='1']", paper_schema))
        dbs["top"].store_fragment(remote.answer)
        query = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
                 "/parkingSpace[available='yes']")
        result = run_qeg(dbs["top"], compile_pattern(query, paper_schema))
        assert result.is_complete


def test_empty_root_site_asks(paper_doc, paper_schema):
    """A site holding only the root stub forwards everything."""
    from repro.core import SensorDatabase

    db = SensorDatabase.empty("usRegion", "NE")
    result = run_qeg(db, compile_pattern(
        "/usRegion[@id='NE']/state[@id='PA']", paper_schema))
    assert result.subqueries
    assert result.subqueries[0].anchor_path == ((("usRegion"), ("NE")),)
