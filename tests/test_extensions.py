"""Tests for the Section 4/7 extensions: schema evolution and
continuous queries."""

import pytest

from repro.core import (
    CoreError,
    Status,
    add_idable_child,
    get_status,
    remove_idable_child,
    rename_field,
    structural_violations,
)
from repro.net import NameNotFound

from tests.conftest import OAKLAND, PITTSBURGH, SHADYSIDE, id_path

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


class TestAddIdableNode:
    def test_add_block_via_cluster(self, paper_cluster):
        element = paper_cluster.add_node(OAKLAND, "block", "99",
                                         values={"note": "new"})
        assert get_status(element) is Status.OWNED
        # DNS entry registered; queries find the new node immediately.
        record = paper_cluster.dns.lookup(
            paper_cluster.dns.name_for(OAKLAND + (("block", "99"),)))
        assert record.site == "oak"
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='99']")
        assert len(results) == 1
        assert results[0].child("note").text == "new"

    def test_add_requires_parent_ownership(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        with pytest.raises(CoreError):
            add_idable_child(dbs["top"], OAKLAND, "block", "99")

    def test_duplicate_rejected(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        with pytest.raises(CoreError):
            add_idable_child(dbs["oak"], OAKLAND, "block", "1")

    def test_reserved_attributes_rejected(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        with pytest.raises(CoreError):
            add_idable_child(dbs["oak"], OAKLAND, "block", "77",
                             attributes={"status": "owned"})

    def test_invariants_hold_after_add(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        add_idable_child(dbs["oak"], OAKLAND, "block", "42")
        assert structural_violations(dbs["oak"]) == []

    def test_add_updates_schema(self, paper_cluster):
        paper_cluster.add_node(OAKLAND + (("block", "1"),), "sensor", "s1")
        assert paper_cluster.schema.is_idable_tag("sensor")


class TestRemoveIdableNode:
    def test_remove_via_cluster(self, paper_cluster):
        block = OAKLAND + (("block", "2"),)
        name = paper_cluster.dns.name_for(block)
        removed = paper_cluster.remove_node(block)
        assert tuple(block) in {tuple(tuple(e) for e in p) for p in removed}
        with pytest.raises(NameNotFound):
            paper_cluster.dns.lookup(name)
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='2']")
        assert results == []

    def test_remove_reports_descendants(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        removed = remove_idable_child(dbs["oak"], OAKLAND + (("block", "1"),))
        tags = {p[-1][0] for p in removed}
        assert tags == {"block", "parkingSpace"}
        assert len(removed) == 3  # the block + its two spaces

    def test_remove_requires_parent_ownership(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        with pytest.raises(CoreError):
            remove_idable_child(dbs["top"],
                                OAKLAND + (("block", "1"),))

    def test_cannot_remove_root(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        with pytest.raises(CoreError):
            remove_idable_child(dbs["top"], id_path("usRegion=NE"))


class TestRenameField:
    def test_rename_locally(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        space = OAKLAND + (("block", "1"), ("parkingSpace", "1"))
        rename_field(dbs["oak"], space, "available", "is-free")
        element = dbs["oak"].find(space)
        assert element.child("is-free").text == "yes"
        assert element.child("available") is None

    def test_rename_requires_ownership(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        with pytest.raises(CoreError):
            rename_field(dbs["top"],
                         OAKLAND + (("block", "1"), ("parkingSpace", "1")),
                         "available", "is-free")

    def test_rename_rejects_idable_child(self, paper_doc, paper_plan):
        dbs = paper_plan.build_databases(paper_doc)
        with pytest.raises(CoreError):
            rename_field(dbs["oak"], OAKLAND, "block", "zone")


class TestContinuousQueries:
    QUERY = (PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
             "/parkingSpace[available='yes']")

    def test_initial_fire(self, paper_cluster):
        seen = []
        site, _sid = paper_cluster.subscribe(self.QUERY, seen.append)
        assert site == "oak"
        assert len(seen) == 1
        assert {r.id for r in seen[0]} == {"1"}

    def test_update_triggers_notification(self, paper_cluster):
        seen = []
        paper_cluster.subscribe(self.QUERY, seen.append)
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = paper_cluster.add_sensing_agent("sa-cq", [space])
        sa.send_update(space, values={"available": "yes"})
        assert len(seen) == 2
        assert {r.id for r in seen[-1]} == {"1", "2"}

    def test_no_notification_when_answer_unchanged(self, paper_cluster):
        seen = []
        paper_cluster.subscribe(self.QUERY, seen.append)
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = paper_cluster.add_sensing_agent("sa-cq", [space])
        sa.send_update(space, values={"available": "no"})  # still no
        assert len(seen) == 1

    def test_irrelevant_update_not_evaluated(self, paper_cluster):
        seen = []
        site, _sid = paper_cluster.subscribe(self.QUERY, seen.append)
        manager = paper_cluster.agent(site).continuous
        evaluations = manager.stats["evaluations"]
        other = SHADYSIDE + (("block", "1"), ("parkingSpace", "1"))
        sa = paper_cluster.add_sensing_agent("sa-cq", [other])
        sa.send_update(other, values={"available": "no"})
        assert manager.stats["evaluations"] == evaluations

    def test_unsubscribe_stops_notifications(self, paper_cluster):
        seen = []
        site, sid = paper_cluster.subscribe(self.QUERY, seen.append)
        paper_cluster.unsubscribe(site, sid)
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = paper_cluster.add_sensing_agent("sa-cq", [space])
        sa.send_update(space, values={"available": "yes"})
        assert len(seen) == 1  # only the initial fire

    def test_subscription_covers_region(self):
        from repro.net.continuous import Subscription

        subscription = Subscription("/q", PITTSBURGH, lambda r: None)
        assert subscription.covers(OAKLAND)  # inside the region
        assert subscription.covers(PITTSBURGH[:2])  # ancestor info
        other_city = PITTSBURGH[:-1] + (("city", "Etna"),)
        assert not subscription.covers(other_city + (("neighborhood", "R"),))


class TestRemovalTransients:
    def test_stale_stub_elsewhere_reads_as_absent(self, paper_cluster):
        """After a node is deleted, another site's leftover ID stub must
        make queries return empty -- not crash on the missing DNS entry
        (Section 4's transient-inconsistency stance)."""
        block = OAKLAND + (("block", "2"),)
        # Warm "top" with block 1 only: block 2 stays an ID stub there.
        paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']",
            at_site="top")
        paper_cluster.remove_node(block)
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='2']",
            at_site="top")
        assert results == []

    def test_stale_full_cache_is_a_transient_inconsistency(
            self, paper_cluster):
        """A site holding a *complete* cached copy of a deleted node
        keeps serving it until refreshed -- the transient inconsistency
        Section 4 explicitly accepts for these applications."""
        block = OAKLAND + (("block", "2"),)
        paper_cluster.query(PREFIX + "/neighborhood[@id='Oakland']",
                            at_site="top")  # caches block 2 fully
        paper_cluster.remove_node(block)
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='2']",
            at_site="top")
        assert len(results) == 1  # stale but served, by design
        # The owner itself is consistent immediately.
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='2']",
            at_site="oak")
        assert results == []

    def test_owner_reflects_removal_immediately(self, paper_cluster):
        block = OAKLAND + (("block", "2"),)
        paper_cluster.remove_node(block)
        results, _, _ = paper_cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='2']",
            at_site="oak")
        assert results == []
