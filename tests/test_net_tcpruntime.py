"""Tests for the TCP runtime: the same system over real sockets."""

import socket
import threading

import pytest

from repro.net import AckMessage, QueryMessage
from repro.net.errors import NetError, UnknownSite
from repro.net.tcpruntime import (
    TcpCluster,
    TcpNetwork,
    TcpSiteServer,
    recv_framed,
    send_framed,
)

from tests.conftest import FIGURE2_QUERY, OAKLAND

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


class TestFraming:
    def _pair(self):
        left, right = socket.socketpair()
        return left, right

    def test_roundtrip(self):
        left, right = self._pair()
        try:
            send_framed(left, "hello <wire/>")
            assert recv_framed(right) == "hello <wire/>"
        finally:
            left.close()
            right.close()

    def test_multiple_frames_in_order(self):
        left, right = self._pair()
        try:
            for index in range(5):
                send_framed(left, f"frame-{index}")
            for index in range(5):
                assert recv_framed(right) == f"frame-{index}"
        finally:
            left.close()
            right.close()

    def test_clean_close_returns_none(self):
        left, right = self._pair()
        left.close()
        try:
            assert recv_framed(right) is None
        finally:
            right.close()

    def test_mid_frame_close_raises(self):
        left, right = self._pair()
        try:
            left.sendall(b"\x00\x00\x00\x10abc")  # promises 16, sends 3
            left.close()
            with pytest.raises(NetError):
                recv_framed(right)
        finally:
            right.close()

    def test_unicode_payload(self):
        left, right = self._pair()
        try:
            send_framed(left, "<a v='éü'/>")
            assert recv_framed(right) == "<a v='éü'/>"
        finally:
            left.close()
            right.close()


@pytest.fixture
def tcp_cluster(paper_doc, paper_plan):
    with TcpCluster(paper_doc, paper_plan) as tcp:
        yield tcp


class TestTcpCluster:
    def test_figure2_query_over_sockets(self, tcp_cluster):
        results, site, outcome = tcp_cluster.cluster.query(FIGURE2_QUERY)
        assert len(results) == 3
        assert outcome.used_remote_data
        # Real bytes crossed the wire.
        assert tcp_cluster.network.traffic.bytes > 0

    def test_query_via_messages_over_sockets(self, tcp_cluster):
        results, _site = tcp_cluster.cluster.query_via_messages(
            FIGURE2_QUERY)
        assert len(results) == 3

    def test_updates_over_sockets(self, tcp_cluster):
        space = OAKLAND + (("block", "1"), ("parkingSpace", "2"))
        sa = tcp_cluster.cluster.add_sensing_agent("sa-tcp", [space])
        sa.network = tcp_cluster.network
        sa.send_update(space, values={"available": "yes"})
        element = tcp_cluster.cluster.database("oak").find(space)
        assert element.child("available").text == "yes"

    def test_migration_over_sockets(self, tcp_cluster):
        block = OAKLAND + (("block", "1"),)
        tcp_cluster.cluster.delegate(block, "etna")
        results, _, _ = tcp_cluster.cluster.query(
            PREFIX + "/neighborhood[@id='Oakland']/block[@id='1']"
            "/parkingSpace[available='yes']")
        assert len(results) == 1

    def test_matches_loopback_answers(self, paper_doc, paper_plan):
        from repro.net import Cluster
        from repro.xmlkit import canonical_form

        loop = Cluster(paper_doc.copy(), paper_plan)
        loop_results, _, _ = loop.query(FIGURE2_QUERY)
        with TcpCluster(paper_doc.copy(), paper_plan) as tcp:
            tcp_results, _, _ = tcp.cluster.query(FIGURE2_QUERY)

        def norm(items):
            out = []
            for item in items:
                clone = item.copy()
                for node in clone.iter():
                    node.delete_attribute("timestamp")
                out.append(canonical_form(clone))
            return sorted(out)

        assert norm(loop_results) == norm(tcp_results)

    def test_concurrent_clients_over_sockets(self, tcp_cluster):
        errors = []
        counts = []

        def client():
            try:
                for _ in range(5):
                    results, _, _ = tcp_cluster.cluster.query(
                        PREFIX + "/neighborhood[@id='Oakland']"
                        "/block[@id='1']")
                    counts.append(len(results))
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert counts == [1] * 20

    def test_unknown_site_raises(self, tcp_cluster):
        with pytest.raises(UnknownSite):
            tcp_cluster.network.request("x", "ghost", QueryMessage("/a"))

    def test_dead_server_raises_oserror(self, paper_doc, paper_plan):
        tcp = TcpCluster(paper_doc, paper_plan)
        tcp.servers["shady"].stop()
        with pytest.raises(OSError):
            tcp.network.request("x", "shady", QueryMessage("/a"))
        tcp.close()


class _AckAgent:
    def handle_message(self, message):
        return AckMessage(message.message_id, ok=True, sender="echo")


@pytest.fixture
def echo_net():
    server = TcpSiteServer(_AckAgent()).start()
    network = TcpNetwork()
    network.register_address("echo", server.address)
    yield network, server
    network.close()
    server.stop()


class TestConnectionPool:
    def test_connection_reused_across_requests(self, echo_net):
        network, _server = echo_net
        for _ in range(3):
            reply = network.request("c", "echo", QueryMessage("/a"))
            assert reply.ok
        assert network.pool_stats["connects"] == 1
        assert network.pool_stats["reuses"] == 2
        assert network.idle_connection_count() == 1

    def test_stale_pooled_connection_evicted_on_checkout(self, echo_net):
        network, _server = echo_net
        network.request("c", "echo", QueryMessage("/a"))
        # The peer drops the pooled connection while it sits idle: the
        # checkout liveness probe sees the half-open socket and evicts
        # it instead of handing it out to fail mid-exchange.
        left, right = socket.socketpair()
        right.close()
        network._idle["echo"].append(left)  # stack: checked out next
        reply = network.request("c", "echo", QueryMessage("/a"))
        assert reply.ok
        assert network.pool_stats["stale_evictions"] >= 1
        assert left.fileno() == -1  # really closed, not pooled again

    def test_idle_pool_bounded(self):
        network = TcpNetwork(max_idle_per_site=2)
        pairs = [socket.socketpair() for _ in range(3)]
        try:
            for left, _right in pairs:
                network._checkin("s", left)
            assert network.idle_connection_count() == 2
            assert network.pool_stats["discarded"] == 1
            assert pairs[2][0].fileno() == -1  # really closed
        finally:
            for left, right in pairs:
                for sock in (left, right):
                    try:
                        sock.close()
                    except OSError:
                        pass
            network.close()

    def test_close_drains_pool_and_discards_late_checkins(self, echo_net):
        network, _server = echo_net
        network.request("c", "echo", QueryMessage("/a"))
        assert network.idle_connection_count() == 1
        network.close()
        assert network.idle_connection_count() == 0
        left, right = socket.socketpair()
        network._checkin("echo", left)
        assert network.idle_connection_count() == 0
        assert left.fileno() == -1
        right.close()

    def test_repeated_cluster_start_stop_leaks_no_sockets(self, paper_doc,
                                                          paper_plan):
        import os

        def open_fds():
            return len(os.listdir("/proc/self/fd"))

        with TcpCluster(paper_doc.copy(), paper_plan) as tcp:
            tcp.cluster.query(PREFIX + "/neighborhood[@id='Oakland']"
                              "/block[@id='1']")
        baseline = open_fds()
        for _ in range(3):
            with TcpCluster(paper_doc.copy(), paper_plan) as tcp:
                tcp.cluster.query(PREFIX + "/neighborhood[@id='Oakland']"
                                  "/block[@id='1']")
        assert open_fds() <= baseline + 2  # no per-run fd growth
