"""Unit tests for partitioning and the invariant checkers."""

import pytest

from repro.core import (
    PartitionError,
    PartitionPlan,
    Status,
    get_status,
    ownership_violations,
    set_status,
    structural_violations,
    validate_deployment,
    violations_against_reference,
)

from tests.conftest import ETNA, OAKLAND, PITTSBURGH, SHADYSIDE, id_path


class TestPartitionPlan:
    def test_owner_map_nearest_ancestor(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
        })
        owners = plan.owner_map(paper_doc)
        assert owners[OAKLAND] == "oak"
        assert owners[OAKLAND + (("block", "1"),)] == "oak"
        assert owners[SHADYSIDE] == "top"
        assert owners[id_path("usRegion=NE")] == "top"

    def test_deeper_assignment_wins(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
            "blk": [OAKLAND + (("block", "1"),)],
        })
        owners = plan.owner_map(paper_doc)
        assert owners[OAKLAND + (("block", "1"),)] == "blk"
        assert owners[OAKLAND + (("block", "1"), ("parkingSpace", "1"))] == \
            "blk"
        assert owners[OAKLAND + (("block", "2"),)] == "oak"

    def test_root_must_be_assigned(self, paper_doc):
        plan = PartitionPlan({"oak": [OAKLAND]})
        with pytest.raises(PartitionError):
            plan.owner_map(paper_doc)

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(PartitionError):
            PartitionPlan({"a": [OAKLAND], "b": [OAKLAND]})

    def test_nonexistent_path_rejected(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "bad": [id_path("usRegion=NE/state=XX")],
        })
        with pytest.raises(PartitionError):
            plan.owner_map(paper_doc)

    def test_dns_records_cover_every_idable_node(self, paper_doc):
        plan = PartitionPlan({"top": [id_path("usRegion=NE")]})
        records = plan.dns_records(paper_doc)
        from repro.core.idable import iter_idable

        assert len(records) == sum(1 for _ in iter_idable(paper_doc))
        assert all(site == "top" for site in records.values())


class TestBuiltDatabases:
    @pytest.fixture
    def deployment(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
            "shady": [SHADYSIDE],
            "etna": [ETNA],
        })
        return plan, plan.owner_map(paper_doc), \
            plan.build_databases(paper_doc)

    def test_every_site_valid(self, deployment, paper_doc):
        _plan, owners, dbs = deployment
        assert validate_deployment(dbs, paper_doc, owners) == []

    def test_i1_each_owned_node_has_local_info(self, deployment):
        _plan, owners, dbs = deployment
        for path, site in owners.items():
            element = dbs[site].find(path)
            assert get_status(element) is Status.OWNED

    def test_i2_ancestor_chain_stored(self, deployment):
        _plan, _owners, dbs = deployment
        oak = dbs["oak"]
        for depth in range(1, len(OAKLAND)):
            ancestor = oak.find(OAKLAND[:depth])
            assert ancestor is not None
            assert get_status(ancestor).has_id_information

    def test_sibling_ids_present_at_ancestors(self, deployment):
        _plan, _owners, dbs = deployment
        # Shadyside's site knows Pittsburgh's other neighborhood IDs (I2).
        city = dbs["shady"].find(PITTSBURGH)
        ids = {c.id for c in city.element_children("neighborhood")}
        assert ids == {"Oakland", "Shadyside"}

    def test_non_owned_content_absent(self, deployment):
        _plan, _owners, dbs = deployment
        shady_at_oak = dbs["oak"].find(SHADYSIDE)
        assert get_status(shady_at_oak) is Status.INCOMPLETE
        assert shady_at_oak.children == []


class TestViolationDetection:
    @pytest.fixture
    def clean_db(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
        })
        return plan.build_databases(paper_doc)["oak"]

    def test_detects_i2_break(self, clean_db):
        # Demote an ancestor below id-complete while keeping descendants.
        city = clean_db.find(PITTSBURGH)
        set_status(city, Status.INCOMPLETE)
        problems = structural_violations(clean_db)
        assert any("I2" in p for p in problems)

    def test_detects_fat_stub(self, clean_db):
        shady = clean_db.find(SHADYSIDE)
        shady.set("zipcode", "15232")  # an incomplete node with content
        problems = structural_violations(clean_db)
        assert any("bare stub" in p for p in problems)

    def test_detects_missing_timestamp(self, clean_db):
        clean_db.find(OAKLAND).delete_attribute("timestamp")
        problems = structural_violations(clean_db)
        assert any("timestamp" in p for p in problems)

    def test_detects_content_divergence(self, clean_db, paper_doc):
        clean_db.find(OAKLAND).set("zipcode", "00000")
        problems = violations_against_reference(clean_db, paper_doc)
        assert any("local information differs" in p for p in problems)

    def test_detects_wrong_child_ids(self, clean_db, paper_doc):
        city = clean_db.find(PITTSBURGH)
        city.remove(clean_db.find(SHADYSIDE))
        problems = violations_against_reference(clean_db, paper_doc)
        assert any("child IDs differ" in p for p in problems)

    def test_ownership_violations(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
        })
        owners = plan.owner_map(paper_doc)
        dbs = plan.build_databases(paper_doc)
        dbs["oak"].release_ownership(OAKLAND)
        problems = ownership_violations(dbs, owners)
        assert any("I1" in p for p in problems)

    def test_foreign_owned_detected(self, paper_doc):
        plan = PartitionPlan({
            "top": [id_path("usRegion=NE")],
            "oak": [OAKLAND],
        })
        owners = plan.owner_map(paper_doc)
        dbs = plan.build_databases(paper_doc)
        # "oak" suddenly claims Shadyside (a bare stub) as owned.
        set_status(dbs["oak"].find(SHADYSIDE), Status.OWNED)
        problems = ownership_violations(dbs, owners)
        assert any("owner map says" in p for p in problems)
