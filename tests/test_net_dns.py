"""Unit tests for the DNS substrate."""

import pytest

from repro.net import DnsResolver, DnsServer, NameNotFound


@pytest.fixture
def server():
    server = DnsServer(service="parking", zone="intel-iris.net")
    server.register_id_path(
        [("usRegion", "NE"), ("state", "PA")], "site-1")
    return server


class TestServer:
    def test_name_for_matches_paper_format(self, server):
        assert server.name_for([("usRegion", "NE"), ("state", "PA")]) == \
            "pa.ne.parking.intel-iris.net"

    def test_register_and_lookup(self, server):
        record = server.lookup("pa.ne.parking.intel-iris.net")
        assert record.site == "site-1"
        assert record.version == 0

    def test_missing_name_raises(self, server):
        with pytest.raises(NameNotFound):
            server.lookup("nowhere.parking.intel-iris.net")

    def test_update_bumps_version(self, server):
        server.update("pa.ne.parking.intel-iris.net", "site-2")
        record = server.lookup("pa.ne.parking.intel-iris.net")
        assert record.site == "site-2"
        assert record.version == 1

    def test_update_requires_existing(self, server):
        with pytest.raises(NameNotFound):
            server.update("ghost.parking.intel-iris.net", "x")

    def test_reregister_replaces(self, server):
        server.register("pa.ne.parking.intel-iris.net", "site-9")
        assert server.lookup("pa.ne.parking.intel-iris.net").site == "site-9"

    def test_remove(self, server):
        server.remove("pa.ne.parking.intel-iris.net")
        with pytest.raises(NameNotFound):
            server.lookup("pa.ne.parking.intel-iris.net")


class TestResolver:
    def test_miss_then_hit(self, server, settable_clock):
        resolver = DnsResolver(server, clock=settable_clock, ttl=60)
        site, hops = resolver.resolve("pa.ne.parking.intel-iris.net")
        assert site == "site-1" and hops == resolver.miss_hops
        site, hops = resolver.resolve("pa.ne.parking.intel-iris.net")
        assert site == "site-1" and hops == 0
        assert resolver.stats == {"hits": 1, "misses": 1, "evictions": 0,
                                  "invalidations": 0}

    def test_ttl_expiry_refetches(self, server, settable_clock):
        resolver = DnsResolver(server, clock=settable_clock, ttl=30)
        resolver.resolve("pa.ne.parking.intel-iris.net")
        settable_clock.advance(31)
        _site, hops = resolver.resolve("pa.ne.parking.intel-iris.net")
        assert hops == resolver.miss_hops

    def test_stale_cache_until_expiry(self, server, settable_clock):
        """The paper's migration story: cached entries keep pointing at
        the old owner until they expire or are invalidated."""
        resolver = DnsResolver(server, clock=settable_clock, ttl=60)
        resolver.resolve("pa.ne.parking.intel-iris.net")
        server.update("pa.ne.parking.intel-iris.net", "site-2")
        site, _ = resolver.resolve("pa.ne.parking.intel-iris.net")
        assert site == "site-1"  # stale, served from cache
        resolver.invalidate("pa.ne.parking.intel-iris.net")
        site, _ = resolver.resolve("pa.ne.parking.intel-iris.net")
        assert site == "site-2"

    def test_invalidate_all(self, server, settable_clock):
        resolver = DnsResolver(server, clock=settable_clock)
        resolver.resolve("pa.ne.parking.intel-iris.net")
        resolver.invalidate()
        _site, hops = resolver.resolve("pa.ne.parking.intel-iris.net")
        assert hops == resolver.miss_hops

    def test_resolve_id_path(self, server, settable_clock):
        resolver = DnsResolver(server, clock=settable_clock)
        site, _ = resolver.resolve_id_path(
            [("usRegion", "NE"), ("state", "PA")])
        assert site == "site-1"


class TestResolverLRU:
    def _populated(self, server, count):
        for index in range(count):
            server.register(f"n{index}.parking.intel-iris.net",
                            f"site-{index}")

    def test_cache_bounded_with_eviction_counter(self, server,
                                                 settable_clock):
        self._populated(server, 10)
        resolver = DnsResolver(server, clock=settable_clock, ttl=60,
                               max_entries=4)
        for index in range(10):
            resolver.resolve(f"n{index}.parking.intel-iris.net")
        assert len(resolver._cache) == 4
        assert resolver.stats["evictions"] == 6
        assert resolver.stats["misses"] == 10

    def test_lru_keeps_recently_used_entries(self, server, settable_clock):
        self._populated(server, 3)
        resolver = DnsResolver(server, clock=settable_clock, ttl=60,
                               max_entries=2)
        resolver.resolve("n0.parking.intel-iris.net")
        resolver.resolve("n1.parking.intel-iris.net")
        resolver.resolve("n0.parking.intel-iris.net")  # n0 now hottest
        resolver.resolve("n2.parking.intel-iris.net")  # evicts n1
        _site, hops = resolver.resolve("n0.parking.intel-iris.net")
        assert hops == 0  # still cached
        _site, hops = resolver.resolve("n1.parking.intel-iris.net")
        assert hops == resolver.miss_hops  # was evicted
