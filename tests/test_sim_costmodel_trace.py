"""Unit tests for the cost model, tracing and the simulated cluster."""

import pytest

from repro.arch import hierarchical
from repro.net import QueryMessage
from repro.service import ParkingConfig, QueryWorkload, build_parking_document
from repro.sim import CostModel, SimulatedCluster, TracingNetwork


class TestCostModel:
    def test_fast_codegen_cheaper(self):
        model = CostModel()
        assert model.codegen(fast=True) < model.codegen(fast=False)

    def test_execution_grows_sublinearly(self):
        model = CostModel()
        base = model.execute(model.execute_reference_nodes)
        eight_x = model.execute(model.execute_reference_nodes * 8)
        assert base < eight_x < base * 1.25  # <25% growth for 8x data

    def test_breakdown_sums_to_service(self):
        model = CostModel()
        breakdown = model.breakdown(5000, fast=True, messages=4)
        assert sum(breakdown.values()) == pytest.approx(
            model.query_service(5000, fast=True, messages=4))

    def test_paper_magnitudes(self):
        """Naive creation dominates; fast creation saves > 50% total."""
        model = CostModel()
        naive_total = model.query_service(model.execute_reference_nodes,
                                          fast=False)
        fast_total = model.query_service(model.execute_reference_nodes,
                                         fast=True)
        assert model.codegen_naive > naive_total / 2
        assert fast_total < naive_total / 2

    def test_round_latency_unbounded_is_max(self):
        model = CostModel(fanout_width=0)
        assert model.round_latency([0.1, 0.4, 0.2]) == pytest.approx(0.4)
        assert model.round_latency([]) == 0.0

    def test_round_latency_bounded_runs_in_waves(self):
        model = CostModel(fanout_width=2)
        # Waves: [0.1, 0.4] -> 0.4, [0.2, 0.3] -> 0.3, [0.5] -> 0.5
        assert model.round_latency([0.1, 0.4, 0.2, 0.3, 0.5]) == \
            pytest.approx(0.4 + 0.3 + 0.5)

    def test_round_latency_width_one_is_sequential(self):
        model = CostModel(fanout_width=1)
        assert model.round_latency([0.1, 0.4, 0.2]) == pytest.approx(0.7)

    def test_update_rate_near_200_per_second(self):
        """Section 5.2: a single OA handles about 200 updates/s."""
        model = CostModel()
        assert 100 <= 1.0 / model.update_cost <= 400

    def test_calibrated_measures_engine(self):
        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        from repro.service import type1_query

        model = CostModel.calibrated(
            document=document,
            query=type1_query(config, "Pittsburgh", "Oakland", "1"),
            repetitions=2)
        assert model.codegen_fast < model.codegen_naive
        assert model.execute_base > 0


class TestTracing:
    def test_trace_tree_mirrors_rpc_tree(self, paper_cluster):
        network = TracingNetwork()
        for site, agent in paper_cluster.agents.items():
            agent.network = network
            network.register(site, agent)
        paper_cluster.network = network

        agent = paper_cluster.agent("top")
        (_results, _outcome), trace = network.capture(
            "top", "query",
            lambda: agent.answer_user_query(
                "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
                "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
                "/block[@id='1']"),
        )
        assert trace.site == "top"
        assert [c.site for c in trace.children] == ["oak"]
        assert trace.total_calls() == 2
        assert trace.sites_touched() == {"top", "oak"}

    def test_messages_counted(self, paper_cluster):
        network = TracingNetwork()
        for site, agent in paper_cluster.agents.items():
            agent.network = network
            network.register(site, agent)
        reply = network.request("client", "top",
                                QueryMessage("/usRegion[@id='NE']",
                                             user=True))
        assert reply is not None


class TestSimulatedCluster:
    @pytest.fixture
    def sim(self):
        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        return config, SimulatedCluster(document, hierarchical(config),
                                        cost_model=CostModel())

    def test_run_produces_throughput(self, sim):
        config, sim_cluster = sim
        workload = QueryWorkload.qw(config, 1, seed=3)
        metrics = sim_cluster.run(workload, n_clients=4, duration=10,
                                  warmup=2)
        assert metrics.completed > 0
        assert metrics.throughput > 0
        assert metrics.mean_latency > 0

    def test_closed_loop_latency_tracks_load(self, sim):
        config, _ = sim
        document = build_parking_document(config)
        light = SimulatedCluster(document.copy(), hierarchical(config))
        heavy = SimulatedCluster(document.copy(), hierarchical(config))
        m_light = light.run(QueryWorkload.qw(config, 1, seed=3),
                            n_clients=1, duration=10, warmup=2)
        m_heavy = heavy.run(QueryWorkload.qw(config, 1, seed=3),
                            n_clients=16, duration=10, warmup=2)
        assert m_heavy.mean_latency > m_light.mean_latency

    def test_utilizations_reported(self, sim):
        config, sim_cluster = sim
        workload = QueryWorkload.qw(config, 1, seed=3)
        sim_cluster.run(workload, n_clients=4, duration=5, warmup=1)
        utils = sim_cluster.utilizations(6.0)
        assert set(utils) == set(sim_cluster.cluster.sites)
        assert any(u > 0 for u in utils.values())

    def test_metrics_by_type(self, sim):
        config, sim_cluster = sim
        workload = QueryWorkload.qw_mix(config, seed=5)
        metrics = sim_cluster.run(workload, n_clients=4, duration=10,
                                  warmup=2)
        assert set(metrics.completed_by_type) <= {1, 2, 3, 4}

    def test_throughput_trace_bins(self, sim):
        config, sim_cluster = sim
        workload = QueryWorkload.qw(config, 1, seed=3)
        metrics = sim_cluster.run(workload, n_clients=4, duration=10,
                                  warmup=0)
        trace = metrics.throughput_trace(bin_seconds=2.0)
        assert len(trace) >= 4
        assert sum(count for _t, count in trace) == metrics.completed
