"""Unit tests for query-based consistency helpers."""

from repro.core import (
    extract_tolerance,
    has_consistency_predicates,
    rewrite_consistency_sugar,
    strip_consistency_predicates,
    tolerance_predicate,
    transform_expression,
)
from repro.xpath import parse


class TestSugar:
    def test_paper_syntax_rewritten(self):
        """The paper's [timestamp > now - 30] becomes function calls."""
        ast = rewrite_consistency_sugar(parse("/a[timestamp > now - 30]"))
        assert ast.unparse() == "/a[timestamp() > current-time() - 30]"

    def test_reversed_comparison(self):
        ast = rewrite_consistency_sugar(parse("/a[now - 30 < timestamp]"))
        assert "current-time()" in ast.unparse()
        assert "timestamp()" in ast.unparse()

    def test_genuine_timestamp_element_untouched(self):
        # A multi-step path is not the sugar form.
        ast = rewrite_consistency_sugar(parse("/a[./log/timestamp = '5']"))
        assert "timestamp()" not in ast.unparse()

    def test_non_comparison_context_untouched(self):
        ast = rewrite_consistency_sugar(parse("/a/timestamp"))
        assert ast.unparse() == "/a/timestamp"


class TestStrip:
    def test_strips_pure_consistency_predicate(self):
        ast = strip_consistency_predicates(
            parse("/a[@id='1'][timestamp() > current-time() - 30]/b"))
        assert ast.unparse() == "/a[@id = '1']/b"

    def test_strips_conjunct_only(self):
        ast = strip_consistency_predicates(
            parse("/a[@id='1' and timestamp() > current-time() - 30]"))
        assert ast.unparse() == "/a[@id = '1']"

    def test_keeps_everything_else(self):
        source = "/a[@id = '1'][price > 5]/b"
        assert strip_consistency_predicates(parse(source)).unparse() == source

    def test_nested_paths_processed(self):
        ast = strip_consistency_predicates(
            parse("/a[./b[timestamp() > current-time() - 5]]"))
        assert "current-time" not in ast.unparse()


class TestDetection:
    def test_has_consistency(self):
        assert has_consistency_predicates(
            parse("/a[timestamp() > current-time() - 30]"))
        assert not has_consistency_predicates(parse("/a[@id='1'][b > 2]"))

    def test_tolerance_extraction(self):
        predicate = parse(
            "/a[timestamp() > current-time() - 45]").steps[0].predicates[0]
        assert extract_tolerance(predicate) == 45.0

    def test_tolerance_mirrored(self):
        predicate = parse(
            "/a[current-time() - 45 < timestamp()]").steps[0].predicates[0]
        assert extract_tolerance(predicate) == 45.0

    def test_tolerance_none_for_other_shapes(self):
        predicate = parse("/a[timestamp() > 99]").steps[0].predicates[0]
        assert extract_tolerance(predicate) is None

    def test_tolerance_predicate_roundtrip(self):
        built = tolerance_predicate(30)
        assert extract_tolerance(built) == 30.0
        assert built.unparse() == "timestamp() > current-time() - 30"


class TestTransform:
    def test_identity_transform_preserves(self):
        source = "/a[@id = '1'][count(b) > 2]/c"
        ast = transform_expression(parse(source), lambda n: n)
        assert ast.unparse() == source

    def test_input_not_mutated(self):
        original = parse("/a[timestamp > now - 30]")
        before = original.unparse()
        rewrite_consistency_sugar(original)
        assert original.unparse() == before
