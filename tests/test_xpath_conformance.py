"""Table-driven XPath 1.0 conformance battery (unordered fragment).

Each case is evaluated against a fixed reference document and compared
to a hand-computed expectation, covering the function library and
operator semantics case by case.
"""

import math

import pytest

from repro.xmlkit import parse_fragment
from repro.xpath import compile_xpath

DOCUMENT = """
<library id='L' open='yes'>
  <shelf id='s1' floor='1'>
    <book id='b1' year='1999'><title>Alpha</title><pages>100</pages></book>
    <book id='b2' year='2003'><title>Beta</title><pages>250</pages></book>
    <empty-note></empty-note>
  </shelf>
  <shelf id='s2' floor='2'>
    <book id='b3' year='2003'><title>Gamma</title><pages>50</pages></book>
  </shelf>
  <motto>  read   more  </motto>
</library>
"""


@pytest.fixture(scope="module")
def doc():
    return parse_fragment(DOCUMENT)


# (query, expected) where expected is a scalar, or a sorted list of
# selected element/attribute identities rendered as strings.
SCALAR_CASES = [
    # Node-set cardinalities
    ("count(//book)", 3.0),
    ("count(/library/shelf)", 2.0),
    ("count(//book[@year='2003'])", 2.0),
    ("count(//book/ancestor::shelf)", 2.0),
    ("count(//book/ancestor-or-self::*)", 6.0),  # 3 books + 2 shelves + library
    ("count(//@floor)", 2.0),
    ("count(//*)", 14.0),
    ("count(/library/motto/text())", 1.0),
    # Booleans
    ("boolean(//book)", True),
    ("boolean(//dvd)", False),
    ("count(//book[title]) = 3", True),
    ("//book/pages > 200", True),
    ("//book/pages < 40", False),
    ("//book/@year = '1999'", True),
    ("//book/@year != '1999'", True),  # existential over 3 books
    ("not(//book[@year='2050'])", True),
    ("true() and not(false())", True),
    ("1 < 2 and 2 < 3 or false()", True),
    # String functions
    ("string(//book[@id='b1']/title)", "Alpha"),
    ("string(//missing)", ""),
    ("concat('a', 1, true())", "a1true"),
    ("starts-with(string(//motto), 'read')", True),  # parser strips padding
    ("normalize-space(string(/library/motto))", "read more"),
    ("contains(string(//book[@id='b2']/title), 'et')", True),
    ("substring-before('2003-06-09', '-')", "2003"),
    ("substring-after('2003-06-09', '-')", "06-09"),
    ("substring('SIGMOD', 4)", "MOD"),
    ("substring('SIGMOD', 0, 3)", "SI"),
    ("string-length(string(//book[@id='b3']/title))", 5.0),
    ("translate('sigmod', 'dgimos', 'DGIMOS')", "SIGMOD"),
    ("string(123.5)", "123.5"),
    ("string(8)", "8"),
    # Numbers
    ("number('12')", 12.0),
    ("number(true())", 1.0),
    ("sum(//book/pages)", 400.0),
    ("sum(//book/@year)", 6005.0),
    ("floor(-1.5)", -2.0),
    ("ceiling(-1.5)", -1.0),
    ("round(0.5)", 1.0),
    ("round(-0.5)", -0.0),
    ("round(2.4)", 2.0),
    ("3 * 4 + 2", 14.0),
    ("3 + 4 * 2", 11.0),
    ("(3 + 4) * 2", 14.0),
    ("9 mod 4", 1.0),
    ("-9 mod 4", -1.0),
    ("9 div 4", 2.25),
    ("number(//book[@id='b1']/pages) + 1", 101.0),
    # Names
    ("name(/library)", "library"),
    ("local-name(//shelf[@id='s2'])", "shelf"),
    ("name(//@floor)", "floor"),
    # Comparisons between node-sets
    ("//book/pages = //book/@year", False),
    ("//shelf/@floor = '2'", True),
    ("count(//book[pages > 75]) = 2", True),
]


@pytest.mark.parametrize("query,expected", SCALAR_CASES,
                         ids=[c[0] for c in SCALAR_CASES])
def test_scalar_conformance(doc, query, expected):
    value = compile_xpath(query).evaluate(doc)
    if isinstance(expected, float):
        assert isinstance(value, float)
        assert value == pytest.approx(expected)
    else:
        assert value == expected


SELECTION_CASES = [
    ("/library/shelf/book", ["b1", "b2", "b3"]),
    ("//book[@year='2003']", ["b2", "b3"]),
    ("//shelf[book/@year='1999']", ["s1"]),
    ("//book[pages >= 100][pages <= 250]", ["b1", "b2"]),
    ("//book[not(pages > 99)]", ["b3"]),
    ("//shelf[@floor='2']/book", ["b3"]),
    ("//book[../@floor='1']", ["b1", "b2"]),
    ("//book[title='Gamma' or title='Alpha']", ["b1", "b3"]),
    ("/library/*[@floor]", ["s1", "s2"]),
    ("//book[string-length(title) = 4]", ["b2"]),
    ("//book[contains(title, 'a')]", ["b1", "b2", "b3"]),
    ("//book[count(../book) = 2]", ["b1", "b2"]),
    ("//book[../../@open='yes']", ["b1", "b2", "b3"]),
    ("//shelf[count(book[pages > 75]) = 2]", ["s1"]),
    ("//book[pages mod 50 = 0]", ["b1", "b2", "b3"]),
    ("//book[sum(../book/pages) > 300]", ["b1", "b2"]),
    ("/library/shelf[2 > 1]/book[@id='b3']", ["b3"]),
    ("//book[@id='b1']/following-none | //book[@id='b1']", ["b1"]),
]


@pytest.mark.parametrize("query,expected", SELECTION_CASES,
                         ids=[c[0] for c in SELECTION_CASES])
def test_selection_conformance(doc, query, expected):
    result = compile_xpath(query).select(doc)
    assert sorted(n.id for n in result) == expected


NAN_CASES = [
    "number('abc')",
    "number(//missing)",
    "sum(//book/title) + 0",  # titles are not numbers
    "0 div 0",
    "0 mod 0",
]


@pytest.mark.parametrize("query", NAN_CASES)
def test_nan_conformance(doc, query):
    assert math.isnan(compile_xpath(query).evaluate(doc))
