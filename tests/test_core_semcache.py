"""The semantic query cache: canonical keys, buckets, admission, prewarm.

Covers the pieces in ``repro.core.semcache`` in isolation (the
canonicalizer, the freshness buckets, the measured LRU, the query log)
and their integration points: the QEG compile cache keyed by canonical
form, bucketed wire subqueries with serve-time escalation, prewarming
a cold cluster, and the EXPLAIN cache section.
"""

import random

import pytest

from repro.core.qeg import compile_pattern, pattern_key_stats
from repro.core.semcache import (
    ADMIT_SECOND_CHANCE,
    FreshnessBuckets,
    QueryLog,
    SemanticCache,
    SemanticCacheConfig,
    canonical_key,
    canonicalize,
    estimate_bytes,
    prewarm,
)
from repro.net import Cluster, OAConfig

from tests.conftest import FIGURE2_QUERY

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
          "/city[@id='Pittsburgh']")


# ----------------------------------------------------------------------
# Canonicalizer
# ----------------------------------------------------------------------
class TestCanonicalizer:
    def test_whitespace_jitter_shares_key(self):
        tight = f"count({PREFIX}//parkingSpace[available='yes'])"
        spaced = (f"count( {PREFIX}//parkingSpace[ available = 'yes' ] )")
        assert canonical_key(tight) == canonical_key(spaced)

    def test_predicate_order_shares_key(self):
        a = PREFIX + "//parkingSpace[available='yes'][price='0']"
        b = PREFIX + "//parkingSpace[price='0'][available='yes']"
        assert canonical_key(a) == canonical_key(b)

    def test_duplicate_predicates_collapse(self):
        once = PREFIX + "//parkingSpace[available='yes']"
        twice = PREFIX + "//parkingSpace[available='yes'][available='yes']"
        assert canonical_key(once) == canonical_key(twice)

    def test_literal_flipped_equality_shares_key(self):
        conventional = PREFIX + "//parkingSpace[available='yes']"
        yoda = PREFIX + "//parkingSpace['yes'=available]"
        assert canonical_key(conventional) == canonical_key(yoda)

    def test_mirrored_comparison_shares_key(self):
        lt = PREFIX + "//parkingSpace[price < 30]"
        gt = PREFIX + "//parkingSpace[30 > price]"
        assert canonical_key(lt) == canonical_key(gt)

    def test_or_chain_commutes(self):
        a = PREFIX + "/neighborhood[@id='Oakland' or @id='Shadyside']"
        b = PREFIX + "/neighborhood[@id='Shadyside' or @id='Oakland']"
        assert canonical_key(a) == canonical_key(b)

    def test_consistency_sugar_shares_key(self):
        sugar = (PREFIX + "/neighborhood[@id='Oakland']"
                 "[timestamp > now - 30]")
        explicit = (PREFIX + "/neighborhood[@id='Oakland']"
                    "[timestamp() > current-time() - 30]")
        assert canonical_key(sugar) == canonical_key(explicit)

    def test_canonicalization_is_idempotent(self):
        for query in (
            FIGURE2_QUERY,
            f"count({PREFIX}//parkingSpace[ 'yes' = available ])",
            PREFIX + "/neighborhood[@id='Oakland'][timestamp > now - 28]",
        ):
            once = canonical_key(query)
            assert canonical_key(once) == once

    def test_distinct_queries_keep_distinct_keys(self):
        a = PREFIX + "//parkingSpace[available='yes']"
        b = PREFIX + "//parkingSpace[available='no']"
        assert canonical_key(a) != canonical_key(b)

    def test_ast_input_accepted(self):
        from repro.xpath import parser

        ast = parser.parse(FIGURE2_QUERY)
        assert canonicalize(ast).key == canonical_key(FIGURE2_QUERY)


# ----------------------------------------------------------------------
# Freshness buckets
# ----------------------------------------------------------------------
class TestFreshnessBuckets:
    def test_rounds_up_to_boundary(self):
        buckets = FreshnessBuckets()
        assert buckets.ceiling(28) == 30.0
        assert buckets.ceiling(30) == 30.0
        assert buckets.ceiling(31) == 60.0
        assert buckets.ceiling(1) == 5.0

    def test_above_largest_boundary_unchanged(self):
        buckets = FreshnessBuckets()
        assert buckets.ceiling(1e6) == 1e6

    def test_nonpositive_unchanged(self):
        buckets = FreshnessBuckets()
        assert buckets.ceiling(0) == 0
        assert buckets.ceiling(-5) == -5
        assert buckets.ceiling(None) is None

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            FreshnessBuckets([])
        with pytest.raises(ValueError):
            FreshnessBuckets([10, -1])

    def test_jittered_tolerances_share_bucket_key(self):
        tight = (PREFIX + "/neighborhood[@id='Oakland']"
                 "[timestamp > now - 28]")
        loose = (PREFIX + "/neighborhood[@id='Oakland']"
                 "[timestamp > now - 30]")
        tight_canon = canonicalize(tight)
        loose_canon = canonicalize(loose)
        assert tight_canon.key != loose_canon.key
        assert tight_canon.bucket_key == loose_canon.bucket_key
        assert tight_canon.bucketed
        assert not loose_canon.bucketed  # already on the boundary
        assert tight_canon.min_tolerance == 28
        assert tight_canon.tolerances == ((28.0, 30.0),)

    def test_unbucketed_query_has_equal_keys(self):
        canon = canonicalize(FIGURE2_QUERY)
        assert canon.key == canon.bucket_key
        assert not canon.bucketed
        assert canon.min_tolerance is None


# ----------------------------------------------------------------------
# The measured cache
# ----------------------------------------------------------------------
class TestSemanticCache:
    def test_store_then_hit(self):
        cache = SemanticCache()
        cache.store("k", 42, now=100.0)
        entry = cache.lookup("k", now=110.0, max_age=30)
        assert entry.value == 42
        assert cache.stats["hits"] == 1
        assert entry.hits == 1

    def test_none_max_age_never_hits(self):
        cache = SemanticCache()
        cache.store("k", 42, now=100.0)
        assert cache.lookup("k", now=100.0) is None
        assert cache.stats["misses"] == 1

    def test_stale_entry_rejected(self):
        cache = SemanticCache()
        cache.store("k", 42, now=100.0)
        assert cache.lookup("k", now=200.0, max_age=30) is None
        assert cache.stats["stale_rejects"] == 1

    def test_coalesced_hit_counted_on_exact_key_mismatch(self):
        cache = SemanticCache()
        cache.store("bucket", 1, now=0.0, exact_key="spelling-a")
        cache.lookup("bucket", now=1.0, max_age=30, exact_key="spelling-a")
        assert cache.stats["bucket_coalesced_hits"] == 0
        cache.lookup("bucket", now=1.0, max_age=30, exact_key="spelling-b")
        assert cache.stats["bucket_coalesced_hits"] == 1

    def test_tolerance_slack_charged_against_allowed_age(self):
        # Entry produced under a 30s bound; a caller demanding 28s has
        # the 2s slack deducted, so at age 29 with max_age 30 it still
        # misses -- the subsumption check.
        cache = SemanticCache()
        cache.store("bucket", 1, now=0.0, tolerance=30)
        assert cache.lookup("bucket", now=29.0, max_age=30,
                            tolerance=28) is None
        assert cache.stats["stale_rejects"] == 1
        entry = cache.lookup("bucket", now=27.0, max_age=30, tolerance=28)
        assert entry is not None

    def test_lru_eviction_by_entry_budget(self):
        cache = SemanticCache(SemanticCacheConfig(max_entries=2))
        cache.store("a", 1, now=0.0)
        cache.store("b", 2, now=0.0)
        cache.lookup("a", now=0.0, max_age=10)  # touch a; b is now LRU
        cache.store("c", 3, now=0.0)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats["evictions"] == 1

    def test_eviction_by_byte_budget(self):
        cache = SemanticCache(SemanticCacheConfig(max_bytes=100))
        cache.store("a", 1, now=0.0, nbytes=60)
        cache.store("b", 2, now=0.0, nbytes=60)
        assert "a" not in cache and "b" in cache
        assert cache.nbytes <= 100
        assert cache.stats["evicted_bytes"] == 60

    def test_restore_replaces_bytes_not_duplicates(self):
        cache = SemanticCache()
        cache.store("k", 1, now=0.0, nbytes=50)
        cache.store("k", 2, now=1.0, nbytes=70)
        assert len(cache) == 1
        assert cache.nbytes == 70

    def test_peek_does_not_touch_counters_or_order(self):
        cache = SemanticCache(SemanticCacheConfig(max_entries=2))
        cache.store("a", 1, now=0.0)
        cache.store("b", 2, now=0.0)
        assert cache.peek("a").value == 1
        assert cache.stats["hits"] == 0
        cache.store("c", 3, now=0.0)  # peek did not promote a
        assert "a" not in cache

    def test_invalidate(self):
        cache = SemanticCache()
        cache.store("a", 1, now=0.0)
        cache.store("b", 2, now=0.0)
        cache.invalidate("a")
        assert "a" not in cache and "b" in cache
        cache.invalidate()
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_metrics_snapshot(self):
        cache = SemanticCache()
        cache.store("a", 1, now=0.0)
        cache.lookup("a", now=0.0, max_age=10)
        metrics = cache.metrics()
        assert metrics["entries"] == 1
        assert metrics["hits"] == 1
        assert metrics["bytes"] == cache.nbytes

    def test_estimate_bytes_shapes(self):
        assert estimate_bytes("abcd") == 4
        assert estimate_bytes(17) == 8
        assert estimate_bytes([1, 2]) == 24
        assert estimate_bytes(None) == 1


class TestSecondChanceAdmission:
    def _cache(self, **overrides):
        config = SemanticCacheConfig(admission=ADMIT_SECOND_CHANCE,
                                     **overrides)
        return SemanticCache(config)

    def test_first_sighting_rejected_second_admitted(self):
        cache = self._cache()
        assert cache.store("k", 1, now=0.0) is None
        assert cache.stats["admission_rejects"] == 1
        assert cache.store("k", 1, now=1.0) is not None
        assert "k" in cache

    def test_refresh_of_resident_entry_always_admitted(self):
        cache = self._cache()
        cache.store("k", 1, now=0.0)
        cache.store("k", 1, now=1.0)
        assert cache.store("k", 2, now=2.0) is not None
        assert cache.peek("k").value == 2

    def test_ghost_window_bounded(self):
        cache = self._cache(ghost_entries=4)
        for i in range(10):
            cache.store(f"one-shot-{i}", i, now=0.0)
        assert cache.metrics()["ghost_entries"] <= 4
        # key 0 fell out of the ghost window: still treated as new
        assert cache.store("one-shot-0", 0, now=1.0) is None

    def test_hot_keys_survive_skewed_one_shot_churn(self):
        """Fig 8-style skew: a few hot queries, a long tail of one-shots.

        Under second-chance admission the one-shot tail never enters
        the cache, so the hot working set is never evicted by churn.
        """
        cache = self._cache(max_entries=8)
        rng = random.Random(4242)
        hot = [f"hot-{i}" for i in range(4)]
        cold_serial = 0
        for _ in range(500):
            if rng.random() < 0.5:
                key = rng.choice(hot)
            else:
                key = f"cold-{cold_serial}"
                cold_serial += 1
            if cache.lookup(key, now=0.0, max_age=1e9) is None:
                cache.store(key, key, now=0.0)
        for key in hot:
            assert key in cache, "hot key evicted by one-shot churn"
        assert all(not key.startswith("cold-") for key in cache.keys())
        assert cache.stats["evictions"] == 0
        assert cache.stats["admission_rejects"] > 100


# ----------------------------------------------------------------------
# Compile-cache aliasing
# ----------------------------------------------------------------------
class TestCompileKeying:
    def test_jittered_spellings_share_compiled_pattern(self, paper_schema):
        a = PREFIX + "//parkingSpace[available='yes'][price='0']"
        b = PREFIX + "//parkingSpace[price='0'][ available = 'yes' ]"
        before = pattern_key_stats()["canonical_aliases"]
        pattern_a = compile_pattern(a, schema=paper_schema)
        pattern_b = compile_pattern(b, schema=paper_schema)
        assert pattern_a is pattern_b
        assert pattern_key_stats()["canonical_aliases"] == before + 1

    def test_raw_key_fast_path_after_alias(self, paper_schema):
        query = PREFIX + "//parkingSpace[ price = '0' ]"
        first = compile_pattern(query, schema=paper_schema)
        stats_before = dict(pattern_key_stats())
        again = compile_pattern(query, schema=paper_schema)
        assert again is first
        # The repeat came from the raw-string fast path: no new alias.
        assert pattern_key_stats() == stats_before

    def test_sugar_disabled_skips_canonicalization(self, paper_schema):
        a = PREFIX + "//parkingSpace[available='yes'][price='0']"
        b = PREFIX + "//parkingSpace[price='0'][available='yes']"
        pattern_a = compile_pattern(a, schema=paper_schema,
                                    rewrite_sugar=False)
        pattern_b = compile_pattern(b, schema=paper_schema,
                                    rewrite_sugar=False)
        assert pattern_a is not pattern_b


# ----------------------------------------------------------------------
# Query log and prewarming
# ----------------------------------------------------------------------
class TestQueryLog:
    def test_record_and_iterate(self):
        log = QueryLog()
        log.record(FIGURE2_QUERY, query_type=1, site="top")
        log.record("count(/a/b)")
        assert len(log) == 2
        entries = list(log)
        assert entries[0] == {"query": FIGURE2_QUERY, "type": 1,
                              "site": "top"}
        assert entries[1] == {"query": "count(/a/b)"}

    def test_bounded(self):
        log = QueryLog(max_records=3)
        for i in range(10):
            log.record(f"/q{i}")
        assert len(log) == 3
        assert [e["query"] for e in log] == ["/q7", "/q8", "/q9"]

    def test_save_load_roundtrip(self, tmp_path):
        log = QueryLog()
        log.record(FIGURE2_QUERY, query_type=2)
        log.record("count(/a)", site="oak")
        path = tmp_path / "queries.jsonl"
        assert log.save(path) == 2
        loaded = QueryLog.load(path)
        assert list(loaded) == list(log)

    def test_unique_queries_dedupe_by_canonical_key(self):
        log = QueryLog()
        log.record(PREFIX + "//parkingSpace[available='yes'][price='0']")
        log.record(PREFIX + "//parkingSpace[price='0'][available='yes']")
        log.record(PREFIX + "//parkingSpace[ available = 'yes' ]")
        unique = log.unique_queries()
        assert len(unique) == 2
        # first spelling wins
        assert unique[0]["query"].endswith("[available='yes'][price='0']")


class TestPrewarm:
    def test_prewarm_fills_caches_from_log(self, paper_cluster):
        warmable = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
        log = QueryLog()
        log.record(warmable)
        log.record(f"count({PREFIX}//parkingSpace[available='yes'])")
        report = prewarm(paper_cluster, log)
        # Each query warmed its own LCA site, as live routing would.
        assert report == {
            "replayed": 2, "failures": 0, "unique": 2,
            "by_site": {"shady": 1, "top": 1},
        }
        agent = paper_cluster.agent("shady")
        assert agent.driver.stats["prewarm_queries"] == 1
        assert paper_cluster.agent("top").driver.stats[
            "prewarm_queries"] == 1
        # The warmed site serves the logged query from cache: re-asking
        # (routed to the same LCA) sends nothing new over the wire.
        sent = agent.stats["subqueries_sent"]
        paper_cluster.query(warmable)
        assert agent.stats["subqueries_sent"] == sent

    def test_prewarm_deduplicates_jittered_spellings(self, paper_cluster):
        queries = [
            FIGURE2_QUERY,
            FIGURE2_QUERY.replace("available='yes'",
                                  " available = 'yes' "),
        ]
        report = prewarm(paper_cluster, queries)
        assert report["unique"] == 1
        assert report["replayed"] == 1

    def test_prewarm_limit_and_bad_queries(self, paper_cluster):
        report = prewarm(paper_cluster, ["this is not xpath",
                                         FIGURE2_QUERY], deduplicate=False)
        assert report["failures"] == 1
        assert report["replayed"] == 1
        limited = prewarm(paper_cluster, [FIGURE2_QUERY, "count(/a/b)"],
                          limit=1)
        assert limited["unique"] == 1

    def test_cluster_prewarm_delegates(self, paper_cluster):
        report = paper_cluster.prewarm([FIGURE2_QUERY])
        assert report["replayed"] == 1


# ----------------------------------------------------------------------
# Bucketed gather end to end
# ----------------------------------------------------------------------
class TestBucketedGatherEndToEnd:
    def _cluster(self, paper_doc, paper_plan, clock, **oa_kwargs):
        return Cluster(paper_doc, paper_plan, clock=clock,
                       oa_config=OAConfig(**oa_kwargs))

    def test_jittered_tolerances_share_cached_region(
            self, paper_doc, paper_plan, settable_clock):
        cluster = self._cluster(paper_doc, paper_plan, settable_clock)
        agent = cluster.agent("top")
        base = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
        cluster.query(base + "[timestamp > now - 30]", at_site="top")
        sent = agent.stats["subqueries_sent"]
        settable_clock.advance(5)
        # 28s-bound spelling: different exact key, same 30s bucket, and
        # the 5s-old cached region satisfies the tighter bound.
        results, _, _ = cluster.query(base + "[timestamp > now - 28]",
                                      at_site="top")
        assert len(results) == 1
        assert agent.stats["subqueries_sent"] == sent

    def test_bucket_generalized_wire_ask_counted(
            self, paper_doc, paper_plan, settable_clock):
        cluster = self._cluster(paper_doc, paper_plan, settable_clock)
        agent = cluster.agent("top")
        settable_clock.advance(100)
        query = (PREFIX + "/neighborhood[@id='Shadyside']"
                 "/block[@id='1'][timestamp > now - 28]")
        results, _, _ = cluster.query(query, at_site="top")
        assert len(results) == 1
        assert agent.driver.stats["bucket_generalized"] >= 1

    def test_escalation_when_bucketed_answer_misses_tight_bound(
            self, paper_doc, paper_plan, settable_clock):
        """Data aged into the (28s, 30s] gap: the bucketed ask cannot
        prove freshness, so the driver re-asks exactly once with the
        original bound -- and the answer is still correct."""
        cluster = self._cluster(paper_doc, paper_plan, settable_clock)
        agent = cluster.agent("top")
        base = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
        cluster.query(base, at_site="top")  # warm, stamped at t=1000
        settable_clock.advance(29)
        results, _, _ = cluster.query(base + "[timestamp > now - 28]",
                                      at_site="top")
        assert len(results) == 1
        assert agent.driver.stats["bucket_rechecks"] >= 1

    def test_disabled_semcache_restores_exact_string_behaviour(
            self, paper_doc, paper_plan, settable_clock):
        cluster = self._cluster(
            paper_doc, paper_plan, settable_clock,
            semcache=SemanticCacheConfig(enabled=False))
        agent = cluster.agent("top")
        base = PREFIX + "/neighborhood[@id='Shadyside']/block[@id='1']"
        cluster.query(base + "[timestamp > now - 30]", at_site="top")
        settable_clock.advance(5)
        sent = agent.stats["subqueries_sent"]
        cluster.query(base + "[timestamp > now - 28]", at_site="top")
        assert agent.driver.stats["bucket_generalized"] == 0
        assert agent.driver.semcache_counters()["enabled"] is False
        assert agent.stats["subqueries_sent"] >= sent

    def test_scalar_jitter_hits_aggregate_cache(
            self, paper_doc, paper_plan, settable_clock):
        cluster = self._cluster(paper_doc, paper_plan, settable_clock)
        agent = cluster.agent("top")
        tight = f"count({PREFIX}//parkingSpace[available='yes'][price='0'])"
        jitter = (f"count( {PREFIX}//parkingSpace"
                  f"[ price = '0' ][ available = 'yes' ] )")
        first = agent.driver.answer_scalar(tight, max_age=60)
        second = agent.driver.answer_scalar(jitter, max_age=60)
        assert first == second == 1
        assert agent.driver.aggregates.stats["hits"] == 1


# ----------------------------------------------------------------------
# EXPLAIN integration
# ----------------------------------------------------------------------
class TestExplainCacheSection:
    def test_report_carries_canonical_and_bucket_keys(
            self, paper_doc, paper_plan, settable_clock):
        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        query = (PREFIX + "/neighborhood[@id='Shadyside']"
                 "/block[@id='1'][timestamp > now - 28]")
        report = cluster.explain(query)
        cache = report.to_dict()["cache"]
        assert cache["enabled"]
        assert cache["bucketed"]
        assert cache["tolerances"] == [[28.0, 30.0]]
        assert "current-time() - 30" in cache["bucket_key"]
        rendered = report.render()
        assert "semantic cache:" in rendered
        assert "28s->30s" in rendered

    def test_bucket_coalesced_aggregate_hit_reported(
            self, paper_doc, paper_plan, settable_clock):
        cluster = Cluster(paper_doc, paper_plan, clock=settable_clock)
        agent = cluster.agent("top")
        inner = (f"{PREFIX}//parkingSpace[available='yes']"
                 "[timestamp > now - 30]")
        jitter = (f"{PREFIX}//parkingSpace[available='yes']"
                  "[timestamp > now - 28]")
        agent.driver.answer_scalar(f"count({inner})")
        report = agent.explain(f"count({jitter})")
        aggregate = report.cache["aggregate"]
        assert aggregate["coalesced"] is True
        hit_report = agent.explain(f"count({inner})")
        assert hit_report.cache["aggregate"]["coalesced"] is False

    def test_disabled_semcache_explain_section(
            self, paper_doc, paper_plan, settable_clock):
        cluster = Cluster(
            paper_doc, paper_plan, clock=settable_clock,
            oa_config=OAConfig(semcache=SemanticCacheConfig(enabled=False)))
        report = cluster.explain(FIGURE2_QUERY)
        assert report.to_dict()["cache"] == {"enabled": False}
        assert "semantic cache:" not in report.render()


# ----------------------------------------------------------------------
# Registry integration
# ----------------------------------------------------------------------
class TestRegistryCounters:
    def test_cluster_registry_aggregates_semcache(self, paper_cluster):
        from repro.obs.registry import build_cluster_registry

        paper_cluster.query(FIGURE2_QUERY, at_site="top")
        agent = paper_cluster.agent("top")
        agent.driver.answer_scalar(
            f"count({PREFIX}//parkingSpace[available='yes'])", max_age=60)
        agent.driver.answer_scalar(
            f"count( {PREFIX}//parkingSpace[ available = 'yes' ] )",
            max_age=60)
        registry = build_cluster_registry(paper_cluster)
        snapshot = registry.snapshot()["semcache"]
        assert snapshot["hits"] >= 1
        assert snapshot["stores"] >= 1
        assert 0.0 <= snapshot["hit_ratio"] <= 1.0
        assert snapshot["canonicalizer"]["scope"] == "process"
