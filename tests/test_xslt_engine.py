"""Unit tests for the mini-XSLT engine."""

import pytest

from repro.xmlkit import Element, parse_fragment, serialize, trees_equal
from repro.xslt import (
    MatchPattern,
    StylesheetError,
    TransformError,
    compile_stylesheet,
    transform,
)


def apply(sheet_xml, doc_xml, **kw):
    sheet = compile_stylesheet(sheet_xml)
    roots = transform(sheet, parse_fragment(doc_xml), **kw)
    return roots


class TestMatchPatterns:
    @pytest.fixture
    def doc(self):
        return parse_fragment(
            "<a id='1'><b id='x'><c/></b><b id='y'/><d><c/></d></a>")

    def test_name_pattern(self, doc):
        pattern = MatchPattern("b")
        assert pattern.matches(doc.child("b", id="x"))
        assert not pattern.matches(doc)

    def test_wildcard(self, doc):
        assert MatchPattern("*").matches(doc)

    def test_path_pattern(self, doc):
        pattern = MatchPattern("b/c")
        b_c = doc.child("b", id="x").child("c")
        d_c = doc.child("d").child("c")
        assert pattern.matches(b_c)
        assert not pattern.matches(d_c)

    def test_absolute_pattern(self, doc):
        assert MatchPattern("/a").matches(doc)
        assert not MatchPattern("/b").matches(doc.child("b", id="x"))

    def test_descendant_pattern(self, doc):
        pattern = MatchPattern("a//c")
        assert pattern.matches(doc.child("b", id="x").child("c"))
        assert pattern.matches(doc.child("d").child("c"))

    def test_predicate_pattern(self, doc):
        pattern = MatchPattern("b[@id='x']")
        assert pattern.matches(doc.child("b", id="x"))
        assert not pattern.matches(doc.child("b", id="y"))

    def test_root_pattern(self, doc):
        from repro.xmlkit import Document

        assert MatchPattern("/").matches(Document(doc))
        assert not MatchPattern("/").matches(doc)

    def test_text_pattern(self):
        doc = parse_fragment("<a>hello</a>")
        assert MatchPattern("text()").matches(doc.children[0])

    def test_priorities(self):
        assert MatchPattern("b[@id='x']").default_priority == 0.5
        assert MatchPattern("b/c").default_priority == 0.5
        assert MatchPattern("b").default_priority == 0.0
        assert MatchPattern("*").default_priority == -0.25
        assert MatchPattern("text()").default_priority == -0.5

    def test_bad_axis_rejected(self):
        with pytest.raises(StylesheetError):
            MatchPattern("ancestor::a")


class TestTransforms:
    def test_identityish_copy(self):
        roots = apply(
            "<stylesheet><template match='/'>"
            "<copy-of select='/a'/></template></stylesheet>",
            "<a id='1'><b>t</b></a>")
        assert trees_equal(roots[0], parse_fragment("<a id='1'><b>t</b></a>"))

    def test_value_of(self):
        roots = apply(
            "<stylesheet><template match='/'>"
            "<out><value-of select='count(//b)'/></out></template>"
            "</stylesheet>",
            "<a><b/><b/></a>")
        assert roots[0].text == "2"

    def test_templates_and_modes(self):
        roots = apply(
            "<stylesheet>"
            "<template match='/'><r>"
            "<apply-templates select='/a/b' mode='loud'/></r></template>"
            "<template match='b' mode='loud'><B/></template>"
            "<template match='b'><quiet/></template>"
            "</stylesheet>",
            "<a><b/><b/></a>")
        assert serialize(roots[0]) == "<r><B/><B/></r>"

    def test_builtin_rules_recurse(self):
        # No template for <a>: built-in rule descends and copies text.
        roots = apply(
            "<stylesheet><template match='b'><hit/></template></stylesheet>",
            "<a>noise<b/></a>")
        tags = [r.tag for r in roots if isinstance(r, Element)]
        assert tags == ["hit"]

    def test_if_and_choose(self):
        roots = apply(
            "<stylesheet><template match='item'>"
            "<choose>"
            "<when test=\"@kind='x'\"><x/></when>"
            "<when test=\"@kind='y'\"><y/></when>"
            "<otherwise><z/></otherwise>"
            "</choose>"
            "<if test='@extra'><extra/></if>"
            "</template></stylesheet>",
            "<r><item kind='x'/><item kind='y' extra='1'/><item/></r>")
        tags = [r.tag for r in roots if isinstance(r, Element)]
        assert tags == ["x", "y", "extra", "z"]

    def test_copy_shallow_with_body(self):
        roots = apply(
            "<stylesheet><template match='a'>"
            "<copy><inner/></copy></template></stylesheet>",
            "<a id='7'><dropped/></a>")
        assert serialize(roots[0]) == '<a id="7"><inner/></a>'

    def test_element_and_attribute_constructors(self):
        roots = apply(
            "<stylesheet><template match='a'>"
            "<element name='made'>"
            "<attribute name='n' select='count(*)'/>"
            "<attribute name='fixed'>v</attribute>"
            "</element></template></stylesheet>",
            "<a><b/><b/></a>")
        assert roots[0].get("n") == "2"
        assert roots[0].get("fixed") == "v"

    def test_for_each(self):
        roots = apply(
            "<stylesheet><template match='/'>"
            "<r><for-each select='//b'><item>"
            "<value-of select='@id'/></item></for-each></r>"
            "</template></stylesheet>",
            "<a><b id='1'/><b id='2'/></a>")
        assert [c.text for c in roots[0].element_children()] == ["1", "2"]

    def test_literal_elements_with_attributes(self):
        roots = apply(
            "<stylesheet><template match='/'>"
            "<report kind='summary'><value-of select='name(/a)'/></report>"
            "</template></stylesheet>",
            "<a/>")
        assert roots[0].get("kind") == "summary"
        assert roots[0].text == "a"

    def test_variables_reach_expressions(self):
        roots = apply(
            "<stylesheet><template match='b'>"
            "<if test='@id = $wanted'><hit/></if>"
            "</template></stylesheet>",
            "<a><b id='1'/><b id='2'/></a>",
            variables={"wanted": "2"})
        assert len([r for r in roots if isinstance(r, Element)]) == 1

    def test_last_definition_wins_ties(self):
        roots = apply(
            "<stylesheet>"
            "<template match='b'><first/></template>"
            "<template match='b'><second/></template>"
            "</stylesheet>",
            "<a><b/></a>")
        assert [r.tag for r in roots if isinstance(r, Element)] == ["second"]

    def test_priority_attribute_overrides(self):
        roots = apply(
            "<stylesheet>"
            "<template match='b' priority='2'><strong/></template>"
            "<template match=\"b[@id='1']\"><weak/></template>"
            "</stylesheet>",
            "<a><b id='1'/></a>")
        assert [r.tag for r in roots if isinstance(r, Element)] == ["strong"]


class TestStylesheetErrors:
    def test_requires_stylesheet_root(self):
        with pytest.raises(StylesheetError):
            compile_stylesheet("<template match='a'/>")

    def test_template_requires_match(self):
        with pytest.raises(StylesheetError):
            compile_stylesheet("<stylesheet><template/></stylesheet>")

    def test_bad_expression_reported(self):
        with pytest.raises(StylesheetError):
            compile_stylesheet(
                "<stylesheet><template match='a'>"
                "<value-of select='///'/></template></stylesheet>")

    def test_stray_when_rejected(self):
        with pytest.raises(StylesheetError):
            compile_stylesheet(
                "<stylesheet><template match='a'>"
                "<when test='1'/></template></stylesheet>")

    def test_attribute_outside_element_fails_at_runtime(self):
        sheet = compile_stylesheet(
            "<stylesheet><template match='/'>"
            "<attribute name='x'>v</attribute></template></stylesheet>")
        with pytest.raises(TransformError):
            transform(sheet, parse_fragment("<a/>"))


class TestLessCommonInstructions:
    def test_copy_of_attribute_attaches_to_current_element(self):
        roots = apply(
            "<stylesheet><template match='a'>"
            "<out><copy-of select='@id'/></out></template></stylesheet>",
            "<a id='7'/>")
        assert roots[0].get("id") == "7"

    def test_copy_of_scalar_becomes_text(self):
        roots = apply(
            "<stylesheet><template match='a'>"
            "<out><copy-of select='1 + 2'/></out></template></stylesheet>",
            "<a/>")
        assert roots[0].text == "3"

    def test_value_of_attribute(self):
        roots = apply(
            "<stylesheet><template match='a'>"
            "<out><value-of select='@id'/></out></template></stylesheet>",
            "<a id='42'/>")
        assert roots[0].text == "42"

    def test_copy_on_document_runs_body(self):
        sheet = compile_stylesheet(
            "<stylesheet><template match='/'>"
            "<copy><made/></copy></template></stylesheet>")
        from repro.xmlkit import Document

        roots = transform(sheet, Document(parse_fragment("<a/>")))
        assert [r.tag for r in roots if isinstance(r, Element)] == ["made"]

    def test_copy_of_text_node(self):
        roots = apply(
            "<stylesheet><template match='a'>"
            "<out><copy-of select='text()'/></out></template></stylesheet>",
            "<a>payload</a>")
        assert roots[0].text == "payload"

    def test_nested_for_each_contexts(self):
        roots = apply(
            "<stylesheet><template match='/'>"
            "<r><for-each select='//shelfish'>"
            "<s><attribute name='n' select='count(item)'/></s>"
            "</for-each></r></template></stylesheet>",
            "<x><shelfish><item/><item/></shelfish>"
            "<shelfish><item/></shelfish></x>")
        counts = [c.get("n") for c in roots[0].element_children()]
        assert counts == ["2", "1"]

    def test_apply_templates_to_attributes_uses_builtin(self):
        # Built-in rule for attribute nodes: copy the value as text.
        roots = apply(
            "<stylesheet><template match='/'>"
            "<out><apply-templates select='//a/@id'/></out>"
            "</template></stylesheet>",
            "<a id='77'/>")
        assert roots[0].text == "77"
