"""Unit tests for the answer builder (C1/C2) and subquery rendering."""

import pytest

from repro.core import (
    AnswerBuilder,
    CoreError,
    PartitionPlan,
    Status,
    Subquery,
    fragment_violations,
    get_status,
    render_boolean_probe,
    render_id_path_query,
    render_residual_query,
)
from repro.core.qeg import compile_pattern
from repro.xpath import parse

from tests.conftest import OAKLAND, PITTSBURGH, SHADYSIDE, id_path


@pytest.fixture
def oak_db(paper_doc):
    plan = PartitionPlan({
        "top": [id_path("usRegion=NE")],
        "oak": [OAKLAND],
    })
    return plan.build_databases(paper_doc)["oak"]


class TestAnswerBuilder:
    def test_empty_builder(self, oak_db):
        builder = AnswerBuilder(oak_db)
        assert builder.is_empty
        assert builder.build() is None

    def test_local_information_marked_complete(self, oak_db, paper_doc):
        builder = AnswerBuilder(oak_db)
        builder.include_local_information(oak_db.find(OAKLAND))
        fragment = builder.build()
        shady = fragment
        for tag, identifier in OAKLAND[1:]:
            shady = shady.child(tag, id=identifier)
        assert get_status(shady) is Status.COMPLETE
        assert shady.get("zipcode") == "15213"
        # Block stubs travel as incomplete.
        assert get_status(shady.child("block", id="1")) is Status.INCOMPLETE
        assert fragment_violations(fragment, paper_doc) == []

    def test_ancestors_included_automatically(self, oak_db):
        builder = AnswerBuilder(oak_db)
        builder.include_local_information(oak_db.find(OAKLAND))
        fragment = builder.build()
        assert get_status(fragment) is Status.ID_COMPLETE
        city = fragment.child("state").child("county").child("city")
        assert get_status(city) is Status.ID_COMPLETE
        # C2: the city's ID info lists *all* its neighborhoods.
        assert {c.id for c in city.element_children("neighborhood")} == \
            {"Oakland", "Shadyside"}

    def test_include_subtree(self, oak_db, paper_doc):
        builder = AnswerBuilder(oak_db)
        missing = []
        builder.include_ancestors(oak_db.find(OAKLAND))
        builder.include_subtree(oak_db.find(OAKLAND),
                                on_missing=missing.append)
        fragment = builder.build()
        assert missing == []  # oak owns the whole subtree
        assert fragment_violations(fragment, paper_doc) == []
        node = fragment
        for tag, identifier in OAKLAND[1:]:
            node = node.child(tag, id=identifier)
        space = node.child("block", id="1").child("parkingSpace", id="1")
        assert get_status(space) is Status.COMPLETE

    def test_include_subtree_reports_missing(self, oak_db):
        builder = AnswerBuilder(oak_db)
        missing = []
        # The city node is only id-complete at oak, so the subtree walk
        # stops right there: one fetch of the city covers everything.
        builder.include_subtree(oak_db.find(PITTSBURGH),
                                on_missing=missing.append)
        assert [node.id for node in missing] == ["Pittsburgh"]

    def test_cannot_include_what_sender_lacks(self, oak_db):
        builder = AnswerBuilder(oak_db)
        with pytest.raises(CoreError):
            builder.include_local_information(oak_db.find(SHADYSIDE))

    def test_idempotent_inclusion(self, oak_db):
        builder = AnswerBuilder(oak_db)
        element = oak_db.find(OAKLAND)
        builder.include_local_information(element)
        builder.include_local_information(element)
        fragment = builder.build()
        city = fragment.child("state").child("county").child("city")
        assert len(list(city.element_children("neighborhood"))) == 2


class TestSubqueryRendering:
    def test_id_path_query(self):
        query = render_id_path_query([("a", "1"), ("b", "x")])
        assert query == "/a[@id = '1']/b[@id = 'x']"
        parse(query)  # must be valid XPath

    def test_extra_predicates_attach_to_last_step(self):
        extra = parse("/x[price > 5]").steps[0].predicates
        query = render_id_path_query([("a", "1")], extra)
        assert query == "/a[@id = '1'][price > 5]"

    def test_quotes_in_ids_survive(self):
        query = render_id_path_query([("a", "O'Hara")])
        ast = parse(query)
        from repro.xpath.analysis import extract_id_path

        assert extract_id_path(ast) == [("a", "O'Hara")]

    def test_residual_query(self, paper_schema):
        pattern = compile_pattern(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']"
            "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
            "/block[@id='1']/parkingSpace[available='yes']",
            schema=paper_schema,
        )
        query = render_residual_query(
            OAKLAND, [], pattern.items[5:])
        assert query.endswith(
            "/block[@id = '1']/parkingSpace[available = 'yes']")

    def test_residual_descendant_gap(self, paper_schema):
        pattern = compile_pattern("/usRegion[@id='NE']//parkingSpace",
                                  schema=paper_schema)
        query = render_residual_query(
            OAKLAND, [], pattern.items[1:], descendant_gap=True)
        assert "//parkingSpace" in query

    def test_boolean_probe(self):
        predicate = parse("/x[./neighborhood[@id='Oakland']]") \
            .steps[0].predicates[0]
        probe = render_boolean_probe(PITTSBURGH, predicate)
        assert probe.startswith("boolean(")
        parse(probe)


class TestSubqueryObject:
    def test_equality_by_query(self):
        a = Subquery("/a[@id = '1']", [("a", "1")], Subquery.INCOMPLETE)
        b = Subquery("/a[@id = '1']", [("a", "1")], Subquery.STALE)
        assert a == b
        assert hash(a) == hash(b)

    def test_scalar_distinct(self):
        a = Subquery("/a", [("a", "1")], Subquery.NESTED_PROBE, scalar=True)
        b = Subquery("/a", [("a", "1")], Subquery.NESTED_PROBE, scalar=False)
        assert a != b
