"""Unit tests for the XPath grammar and unparse round-trips."""

import pytest

from repro.xpath import parse
from repro.xpath.ast import (
    BinaryOperation,
    FilterExpression,
    FunctionCall,
    Literal,
    LocationPath,
    NumberLiteral,
    VariableReference,
)
from repro.xpath.errors import XPathSyntaxError, XPathUnsupportedError


class TestLocationPaths:
    def test_absolute_path(self):
        ast = parse("/a/b/c")
        assert isinstance(ast, LocationPath)
        assert ast.absolute
        assert [s.node_test.name for s in ast.steps] == ["a", "b", "c"]
        assert all(s.axis == "child" for s in ast.steps)

    def test_relative_path(self):
        ast = parse("a/b")
        assert not ast.absolute

    def test_root_only(self):
        ast = parse("/")
        assert ast.absolute and ast.steps == []

    def test_double_slash_desugars(self):
        ast = parse("/a//c")
        axes = [s.axis for s in ast.steps]
        assert axes == ["child", "descendant-or-self", "child"]

    def test_leading_double_slash(self):
        ast = parse("//c")
        assert ast.absolute
        assert ast.steps[0].axis == "descendant-or-self"

    def test_attribute_step(self):
        ast = parse("@id")
        assert ast.steps[0].axis == "attribute"
        assert ast.steps[0].node_test.name == "id"

    def test_dot_and_dotdot(self):
        ast = parse("./..")
        assert ast.steps[0].axis == "self"
        assert ast.steps[1].axis == "parent"

    def test_explicit_axes(self):
        ast = parse("ancestor::a/descendant::b/self::c")
        assert [s.axis for s in ast.steps] == \
            ["ancestor", "descendant", "self"]

    def test_wildcard(self):
        assert parse("/*").steps[0].node_test.name == "*"

    def test_node_and_text_tests(self):
        ast = parse("node()/text()")
        assert ast.steps[0].node_test.node_type == "node"
        assert ast.steps[1].node_test.node_type == "text"

    def test_predicates_attach_to_steps(self):
        ast = parse("/a[@id='1'][b]")
        assert len(ast.steps[0].predicates) == 2


class TestExpressions:
    def test_precedence_or_and(self):
        ast = parse("a or b and c")
        assert isinstance(ast, BinaryOperation) and ast.operator == "or"
        assert ast.right.operator == "and"

    def test_precedence_arithmetic(self):
        ast = parse("1 + 2 * 3")
        assert ast.operator == "+"
        assert ast.right.operator == "*"

    def test_parentheses(self):
        ast = parse("(1 + 2) * 3")
        assert ast.operator == "*"

    def test_unary_minus(self):
        ast = parse("-1 + 2")
        assert ast.operator == "+"

    def test_comparison_chain(self):
        ast = parse("a = b != c")
        assert ast.operator == "!="

    def test_function_call(self):
        ast = parse("concat('a', 'b', 'c')")
        assert isinstance(ast, FunctionCall)
        assert len(ast.arguments) == 3

    def test_nested_function(self):
        ast = parse("not(count(a) > 2)")
        assert ast.name == "not"

    def test_literal_and_number(self):
        assert isinstance(parse("'x'"), Literal)
        assert isinstance(parse("3.5"), NumberLiteral)

    def test_variable(self):
        assert isinstance(parse("$v"), VariableReference)

    def test_union(self):
        ast = parse("a | b | c")
        assert ast.operator == "|"

    def test_filter_expression_with_path(self):
        ast = parse("$nodes[@id='1']/b")
        assert isinstance(ast, FilterExpression)
        assert ast.path is not None

    def test_paper_min_query(self):
        """The paper's least-pricey-spot query parses (no min in XPath 1.0)."""
        ast = parse("/a/block[@id='1']/parkingSpace"
                    "[not(price > ../parkingSpace/price)]")
        space_step = ast.steps[-1]
        assert len(space_step.predicates) == 1


class TestUnsupported:
    def test_position_rejected(self):
        with pytest.raises(XPathUnsupportedError):
            parse("/a[position() = 1]")

    def test_last_rejected(self):
        with pytest.raises(XPathUnsupportedError):
            parse("/a[last()]")

    def test_numeric_predicate_rejected(self):
        with pytest.raises(XPathUnsupportedError):
            parse("/a[1]")

    def test_following_sibling_rejected(self):
        with pytest.raises(XPathUnsupportedError):
            parse("/a/following-sibling::b")

    def test_preceding_rejected(self):
        with pytest.raises(XPathUnsupportedError):
            parse("/a/preceding::b")

    def test_comment_nodes_rejected(self):
        with pytest.raises(XPathUnsupportedError):
            parse("/a/comment()")


class TestSyntaxErrors:
    @pytest.mark.parametrize("bad", [
        "", "/a[", "/a]", "a//", "/a[@id=]", "f(", "a b", "()", "/a[]",
        "unknownaxis::a",
    ])
    def test_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse(bad)


class TestUnparse:
    @pytest.mark.parametrize("query", [
        "/a/b/c",
        "/a[@id = 'x']/b",
        "/a[@id = 'x' or @id = 'y']/b[@id = '1']",
        "//c",
        "/a//c",
        "count(/a/b) > 2",
        "not(price > ../parkingSpace/price)",
        "/a[b = 'x' and c = 'y']",
        "a | b",
        "concat('x', 'y')",
        "$v + 1",
        "-(2 + 3)",
        "/a[count(b) = 2]",
        "substring('hello', 2, 3)",
    ])
    def test_roundtrip_stable(self, query):
        once = parse(query).unparse()
        twice = parse(once).unparse()
        assert once == twice

    def test_roundtrip_preserves_semantics(self, paper_doc):
        from repro.xpath import compile_xpath

        query = ("/usRegion[@id='NE']//parkingSpace[available='yes']"
                 "[price='25']")
        original = compile_xpath(query).select(paper_doc)
        roundtripped = compile_xpath(parse(query).unparse()).select(paper_doc)
        assert [id(n) for n in original] == [id(n) for n in roundtripped]

    def test_dot_dotdot_roundtrip(self):
        assert parse("./../a").unparse() == "./../a"
