"""Unit tests for IDable nodes and local (ID) information (Defs 3.1/3.2)."""

import pytest

from repro.core import (
    UnknownNodeError,
    find_by_id_path,
    format_id_path,
    id_path_of,
    idable_children,
    is_idable,
    iter_idable,
    local_id_information,
    local_information,
    lowest_idable_ancestor_or_self,
    node_id,
    non_idable_children,
)
from repro.xmlkit import parse_fragment, trees_equal

FIGURE4 = """
<neighborhood id='Oakland' zipcode='15213'>
  <block id='1'>
    <pSpace id='1'><in-use>no</in-use><GPS/></pSpace>
    <pSpace id='2'><price>25 cents</price></pSpace>
  </block>
  <block id='2'><pSpace id='1'/></block>
  <available-spaces>8</available-spaces>
</neighborhood>
"""


@pytest.fixture
def fig4():
    return parse_fragment(FIGURE4)


class TestIdable:
    def test_root_is_idable(self, fig4):
        assert is_idable(fig4)

    def test_nested_idable(self, fig4):
        block = fig4.child("block", id="1")
        assert is_idable(block)
        assert is_idable(block.child("pSpace", id="1"))

    def test_non_idable_leaf(self, fig4):
        assert not is_idable(fig4.child("available-spaces"))

    def test_child_of_non_idable_is_not_idable(self):
        doc = parse_fragment("<a id='1'><nonid><b id='x'/></nonid></a>")
        b = doc.child("nonid").child("b")
        assert not is_idable(b)

    def test_duplicate_sibling_ids_break_idability(self):
        doc = parse_fragment("<a id='1'><b id='x'/><b id='x'/></a>")
        for b in doc.element_children("b"):
            assert not is_idable(b)

    def test_same_id_different_tags_ok(self):
        doc = parse_fragment("<a id='1'><b id='x'/><c id='x'/></a>")
        assert all(is_idable(child) for child in doc.element_children())

    def test_idable_children(self, fig4):
        assert {node_id(c) for c in idable_children(fig4)} == \
            {("block", "1"), ("block", "2")}

    def test_non_idable_children(self, fig4):
        tags = [c.tag for c in non_idable_children(fig4)]
        assert tags == ["available-spaces"]

    def test_iter_idable_top_down(self, fig4):
        nodes = list(iter_idable(fig4))
        assert node_id(nodes[0]) == ("neighborhood", "Oakland")
        assert len(nodes) == 6  # nbhd + 2 blocks + 3 spaces


class TestLocalInformation:
    def test_paper_example(self, fig4):
        """Matches the worked local-information example in Section 3.2."""
        expected = parse_fragment("""
        <neighborhood id='Oakland' zipcode='15213'>
          <block id='1'/>
          <block id='2'/>
          <available-spaces>8</available-spaces>
        </neighborhood>
        """)
        assert trees_equal(local_information(fig4), expected)

    def test_paper_example_id_information(self, fig4):
        expected = parse_fragment("""
        <neighborhood id='Oakland'>
          <block id='1'/>
          <block id='2'/>
        </neighborhood>
        """)
        assert trees_equal(local_id_information(fig4), expected)

    def test_local_information_keeps_non_idable_subtrees(self, fig4):
        block = fig4.child("block", id="1")
        space = block.child("pSpace", id="1")
        info = local_information(space)
        assert info.child("in-use").text == "no"
        assert info.child("GPS") is not None

    def test_local_information_is_detached_copy(self, fig4):
        info = local_information(fig4)
        assert info.parent is None
        info.set("zipcode", "00000")
        assert fig4.get("zipcode") == "15213"

    def test_internal_attributes_stripped_by_default(self, fig4):
        fig4.set("status", "owned")
        assert local_information(fig4).get("status") is None
        assert local_information(fig4, keep_internal=True).get("status") == \
            "owned"

    def test_local_informations_nearly_disjoint(self, fig4):
        """Union of local informations = the document, overlapping only
        in the IDs of IDable nodes (the partitioning property)."""
        total = sum(local_information(n).size() for n in iter_idable(fig4))
        overlap = sum(len(idable_children(n)) for n in iter_idable(fig4))
        assert total - overlap == fig4.size()


class TestIdPaths:
    def test_id_path_of(self, fig4):
        space = fig4.child("block", id="1").child("pSpace", id="2")
        assert id_path_of(space) == [
            ("neighborhood", "Oakland"), ("block", "1"), ("pSpace", "2")]

    def test_find_by_id_path(self, fig4):
        path = [("neighborhood", "Oakland"), ("block", "2"), ("pSpace", "1")]
        assert find_by_id_path(fig4, path) is \
            fig4.child("block", id="2").child("pSpace", id="1")

    def test_find_missing_returns_none(self, fig4):
        assert find_by_id_path(
            fig4, [("neighborhood", "Oakland"), ("block", "9")]) is None

    def test_find_required_raises(self, fig4):
        with pytest.raises(UnknownNodeError):
            find_by_id_path(fig4, [("neighborhood", "Nope")], required=True)

    def test_format(self):
        assert format_id_path([("a", "1"), ("b", "2")]) == "a=1/b=2"

    def test_lowest_idable_ancestor(self, fig4):
        leaf = fig4.child("block", id="1").child("pSpace", id="1") \
            .child("in-use")
        anchor = lowest_idable_ancestor_or_self(leaf)
        assert node_id(anchor) == ("pSpace", "1")

    def test_lowest_idable_ancestor_of_idable_is_self(self, fig4):
        block = fig4.child("block", id="1")
        assert lowest_idable_ancestor_or_self(block) is block
