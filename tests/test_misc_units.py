"""Remaining small-unit coverage: traces, stats, architectures, helpers."""

from repro.arch import centralized, hierarchical
from repro.net import AnswerMessage, QueryMessage, clean_results
from repro.service import ParkingConfig, build_parking_document
from repro.sim import TraceNode

from tests.conftest import FIGURE2_QUERY, OAKLAND


class TestTraceNode:
    def test_messages_counts_request_reply_pairs(self):
        root = TraceNode("a", "query")
        assert root.messages == 2  # request in + reply out
        root.children.append(TraceNode("b", "query"))
        root.children.append(TraceNode("c", "query"))
        assert root.messages == 6  # + two request/reply pairs issued

    def test_total_calls_and_sites(self):
        root = TraceNode("a", "query")
        child = TraceNode("b", "query")
        child.children.append(TraceNode("c", "update"))
        root.children.append(child)
        assert root.total_calls() == 3
        assert root.sites_touched() == {"a", "b", "c"}


class TestCleanResults:
    def test_strips_status_everywhere(self):
        from repro.xmlkit import parse_fragment

        dirty = parse_fragment(
            "<a status='complete' timestamp='5'>"
            "<b status='incomplete'/></a>")
        cleaned = clean_results([dirty])
        assert cleaned[0].get("status") is None
        assert cleaned[0].child("b").get("status") is None
        # Original untouched (defensive copy).
        assert dirty.get("status") == "complete"


class TestArchitectureRouting:
    def test_forced_entry_ignores_query(self, paper_cluster):
        arch = centralized(ParkingConfig.tiny())
        assert arch.entry_site(paper_cluster, FIGURE2_QUERY) == "site-0"

    def test_dns_entry_follows_query(self):
        from repro.net import Cluster

        config = ParkingConfig.tiny()
        document = build_parking_document(config)
        arch = hierarchical(config)
        cluster = Cluster(document, arch.plan)
        from repro.service import type1_query

        query = type1_query(config, "Pittsburgh", "Oakland", "1")
        entry = arch.entry_site(cluster, query)
        site, _ = cluster.route_query(query)
        assert entry == site

    def test_uses_dns_routing_flag(self):
        config = ParkingConfig.tiny()
        assert not centralized(config).uses_dns_routing
        assert hierarchical(config).uses_dns_routing


class TestDriverStats:
    def test_local_hit_accounting(self, paper_cluster):
        agent = paper_cluster.agent("oak")
        query = ("/usRegion[@id='NE']/state[@id='PA']"
                 "/county[@id='Allegheny']/city[@id='Pittsburgh']"
                 "/neighborhood[@id='Oakland']/block[@id='1']")
        agent.answer_user_query(query)
        assert agent.driver.stats["local_hits"] == 1
        assert agent.driver.stats["queries"] == 1
        assert agent.driver.stats["subqueries_sent"] == 0

    def test_rounds_accumulate(self, paper_cluster):
        agent = paper_cluster.agent("top")
        agent.answer_user_query(FIGURE2_QUERY)
        assert agent.driver.stats["rounds"] >= 1
        assert agent.driver.stats["subqueries_sent"] >= 2


class TestAnswerMessageShapes:
    def test_reply_without_payload_decodes(self):
        from repro.net import Message

        decoded = Message.decode(AnswerMessage(3).encode())
        assert decoded.fragment is None
        assert decoded.scalar is None
        assert decoded.results is None

    def test_query_defaults(self):
        from repro.net import Message

        decoded = Message.decode(QueryMessage("/a").encode())
        assert decoded.now is None
        assert decoded.scalar is False
        assert decoded.user is False


class TestClusterSchemaSharing:
    def test_agents_share_cluster_schema(self, paper_cluster):
        schemas = {id(agent.schema)
                   for agent in paper_cluster.agents.values()}
        assert len(schemas) == 1

    def test_added_node_visible_in_shared_schema(self, paper_cluster):
        paper_cluster.add_node(OAKLAND + (("block", "1"),), "meter", "m1")
        for agent in paper_cluster.agents.values():
            assert agent.schema.is_idable_tag("meter")
