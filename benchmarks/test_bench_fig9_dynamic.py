"""Figure 9: dynamic load balancing while the system keeps answering.

Paper setup: clients pose type-1 queries, 90% of them on one
neighborhood X.  Mid-run, X's owner is told to delegate its blocks to
the other sites one by one (the "crude" scheme).  The paper's trace
shows average throughput roughly tripling between the start and the
end of the redistribution, with the system answering queries the whole
time.

Scaled down here: delegations run between t=50s and t=100s of a 160s
simulation (the paper used t=206s..373s of a longer run); client DNS
caches expire on their normal TTL, which is what makes each hand-off
take effect for the query stream.
"""

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.arch import hierarchical
from repro.net import OAConfig
from repro.service import QueryWorkload, UpdateWorkload
from repro.service.parking import block_path
from repro.sim import CostModel, SimulatedCluster

HOT_CITY = "Pittsburgh"
HOT_NEIGHBORHOOD = "Oakland"
REBALANCE_START = 50.0
REBALANCE_END = 100.0
TOTAL = 160.0
RESULTS_FILE = "BENCH_fig9_dynamic.json"


def _run(config, document):
    sim = SimulatedCluster(document.copy(), hierarchical(config),
                           cost_model=CostModel(),
                           oa_config=OAConfig(cache_results=False))
    sim.cluster.client_resolver.ttl = 15.0

    workload = QueryWorkload.qw(config, 1, skew=0.9, hot_city=HOT_CITY,
                                hot_neighborhood=HOT_NEIGHBORHOOD, seed=301)

    blocks = config.block_ids()
    step = (REBALANCE_END - REBALANCE_START) / len(blocks)
    schedule = []
    for index, block in enumerate(blocks):
        path = block_path(config, HOT_CITY, HOT_NEIGHBORHOOD, block)
        target = f"site-{index % 9}"
        when = REBALANCE_START + index * step

        def action(path=path, target=target):
            if sim.cluster.owner_map.get(tuple(path)) != target:
                sim.cluster.delegate(path, target)

        schedule.append((when, action))

    metrics = sim.run(workload, n_clients=16, duration=TOTAL, warmup=0,
                      update_workload=UpdateWorkload(config, seed=302),
                      update_rate=50, schedule=schedule)
    return metrics


def test_figure9_dynamic_load_balancing(benchmark, paper_config,
                                        paper_document):
    metrics = benchmark.pedantic(lambda: _run(paper_config, paper_document),
                                 rounds=1, iterations=1)

    trace = metrics.throughput_trace(bin_seconds=5.0)
    rows = [(f"t={int(t):>3}s", count / 5.0) for t, count in trace]
    print_table(
        "Figure 9: queries/sec over time "
        f"(redistribution {int(REBALANCE_START)}s..{int(REBALANCE_END)}s)",
        ["throughput"], rows,
        note="paper shape: ~3x average throughput after redistribution",
    )

    before = sum(c for t, c in trace if t <= REBALANCE_START)
    before_rate = before / REBALANCE_START
    after_window = [c for t, c in trace if t > REBALANCE_END + 20]
    after_rate = sum(after_window) / (5.0 * len(after_window))
    print(f"\nbefore: {before_rate:.1f} q/s   after: {after_rate:.1f} q/s   "
          f"gain: {after_rate / before_rate:.2f}x")
    write_report(
        RESULTS_FILE, "fig9_dynamic",
        params={"duration_s": TOTAL, "clients": 16,
                "rebalance_start_s": REBALANCE_START,
                "rebalance_end_s": REBALANCE_END, "skew": 0.9,
                "hot_city": HOT_CITY,
                "hot_neighborhood": HOT_NEIGHBORHOOD},
        metrics={
            "before_qps": round(before_rate, 3),
            "after_qps": round(after_rate, 3),
            "gain": round(after_rate / before_rate, 3),
            "trace": [[t, count] for t, count in trace],
        },
    )

    # The paper reports ~3x; require a clear (>=2x) improvement, with
    # the system having answered queries in every phase (the final bin
    # may be a partial, empty one at the cut-off).
    assert after_rate > 2.0 * before_rate
    assert all(count > 0 for _t, count in trace[:-1])
