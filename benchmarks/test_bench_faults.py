"""Availability and latency under seeded fault injection.

A star deployment (one hub owning the region, each node owned by its
own site) serves a fixed query workload through a
:class:`~repro.net.faults.FaultyNetwork` at 0%, 5% and 20% drop rates.
The retry layer heals what it can within its attempt budget; the rest
degrades to partial answers.  The benchmark reports, per fault rate,
the mean and p95 query latency, the *availability* (fraction of
queries answered complete) and the retry/fault counters -- the
quantitative version of the failure-semantics contract: queries never
raise, they heal or degrade.

Results are written to ``BENCH_faults.json`` so CI can archive the
numbers.  ``REPRO_BENCH_QUICK=1`` shrinks the deployment and workload
for smoke runs.  The fault schedule is seeded, so a given
configuration replays the same drops every run.
"""

import os
import time

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.core import PartitionPlan
from repro.net import (
    Cluster,
    FaultyNetwork,
    LoopbackNetwork,
    OAConfig,
    RetryPolicy,
)
from repro.sim.metrics import collect_fault_counters
from repro.xmlkit import Element

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N_NODES = 8 if QUICK else 16
N_QUERIES = 60 if QUICK else 240
FAULT_RATES = (0.0, 0.05, 0.20)
SEED = 29
RESULTS_FILE = "BENCH_faults.json"

#: Small but real backoff delays, so retry cost shows up in latency.
RETRIES = dict(max_attempts=3, base_delay=0.001, multiplier=2.0,
               max_delay=0.004, jitter=0.5)


def _star_document():
    root = Element("region", attrib={"id": "R"})
    for index in range(N_NODES):
        node = Element("node", attrib={"id": f"n{index:02d}"})
        node.append(Element("value", text=str(index)))
        root.append(node)
    return root


def _star_plan():
    assignments = {"hub": [(("region", "R"),)]}
    for index in range(N_NODES):
        assignments[f"leaf{index:02d}"] = [
            (("region", "R"), ("node", f"n{index:02d}"))
        ]
    return PartitionPlan(assignments)


def _workload():
    """Alternating wide fan-outs and single-node fetches."""
    queries = []
    for index in range(N_QUERIES):
        if index % 4 == 0:
            queries.append("/region[@id='R']/node")
        else:
            node = (index * 7) % N_NODES
            queries.append(f"/region[@id='R']/node[@id='n{node:02d}']")
    return queries


def _run_rate(drop_rate):
    network = FaultyNetwork(LoopbackNetwork(), seed=SEED,
                            drop_rate=drop_rate)
    cluster = Cluster(
        _star_document(), _star_plan(), service="star", network=network,
        # No caching: every query re-gathers, so every query is exposed
        # to the injected faults instead of the first one only.
        oa_config=OAConfig(cache_results=False, executor="serial",
                           retry_policy=RetryPolicy(**RETRIES)))
    latencies = []
    complete = 0
    for query in _workload():
        started = time.perf_counter()
        _results, _site, outcome = cluster.query(query, at_site="hub")
        latencies.append(time.perf_counter() - started)
        if outcome.complete:
            complete += 1
    ordered = sorted(latencies)
    fault_totals = collect_fault_counters(cluster.agents)
    return {
        "drop_rate": drop_rate,
        "queries": len(latencies),
        "availability": complete / len(latencies),
        "mean_latency_ms": sum(latencies) / len(latencies) * 1000,
        "p95_latency_ms": ordered[int(0.95 * (len(ordered) - 1))] * 1000,
        "retries": fault_totals["retries"],
        "partial_gathers": fault_totals["partial_gathers"],
        "fault_stats": dict(network.fault_stats),
    }


def _run():
    return [_run_rate(rate) for rate in FAULT_RATES]


def test_availability_under_faults(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_table(
        f"Seeded fault injection over {N_NODES}-leaf star "
        f"({N_QUERIES} queries, seed {SEED})",
        ["avail", "mean ms", "p95 ms", "retries", "drops"],
        [
            (f"{point['drop_rate']:.0%} drops",
             round(point["availability"], 3),
             round(point["mean_latency_ms"], 2),
             round(point["p95_latency_ms"], 2),
             point["retries"],
             point["fault_stats"]["drops"])
            for point in points
        ],
        note="availability = fraction of queries answered complete; "
             "the rest returned partial answers, none raised",
    )
    write_report(
        RESULTS_FILE, "faults",
        params={"nodes": N_NODES, "queries": N_QUERIES, "seed": SEED,
                "fault_rates": list(FAULT_RATES), "quick": QUICK,
                "retry_policy": dict(RETRIES)},
        metrics=points,
    )

    clean, light, heavy = points
    # Fault-free: nothing retried, nothing dropped, everything answered.
    assert clean["availability"] == 1.0
    assert clean["retries"] == 0
    assert clean["fault_stats"]["drops"] == 0
    # Light faults: retries absorb nearly everything.
    assert light["fault_stats"]["drops"] > 0
    assert light["availability"] >= 0.95
    # Heavy faults: the attempt budget saturates for some fan-outs, but
    # the system keeps answering (degraded, never raising).
    assert heavy["retries"] > light["retries"]
    assert heavy["availability"] >= 0.6
