"""Adaptive rebalancing: max sustained QPS and tail latency, off vs on.

A zipf-skewed rollup workload aims 95% of its queries under one
top-level zone of a generated deployment, so one organizing agent
absorbs nearly the whole offered load while its peers idle.  With the
balancer **off** that site's agent lock is the cluster: the sustainable
rate is one site's capacity divided by its load share.  With the
balancer **on**, a warmup window feeds the per-path load trackers, one
tick detects the hot site and splits its fragment along the zone
boundary, and the same ladder climbs roughly ``1/share`` higher before
missing the SLO.

Per-site capacity is made real with the TCP runtime's
``service_delay`` (a lock-held, GIL-releasing per-request service
time): every site behaves like its own machine instead of sharing one
interpreter's CPU pool, which is the regime where moving ownership
moves capacity.

Measured per mode:

* **max sustained QPS** -- ladder of open-loop windows (seeded Poisson
  arrivals, latency charged from scheduled arrival); a rate is
  sustained when >= 95% of offered queries complete, none error, and
  p99 stays under the SLO; the climb stops after two consecutive
  misses;
* **probe p99** -- one fixed-rate window past the hot site's solo
  capacity, where the off-mode backlog dominates the tail.

Results go to ``BENCH_rebalance.json``.  ``REPRO_BENCH_QUICK=1``
shrinks the ladder and windows for CI.  ``REPRO_BENCH_STRESS=1``
additionally runs the million-element scenario tier
(``BENCH_rebalance_stress.json``): the PR 9 scale config fed through
the same open-loop generator with the balancer live.
"""

import os

import pytest

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.core.semcache import SemanticCacheConfig
from repro.net import BreakerPolicy, OAConfig, RetryPolicy
from repro.net.tcpruntime import TcpCluster
from repro.rebalance import RebalanceConfig
from repro.service.scenarios import (
    ScenarioConfig,
    ScenarioWorkload,
    build_document,
    build_plan,
    million_config,
)
from repro.service.workload import run_open_loop

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
STRESS = bool(os.environ.get("REPRO_BENCH_STRESS"))

#: fanout=3 gives the hot zone three splittable sub-zones, so one tick
#: can shed two of them (to the two idlest peers) and the hot site's
#: share drops from ~0.97 to ~0.35.
CONFIG = ScenarioConfig(fanout=3, depth=2, sensors_per_group=15,
                        site_depth=1, seed=7)
SKEW = 0.95
SERVICE_DELAY = 0.025
SLO_P99_MS = 300.0
DURATION = 1.2 if QUICK else 2.5
WARMUP_QPS = 25.0
WARMUP_S = 1.2
DRAIN_TIMEOUT = 30.0
MAX_PENDING = 4096
LADDER = [25, 50, 75] if QUICK else [20, 30, 45, 60, 75, 90]
PROBE_QPS = 40.0
MIN_GAIN = 1.5 if QUICK else 2.0
RESULTS_FILE = "BENCH_rebalance.json"
STRESS_RESULTS_FILE = "BENCH_rebalance_stress.json"


def _oa_config():
    # Caches off: the skewed suite is a handful of distinct rollups,
    # and a warm semantic cache would serve them all without any site
    # ever being hot -- this bench is about the balancer.
    return OAConfig(
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0,
                                 max_delay=0.0, jitter=0.0,
                                 sleep=lambda seconds: None),
        breaker=BreakerPolicy(failure_threshold=8, reset_timeout=0.05),
        partial_answers=True,
        cache_results=False,
        semcache=SemanticCacheConfig(enabled=False))


def _workload(seed):
    return ScenarioWorkload(CONFIG, shape="sum", skew=SKEW, seed=seed)


def _one_window(balanced, rate, seed):
    """A fresh cluster: warmup (+ one tick when balanced), one window."""
    rebalance = (RebalanceConfig(min_queries=16, overload_ratio=1.5)
                 if balanced else None)
    with TcpCluster(build_document(CONFIG), build_plan(CONFIG),
                    oa_config=_oa_config(), max_pending=MAX_PENDING,
                    service_delay=SERVICE_DELAY,
                    rebalance=rebalance) as tcp:
        run_open_loop(tcp.cluster, _workload(seed=11),
                      target_qps=WARMUP_QPS, duration=WARMUP_S,
                      seed=11, drain_timeout=DRAIN_TIMEOUT)
        moves = tcp.balancer.tick() if balanced else []
        result = run_open_loop(tcp.cluster, _workload(seed=seed),
                               target_qps=rate, duration=DURATION,
                               seed=seed, drain_timeout=DRAIN_TIMEOUT)
    return result, moves


def _climb(balanced):
    """Climb the shared ladder; stop after two consecutive misses."""
    best = 0.0
    rungs = []
    moved = 0
    misses = 0
    for rate in LADDER:
        result, moves = _one_window(balanced, rate, seed=3)
        moved = max(moved, len(moves))
        p99_ms = result.percentile(0.99) * 1000
        ok = (result.sustained and result.errors == 0
              and p99_ms <= SLO_P99_MS)
        rungs.append({**result.summary(), "slo_ok": ok,
                      "migrations": len(moves)})
        if ok:
            best = rate
            misses = 0
        else:
            misses += 1
            if misses >= 2:
                break
    return {"max_sustained_qps": best, "rungs": rungs,
            "migrations": moved}


def _run():
    off = _climb(balanced=False)
    on = _climb(balanced=True)
    probe_off, _ = _one_window(balanced=False, rate=PROBE_QPS, seed=5)
    probe_on, probe_moves = _one_window(balanced=True, rate=PROBE_QPS,
                                        seed=5)
    p99_off = probe_off.percentile(0.99) * 1000
    p99_on = probe_on.percentile(0.99) * 1000
    qps_gain = (on["max_sustained_qps"] / off["max_sustained_qps"]
                if off["max_sustained_qps"] else float("inf"))
    p99_gain = p99_off / p99_on if p99_on else 0.0
    return {
        "off": off,
        "on": on,
        "probe": {
            "target_qps": PROBE_QPS,
            "migrations": len(probe_moves),
            "off": probe_off.summary(),
            "on": probe_on.summary(),
        },
        "qps_gain": round(qps_gain, 2),
        "p99_gain": round(p99_gain, 2),
        "slo_p99_ms": SLO_P99_MS,
    }


def test_rebalancing_gain(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for mode in ("off", "on"):
        for rung in outcome[mode]["rungs"]:
            rows.append((
                f"{mode}@{rung['target_qps']:.0f}",
                rung["achieved_qps"],
                rung["latency_ms"]["p50"],
                rung["latency_ms"]["p99"],
                "yes" if rung["slo_ok"] else "no",
            ))
    print_table(
        f"Zipf-skewed rollups (skew {SKEW}), {SERVICE_DELAY * 1000:.0f}ms "
        f"per-site service time (sustained = completion >= 95%, no "
        f"errors, p99 <= {SLO_P99_MS:.0f}ms)",
        ["achieved", "p50 (ms)", "p99 (ms)", "sustained"],
        rows,
        note=(f"max sustained QPS: off "
              f"{outcome['off']['max_sustained_qps']:.0f}, on "
              f"{outcome['on']['max_sustained_qps']:.0f} "
              f"({outcome['qps_gain']:.1f}x); probe p99 @ "
              f"{PROBE_QPS:.0f} qps: "
              f"{outcome['probe']['off']['latency_ms']['p99']:.0f}ms -> "
              f"{outcome['probe']['on']['latency_ms']['p99']:.0f}ms "
              f"({outcome['p99_gain']:.1f}x)"),
    )
    write_report(
        RESULTS_FILE, "rebalance",
        params={"config": vars(CONFIG), "skew": SKEW,
                "service_delay_s": SERVICE_DELAY,
                "slo_p99_ms": SLO_P99_MS, "duration_s": DURATION,
                "warmup_qps": WARMUP_QPS, "ladder": LADDER,
                "probe_qps": PROBE_QPS, "max_pending": MAX_PENDING,
                "quick": QUICK},
        metrics=outcome,
    )

    # Both modes must hold at least the bottom rung.
    assert outcome["off"]["max_sustained_qps"] > 0
    assert outcome["on"]["max_sustained_qps"] > 0
    # The balancer actually migrated in the balanced runs.
    assert outcome["on"]["migrations"] >= 1
    assert outcome["probe"]["migrations"] >= 1
    # Migration never costs a query: every balanced window completed
    # everything it offered, including the windows climbing past the
    # unbalanced ceiling.
    for rung in outcome["on"]["rungs"]:
        assert rung["errors"] == 0 and rung["dropped"] == 0
    assert outcome["probe"]["on"]["errors"] == 0
    assert outcome["probe"]["on"]["dropped"] == 0
    # The headline: rebalancing buys >= MIN_GAIN in sustained rate, or
    # >= MIN_GAIN lower tail latency past the solo-site ceiling.
    assert outcome["qps_gain"] >= MIN_GAIN or \
        outcome["p99_gain"] >= MIN_GAIN


@pytest.mark.skipif(not STRESS, reason="set REPRO_BENCH_STRESS=1 for "
                    "the million-element scenario tier")
def test_rebalance_stress_million(benchmark):
    """The PR 9 scale scenario through the open-loop generator.

    ~1.02M elements over 73 in-process sites, a zipf-skewed
    update-heavy stream (the paper's ingest shape) plus leaf-zone
    rollups, with the balancer live between windows.  The bar is
    survival, not speed: zero errors, zero drops, and a balancer tick
    that runs against million-scale trackers.
    """
    from repro.net import Cluster

    config = million_config()
    cluster = Cluster(build_document(config), build_plan(config),
                      oa_config=_oa_config(),
                      rebalance=RebalanceConfig(min_queries=16,
                                                overload_ratio=1.5))

    def _stress():
        workload = ScenarioWorkload(config, shape="sum", skew=SKEW,
                                    update_fraction=0.98, pin_depth=3,
                                    seed=5)
        first = run_open_loop(cluster, workload, target_qps=150.0,
                              duration=8.0, seed=9, drain_timeout=120.0)
        moves = cluster.balancer.tick()
        second = run_open_loop(cluster, workload, target_qps=150.0,
                               duration=8.0, seed=10,
                               drain_timeout=120.0)
        return {"first": first.summary(), "second": second.summary(),
                "migrations": len(moves),
                "balancer": cluster.balancer.counters()}

    outcome = benchmark.pedantic(_stress, rounds=1, iterations=1)
    write_report(
        STRESS_RESULTS_FILE, "rebalance-stress",
        params={"config": vars(config), "skew": SKEW,
                "update_fraction": 0.98, "target_qps": 150.0,
                "duration_s": 8.0},
        metrics=outcome,
    )
    for window in ("first", "second"):
        assert outcome[window]["errors"] == 0
        assert outcome[window]["dropped"] == 0
        assert outcome[window]["sustained"]
