"""Recovery time vs. log length and checkpoint interval.

One site owns a flat region of nodes and absorbs a stream of sensor
updates through a :class:`~repro.durability.DurabilityManager`; the
process is then killed (``abort()``) and recovery is timed cold: open
the WAL (torn-tail scan), load the newest checkpoint, replay the tail.

The grid crosses the number of journalled updates with the checkpoint
interval, quantifying the durability subsystem's central trade-off:
frequent checkpoints buy short replays at the cost of more snapshot
writes on the hot path; rare checkpoints make writes cheap and
recovery long.  Results go to ``BENCH_recovery.json``;
``REPRO_BENCH_QUICK=1`` shrinks the grid for smoke runs.
"""

import os
import shutil
import tempfile
import time

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.core.database import SensorDatabase
from repro.core.status import Status, set_status
from repro.durability import (
    DurabilityConfig,
    DurabilityManager,
    partition_fingerprint,
)
from repro.xmlkit import Element

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N_NODES = 32 if QUICK else 128
UPDATE_COUNTS = (200, 800) if QUICK else (500, 2000, 8000)
CHECKPOINT_INTERVALS = (0, 100, 1000) if QUICK else (0, 100, 1000, 5000)
RESULTS_FILE = "BENCH_recovery.json"


def _build_database():
    root = Element("region", attrib={"id": "R"})
    set_status(root, Status.OWNED)
    for index in range(N_NODES):
        node = Element("node", attrib={"id": f"n{index:04d}"})
        set_status(node, Status.OWNED)
        node.append(Element("value", text="0"))
        root.append(node)
    return SensorDatabase(root, clock=lambda: 1000.0, site_id="s0")


def _run_point(n_updates, checkpoint_interval):
    directory = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        config = DurabilityConfig(directory=directory, sync_every=0,
                                  checkpoint_interval=checkpoint_interval)
        manager = DurabilityManager(config, "s0", clock=lambda: 1000.0)
        database = _build_database()
        manager.attach(database)

        started = time.perf_counter()
        for index in range(n_updates):
            path = ((("region", "R"),
                     ("node", f"n{index % N_NODES:04d}")))
            database.apply_update(path, values={"value": str(index)})
        journal_seconds = time.perf_counter() - started
        live = partition_fingerprint(database)
        wal_bytes = manager._wal.size_bytes()
        checkpoints = manager.stats["checkpoints_written"]
        manager.abort()  # the kill

        started = time.perf_counter()
        reborn = DurabilityManager(config, "s0", clock=lambda: 1000.0)
        recovered = reborn.recover()
        recovery_seconds = time.perf_counter() - started
        assert partition_fingerprint(recovered) == live
        replayed = reborn.stats["last_recovery_replayed"]
        reborn.close()
        return {
            "n_updates": n_updates,
            "checkpoint_interval": checkpoint_interval,
            "journal_seconds": journal_seconds,
            "recovery_seconds": recovery_seconds,
            "records_replayed": replayed,
            "wal_bytes_at_kill": wal_bytes,
            "checkpoints_written": checkpoints,
            "updates_per_second": (n_updates / journal_seconds
                                   if journal_seconds else 0.0),
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _run():
    return [
        _run_point(n_updates, interval)
        for n_updates in UPDATE_COUNTS
        for interval in CHECKPOINT_INTERVALS
    ]


def test_recovery_time_vs_log_length(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_table(
        f"Recovery time over {N_NODES}-node region "
        f"(byte-identical recovery asserted per point)",
        ["updates", "ckpt every", "journal s", "recover ms",
         "replayed", "wal KiB"],
        [
            (point["n_updates"],
             point["checkpoint_interval"] or "never",
             round(point["journal_seconds"], 3),
             round(point["recovery_seconds"] * 1000, 2),
             point["records_replayed"],
             round(point["wal_bytes_at_kill"] / 1024, 1))
            for point in points
        ],
        note="recover = WAL scan + checkpoint load + replay, timed "
             "cold; every point verified byte-identical to the "
             "pre-kill partition",
    )
    write_report(
        RESULTS_FILE, "recovery",
        params={"nodes": N_NODES, "update_counts": list(UPDATE_COUNTS),
                "checkpoint_intervals": list(CHECKPOINT_INTERVALS),
                "quick": QUICK},
        metrics=points,
    )

    by_key = {(p["n_updates"], p["checkpoint_interval"]): p
              for p in points}
    for n_updates in UPDATE_COUNTS:
        # No checkpoints: the whole history replays.
        assert by_key[(n_updates, 0)]["records_replayed"] == n_updates
        # Frequent checkpoints bound the replay by the interval.
        assert by_key[(n_updates, 100)]["records_replayed"] <= 100
