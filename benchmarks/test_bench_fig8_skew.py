"""Figure 8: load balancing a skewed workload by re-placement.

Paper setup: 90% of type-1/type-2 queries target one neighborhood;
QW-Mix2 is 50% type 1 + 50% type 2.  The balanced placement spreads the
hot neighborhood's blocks across all sites and achieves ~4x the
throughput of the original hierarchical placement on the skewed
workload, while staying comparable on the unskewed ones.

Run cache-less, as the load-balancing experiment demands: aggressive
caching would re-concentrate the hot data at one site (the cache-bypass
problem Section 5.5 calls out).
"""

from benchmarks.conftest import DURATION, print_table, run_point
from benchmarks.reporting import write_report
from repro.arch import balanced_hot_neighborhood, hierarchical
from repro.net import OAConfig
from repro.service import QueryWorkload

HOT_CITY = "Pittsburgh"
HOT_NEIGHBORHOOD = "Oakland"
RESULTS_FILE = "BENCH_fig8_skew.json"


def _workloads(config, skewed):
    kwargs = {}
    if skewed:
        kwargs = dict(skew=0.9, hot_city=HOT_CITY,
                      hot_neighborhood=HOT_NEIGHBORHOOD)
    return [
        ("QW-1", QueryWorkload.qw(config, 1, seed=201, **kwargs)),
        ("QW-2", QueryWorkload.qw(config, 2, seed=202, **kwargs)),
        ("QW-Mix2", QueryWorkload.qw_mix2(config, seed=203, **kwargs)),
    ]


def _run(config, document):
    no_cache = OAConfig(cache_results=False)
    placements = [
        ("original", hierarchical(config)),
        ("balanced", balanced_hot_neighborhood(config, HOT_CITY,
                                               HOT_NEIGHBORHOOD)),
    ]
    table = {}
    for name, workload in _workloads(config, skewed=True):
        for label, arch in placements:
            _sim, metrics = run_point(config, document, arch, workload,
                                      oa_config=no_cache, n_clients=16)
            table[(name, label)] = metrics.throughput
    return table


def test_figure8_skewed_load_balancing(benchmark, paper_config,
                                       paper_document):
    table = benchmark.pedantic(lambda: _run(paper_config, paper_document),
                               rounds=1, iterations=1)

    rows = [
        (name, table[(name, "original")], table[(name, "balanced")],
         round(table[(name, "balanced")] / max(table[(name, "original")],
                                               1e-9), 2))
        for name in ("QW-1", "QW-2", "QW-Mix2")
    ]
    print_table(
        "Figure 8: skewed workload (90% on one neighborhood)",
        ["original", "balanced", "speedup"], rows,
        note="paper shape: balanced ~4x original on the skewed workload",
    )
    write_report(
        RESULTS_FILE, "fig8_skew",
        params={"duration_s": DURATION, "clients": 16, "skew": 0.9,
                "hot_city": HOT_CITY,
                "hot_neighborhood": HOT_NEIGHBORHOOD},
        metrics={
            name: {
                "original": table[(name, "original")],
                "balanced": table[(name, "balanced")],
                "speedup": round(
                    table[(name, "balanced")]
                    / max(table[(name, "original")], 1e-9), 3),
            }
            for name in ("QW-1", "QW-2", "QW-Mix2")
        },
    )

    # The balanced placement must win clearly on every skewed workload.
    for name in ("QW-1", "QW-2", "QW-Mix2"):
        assert table[(name, "balanced")] > 1.5 * table[(name, "original")]
    # Type-1 queries route per-block, so they spread across all 9
    # machines and gain the most (paper's factor ~4 is driven by them).
    assert table[("QW-1", "balanced")] > 2.5 * table[("QW-1", "original")]
