"""Reactor vs. threaded runtime under open-loop wide-area ingest.

The serial framing protocol allows one in-flight frame per connection,
so the threaded runtime's throughput under WAN latency is bounded by
``sockets / RTT`` no matter how fast the CPU is.  The reactor runtime
pipelines many frames per connection, overlapping round-trips until it
hits the CPU ceiling instead.  This benchmark measures that gap
honestly:

* an **open-loop** load generator (seeded Poisson arrivals at a target
  rate, latency charged from the scheduled arrival -- no coordinated
  omission) offers an update-ingest workload fanning out across every
  leaf site of a two-level parking deployment;
* both runtimes get the same emulated WAN round-trip (``wan_rtt`` on
  the servers) and a comparable socket budget (16 serial client
  workers vs. 2 pipelined connections x 9 sites);
* a rate is **sustained** when >= 95% of offered requests complete
  *and* p99 latency stays under the SLO -- a saturated run completes
  everything eventually during drain, so completion alone is not
  enough.

The ladder climbs until two consecutive rates miss; the headline
metric is ``max sustained QPS`` per runtime.  Results go to
``BENCH_async.json``.  ``REPRO_BENCH_QUICK=1`` shrinks the ladders and
window for CI smoke runs.
"""

import os

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.arch import distributed_two_level
from repro.net.tcpruntime import TcpCluster
from repro.service import (
    ParkingConfig,
    UpdateWorkload,
    build_parking_document,
)
from repro.service.workload import run_open_loop

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
CONFIG = ParkingConfig(cities=3, neighborhoods_per_city=3,
                       blocks_per_neighborhood=2, spaces_per_block=2)
WAN_RTT = 0.04
SLO_P99_MS = 250.0
DURATION = 1.0 if QUICK else 2.5
DRAIN_TIMEOUT = 5.0 if QUICK else 10.0
SERIAL_WORKERS = 16
MAX_PENDING = 4096
LADDERS = {
    "threaded": [150] if QUICK else [100, 200, 300, 400],
    "reactor": [300, 450] if QUICK else [600, 900, 1200, 1500, 1800],
}
MIN_SPEEDUP = 1.5 if QUICK else 3.0
RESULTS_FILE = "BENCH_async.json"


def _one_rung(runtime, rate):
    """A fresh cluster on *runtime*, offered *rate* QPS of updates."""
    document = build_parking_document(CONFIG)
    arch = distributed_two_level(CONFIG)
    with TcpCluster(document, arch.plan, service="async-bench",
                    runtime=runtime, max_pending=MAX_PENDING,
                    wan_rtt=WAN_RTT) as tcp:
        workload = UpdateWorkload(CONFIG, seed=5)
        result = run_open_loop(tcp.cluster, workload, target_qps=rate,
                               duration=DURATION, seed=3,
                               max_workers=SERIAL_WORKERS,
                               drain_timeout=DRAIN_TIMEOUT)
        pool = dict(tcp.network.pool_stats)
    return result, pool


def _climb(runtime):
    """Climb the runtime's ladder; stop after two consecutive misses."""
    best = 0.0
    rungs = []
    pool = {}
    misses = 0
    for rate in LADDERS[runtime]:
        result, pool = _one_rung(runtime, rate)
        p99_ms = result.percentile(0.99) * 1000
        ok = result.sustained and p99_ms <= SLO_P99_MS
        rungs.append({**result.summary(), "slo_ok": ok})
        if ok:
            best = rate
            misses = 0
        else:
            misses += 1
            if misses >= 2:
                break
    return {"max_sustained_qps": best, "rungs": rungs, "pool": pool}


def _run():
    threaded = _climb("threaded")
    reactor = _climb("reactor")
    threaded_best = threaded["max_sustained_qps"]
    reactor_best = reactor["max_sustained_qps"]
    speedup = reactor_best / threaded_best if threaded_best else 0.0
    return {
        "threaded": threaded,
        "reactor": reactor,
        "speedup": round(speedup, 2),
        "slo_p99_ms": SLO_P99_MS,
    }


def test_reactor_pipelining_speedup(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for runtime in ("threaded", "reactor"):
        for rung in outcome[runtime]["rungs"]:
            rows.append((
                f"{runtime}@{rung['target_qps']:.0f}",
                rung["achieved_qps"],
                rung["latency_ms"]["p50"],
                rung["latency_ms"]["p99"],
                "yes" if rung["slo_ok"] else "no",
            ))
    print_table(
        f"Open-loop update ingest, {WAN_RTT * 1000:.0f}ms emulated WAN "
        f"RTT (sustained = completion >= 95% and p99 <= "
        f"{SLO_P99_MS:.0f}ms)",
        ["achieved", "p50 (ms)", "p99 (ms)", "sustained"],
        rows,
        note=(f"max sustained QPS: threaded "
              f"{outcome['threaded']['max_sustained_qps']:.0f}, reactor "
              f"{outcome['reactor']['max_sustained_qps']:.0f} "
              f"(speedup {outcome['speedup']:.1f}x)"),
    )
    write_report(
        RESULTS_FILE, "async",
        params={"config": vars(CONFIG), "wan_rtt_s": WAN_RTT,
                "slo_p99_ms": SLO_P99_MS, "duration_s": DURATION,
                "serial_workers": SERIAL_WORKERS,
                "max_pending": MAX_PENDING, "ladders": LADDERS,
                "arrival_seed": 3, "workload_seed": 5, "quick": QUICK},
        metrics=outcome,
    )

    # Both runtimes must hold at least their first rung.
    assert outcome["threaded"]["max_sustained_qps"] > 0
    assert outcome["reactor"]["max_sustained_qps"] > 0
    # The reactor runtime actually pipelined (no serial fallback).
    assert outcome["reactor"]["pool"].get("pipelined", 0) > 0
    assert outcome["reactor"]["pool"].get("serial_fallbacks", 0) == 0
    # The tentpole claim: pipelining overlaps WAN round-trips that the
    # serial protocol pays one socket at a time.
    assert outcome["speedup"] >= MIN_SPEEDUP
