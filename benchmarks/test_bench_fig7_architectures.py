"""Figure 7: query throughputs for the four architectures.

Paper result (read off the figure):

* Architecture 1 (centralized) handles very few queries on every
  workload;
* Architecture 2 roughly doubles Architecture 1 (updates are offloaded
  but every query still visits the central server);
* Architecture 3 triples Architecture 2 on QW-1 (DNS self-starting
  routes type-1 queries straight to the data), but the central server
  still bottlenecks QW-2..QW-4 and the mix;
* Architecture 4 (hierarchical) is ~25% *worse* than Architecture 3 on
  QW-1 (fewer machines hold block data) but at least 60% better than
  every other architecture on QW-Mix.
"""

from benchmarks.conftest import (
    CLIENTS,
    DURATION,
    UPDATE_RATE,
    print_table,
    run_point,
    workload_suite,
)
from benchmarks.reporting import write_report
from repro.arch import all_architectures

RESULTS_FILE = "BENCH_fig7_architectures.json"


def _run(config, document):
    architectures = all_architectures(config)
    table = {}
    for name, workload in workload_suite(config):
        for arch in architectures:
            _sim, metrics = run_point(config, document, arch, workload)
            table[(name, arch.name)] = metrics.throughput
    return architectures, table


def test_figure7_architecture_throughputs(benchmark, paper_config,
                                          paper_document):
    architectures, table = benchmark.pedantic(
        lambda: _run(paper_config, paper_document), rounds=1, iterations=1)

    columns = [a.name for a in architectures]
    rows = [
        (workload, *(table[(workload, a.name)] for a in architectures))
        for workload, _ in workload_suite(paper_config)
    ]
    print_table(
        "Figure 7: throughput (queries/sec) by architecture",
        columns, rows,
        note="paper shape: arch1 < arch2 < arch3; arch4 best on QW-Mix, "
             "~25% below arch3 on QW-1",
    )
    write_report(
        RESULTS_FILE, "fig7_architectures",
        params={"duration_s": DURATION, "clients": CLIENTS,
                "update_rate": UPDATE_RATE,
                "architectures": [a.name for a in architectures]},
        metrics={
            workload: {a.name: table[(workload, a.name)]
                       for a in architectures}
            for workload, _ in workload_suite(paper_config)
        },
    )

    t = table
    # Ordering on every workload: centralized is always worst.
    for workload, _ in workload_suite(paper_config):
        assert t[(workload, "centralized")] <= \
            min(t[(workload, a.name)] for a in architectures[1:]) * 1.05

    # Arch 2 ~2x arch 1 (updates offloaded).
    assert t[("QW-Mix", "centralized-query")] > \
        1.5 * t[("QW-Mix", "centralized")]

    # Arch 3 >> arch 2 on QW-1 (paper: ~3x).
    assert t[("QW-1", "distributed-two-level")] > \
        2.0 * t[("QW-1", "centralized-query")]

    # Arch 4 beats everything clearly on the mix (paper: >= 60%).
    others = max(
        t[("QW-Mix", "centralized")],
        t[("QW-Mix", "centralized-query")],
        t[("QW-Mix", "distributed-two-level")],
    )
    assert t[("QW-Mix", "hierarchical")] > 1.6 * others

    # Arch 4 is worse than arch 3 on QW-1, but only moderately
    # (paper: 25% worse).
    assert t[("QW-1", "hierarchical")] < t[("QW-1", "distributed-two-level")]
    assert t[("QW-1", "hierarchical")] > \
        0.5 * t[("QW-1", "distributed-two-level")]
