"""Summary rollups vs naive leaf fan-out at million-sensor scale.

The tentpole's acceptance bar, measured: on a ~1M-element deployment
(`repro.service.scenarios.million_config`: 512k sensors, 73 sites,
fan-out 8, depth 3), an aggregate answered through the summary-rollup
hierarchy must be **>= 10x faster** than the naive path that gathers
every leaf to one site -- at matched freshness bounds, with answers
proven byte-identical (`repr` equality; the rollup's exact rational
sum and the evaluator's correctly-rounded `fn_sum` print the same
float).

The naive side needs care: at full scale the gather fan-out
(serialize, ship and re-parse every sensor subtree, merge a million
elements into one database, then evaluate) runs for the better part of
an hour on this hardware.  It is measured in a subprocess with a
wall-clock cap; if the cap trips, the bench records the cap as a
**lower bound** on naive cost and computes speedups against it -- the
reported speedup is then itself a lower bound.  In quick mode
(``REPRO_BENCH_QUICK=1``) the naive path completes and its answers are
asserted byte-identical end to end; at full scale identity is proven
against a ground-truth evaluation of the undistributed global document
(leaf fan-out with the network removed, which also times the
pure-evaluation floor).

Timings per shape on the rollup side:

* ``agg_cold`` -- first rollup: partial-aggregate subqueries to every
  frontier, merge-states cached at each level (``count`` is the only
  true cold ask: all five shapes share one merge-state, so the first
  ask prewarms the rest);
* ``agg_warm`` -- the same bounded ask again, served from the summary
  cache.

Results are written to ``BENCH_aggregation.json``.  The speedup bar is
only asserted at full scale.
"""

import gc
import json
import math
import os
import subprocess
import sys
import tempfile
import time

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.agg import AggregationConfig, Partial
from repro.net import Cluster
from repro.service.scenarios import (
    build_document,
    build_plan,
    million_config,
    quick_config,
    rollup_query,
)
from repro.xpath import parser as xpath_parser
from repro.xpath.evaluator import Evaluator
from repro.xpath.types import node_string_value, to_number

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
NOW = 1_000.0
BOUND = 300.0  # the matched freshness bound on every query
RESULTS_FILE = "BENCH_aggregation.json"
SPEEDUP_BAR = 10.0

# Wall-clock cap on the naive gather fan-out (the measurement, not the
# cluster build), and an allowance for the build itself.
NAIVE_CAP_S = 30.0 if QUICK else 900.0
BUILD_ALLOWANCE_S = 60.0 if QUICK else 600.0

SHAPES = ("count", "sum", "avg", "min", "max")

# The subprocess that measures the naive path: build an
# aggregation-free cluster, ask count() through the ordinary gather
# fan-out, append one JSON line per completed step so a wall-clock kill
# keeps everything that finished.
_NAIVE_SCRIPT = """
import json, sys, time
from repro.net import Cluster
from repro.service.scenarios import (
    build_document, build_plan, million_config, quick_config,
    rollup_query)

spec = json.loads(sys.argv[1])
config = (quick_config(**spec["config"]) if spec["quick"]
          else million_config(**spec["config"]))
out = open(spec["out"], "a", buffering=1)

t0 = time.perf_counter()
cluster = Cluster(build_document(config), build_plan(config),
                  clock=lambda: spec["now"])
out.write(json.dumps(
    {"step": "build", "s": time.perf_counter() - t0}) + "\\n")

q = rollup_query(config, "count", bound=spec["bound"])
t0 = time.perf_counter()
value = cluster.scalar(q, at_site="root", now=spec["now"])
out.write(json.dumps({"step": "count", "s": time.perf_counter() - t0,
                      "value": repr(value)}) + "\\n")
"""


def _config():
    if QUICK:
        return quick_config(fanout=4, depth=2, sensors_per_group=10,
                            site_depth=1)
    return million_config()


def _config_overrides():
    if QUICK:
        return {"fanout": 4, "depth": 2, "sensors_per_group": 10,
                "site_depth": 1}
    return {}


def _timed(callable_):
    start = time.perf_counter()
    value = callable_()
    return value, time.perf_counter() - start


def _measure_naive():
    """Run the naive gather fan-out under a wall-clock cap.

    Returns ``(count_s, value_repr, lower_bound)``: the measured
    seconds (or the cap, as a lower bound, when the kill fired before
    the query came back).
    """
    with tempfile.NamedTemporaryFile("r", suffix=".jsonl") as handle:
        spec = json.dumps({"quick": QUICK, "config": _config_overrides(),
                           "now": NOW, "bound": BOUND,
                           "out": handle.name})
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        try:
            subprocess.run(
                [sys.executable, "-c", _NAIVE_SCRIPT, spec], env=env,
                timeout=BUILD_ALLOWANCE_S + NAIVE_CAP_S, check=True)
        except subprocess.TimeoutExpired:
            pass
        steps = {}
        for line in handle.read().splitlines():
            record = json.loads(line)
            steps[record["step"]] = record
    assert "build" in steps, (
        "naive cluster build did not finish inside "
        f"{BUILD_ALLOWANCE_S + NAIVE_CAP_S:g}s")
    if "count" in steps:
        return steps["count"]["s"], steps["count"]["value"], False
    return NAIVE_CAP_S, None, True


def _ground_truth(root, inner_source):
    """Leaf fan-out with the network removed: every matched value in
    one place, aggregated the evaluator's way (timed)."""
    inner = xpath_parser.parse(inner_source)
    matches, elapsed = _timed(
        lambda: Evaluator().evaluate(inner, root, now=NOW))
    values = [to_number(node_string_value(node)) for node in matches]
    partial = Partial.of_values(values)
    truth = {"count": float(len(values))}
    try:
        truth["sum"] = float(math.fsum(values))
    except (OverflowError, ValueError):
        truth["sum"] = float(sum(values))
    truth["avg"] = partial.finalize("avg")
    truth["min"] = float(min(values))
    truth["max"] = float(max(values))
    return truth, elapsed


def test_summary_rollups_vs_naive_fanout():
    config = _config()
    queries = {shape: rollup_query(config, shape, bound=BOUND)
               for shape in SHAPES}
    # Every element is stamped with the cluster clock (NOW) at build, so
    # inside the bound the predicate filters nothing: the unbounded path
    # names the same node set over the raw (unstamped) document.
    inner = rollup_query(config, "count")[len("count("):-1]

    document, build_s = _timed(lambda: build_document(config))
    truth, naive_local_s = _ground_truth(document, inner)

    mismatches = []

    def check(shape, value, path):
        if repr(value) != repr(truth[shape]):
            mismatches.append(
                f"{path} {shape}: {value!r} != truth {truth[shape]!r}")

    # -- the naive path: distributed gather fan-out, capped ------------
    naive_s, naive_value, naive_is_lower_bound = _measure_naive()
    if naive_value is not None and naive_value != repr(truth["count"]):
        mismatches.append(
            f"naive count: {naive_value} != truth {truth['count']!r}")

    # -- the rollup path -----------------------------------------------
    cluster = Cluster(document, build_plan(config), clock=lambda: NOW,
                      aggregation=AggregationConfig())
    agg_cold, agg_warm = {}, {}
    for shape in SHAPES:
        value, agg_cold[shape] = _timed(
            lambda q=queries[shape]: cluster.scalar(q, at_site="root",
                                                    now=NOW))
        check(shape, value, "agg_cold")
        value, agg_warm[shape] = _timed(
            lambda q=queries[shape]: cluster.scalar(q, at_site="root",
                                                    now=NOW))
        check(shape, value, "agg_warm")
    counters = cluster.agents["root"].aggregation.counters()
    cluster.shutdown(final_checkpoint=False)
    del cluster
    gc.collect()

    assert not mismatches, mismatches

    # count prewarmed the rest: every shape shares one merge-state, so
    # only the first bounded ask computes.
    assert counters["summary"]["hits"] >= len(SHAPES) * 2 - 1

    # Speedups vs the naive fan-out (lower bounds when the cap fired).
    bound_mark = ">=" if naive_is_lower_bound else ""
    speedup_cold = naive_s / max(agg_cold["count"], 1e-9)
    speedup_warm = {s: naive_s / max(agg_warm[s], 1e-9) for s in SHAPES}
    floor_speedup = naive_local_s / max(max(agg_warm.values()), 1e-9)

    rows = []
    for shape in SHAPES:
        rows.append([
            shape,
            f"{bound_mark}{naive_s * 1e3:.0f}" if shape == "count"
            else "-",
            f"{agg_cold[shape] * 1e3:.1f}",
            f"{agg_warm[shape] * 1e3:.3f}",
            f"{bound_mark}{speedup_warm[shape]:.0f}x",
        ])
    print_table(
        f"{config.element_count} elements, {config.site_count} sites, "
        f"bound {BOUND:g}s (answers byte-identical)",
        ["naive ms", "rollup cold ms", "summary warm ms", "speedup"],
        rows,
        note=("naive gather killed at the wall-clock cap; its time and "
              "every speedup are lower bounds"
              if naive_is_lower_bound else ""))

    if not QUICK:
        for shape in SHAPES:
            assert speedup_warm[shape] >= SPEEDUP_BAR, (
                f"summary-served {shape} only "
                f"{speedup_warm[shape]:.1f}x over naive fan-out")
        # Even the pure-evaluation floor (no network at all) is beaten
        # by better than the bar.
        assert floor_speedup >= SPEEDUP_BAR

    write_report(
        RESULTS_FILE, "aggregation",
        params={
            "quick": QUICK,
            "elements": config.element_count,
            "sensors": config.sensor_count,
            "sites": config.site_count,
            "fanout": config.fanout,
            "depth": config.depth,
            "sensors_per_group": config.sensors_per_group,
            "freshness_bound_s": BOUND,
            "speedup_bar": SPEEDUP_BAR,
            "naive_cap_s": NAIVE_CAP_S,
        },
        metrics={
            "document_build_s": round(build_s, 3),
            "naive_local_eval_s": round(naive_local_s, 4),
            "naive_count_s": round(naive_s, 4),
            "naive_is_lower_bound": naive_is_lower_bound,
            "agg_cold_s": {k: round(v, 4) for k, v in agg_cold.items()},
            "agg_warm_s": {k: round(v, 6) for k, v in agg_warm.items()},
            "speedup_cold_count": round(speedup_cold, 1),
            "speedup_warm": {k: round(v, 1)
                             for k, v in speedup_warm.items()},
            "local_eval_floor_speedup": round(floor_speedup, 1),
            "answers_identical": True,
            "root_counters": {
                key: counters[key]
                for key in ("answers", "rollups", "partials_fetched",
                            "summary_hit_ratio")},
        })
