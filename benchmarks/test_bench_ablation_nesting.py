"""Ablation: nesting-depth strategies (Section 4, "Larger nesting depths").

The paper implements *fetch-subtree* (stop at the earliest tag a nested
predicate references, pull the whole subtree, evaluate locally) and
proposes *boolean probes* (evaluate the nested predicate remotely) as
future work.  Both are implemented here; this ablation compares their
traffic on the paper's own example shapes:

* the "min price" query (upward reference) -- the subtree is needed for
  the answer anyway, so fetch-subtree is near-optimal;
* the "frivolous" cities-with-an-Oakland query, where fetching all the
  data below every city is overkill and probes shine.
"""

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.arch import hierarchical
from repro.core import BOOLEAN_PROBE, FETCH_SUBTREE
from repro.net import Cluster, OAConfig
from repro.service import build_parking_document

RESULTS_FILE = "BENCH_ablation_nesting.json"

PREFIX = ("/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']")

MIN_PRICE = (
    PREFIX + "/city[@id='Pittsburgh']/neighborhood[@id='Oakland']"
    "/block[@id='1']/parkingSpace[not(price > ../parkingSpace/price)]"
)
FRIVOLOUS = (
    PREFIX + "/city[./neighborhood[@id='Oakland']]"
    "/neighborhood[@id='Oakland']/available-spaces"
)


def _traffic(config, query, strategy):
    document = build_parking_document(config)
    cluster = Cluster(document, hierarchical(config).plan,
                      oa_config=OAConfig(nesting_strategy=strategy),
                      count_bytes=True)
    results, _site, _outcome = cluster.query(query, at_site="site-0")
    return {
        "results": len(results),
        "messages": cluster.network.traffic.messages,
        "kb": cluster.network.traffic.bytes / 1024,
    }


def _run(config):
    table = {}
    for name, query in (("min-price", MIN_PRICE), ("frivolous", FRIVOLOUS)):
        for label, strategy in (("fetch-subtree", FETCH_SUBTREE),
                                ("boolean-probe", BOOLEAN_PROBE)):
            table[(name, label)] = _traffic(config, query, strategy)
    return table


def test_ablation_nesting_strategies(benchmark, paper_config):
    table = benchmark.pedantic(lambda: _run(paper_config), rounds=1,
                               iterations=1)

    rows = [
        (f"{name} / {label}",
         stats["results"], stats["messages"], round(stats["kb"], 1))
        for (name, label), stats in table.items()
    ]
    print_table("Ablation: nesting-depth strategies (cold caches)",
                ["results", "messages", "KiB"], rows,
                note="paper: fetch-subtree implemented; probes proposed "
                     "to avoid over-fetching on existence predicates")
    write_report(
        RESULTS_FILE, "ablation_nesting",
        params={"queries": ["min-price", "frivolous"],
                "strategies": ["fetch-subtree", "boolean-probe"]},
        metrics={
            f"{name} / {label}": {key: round(value, 3)
                                  for key, value in stats.items()}
            for (name, label), stats in table.items()
        },
    )

    # Both strategies return the same answers.
    for name in ("min-price", "frivolous"):
        assert table[(name, "fetch-subtree")]["results"] == \
            table[(name, "boolean-probe")]["results"]

    # On the existence-style query the probe strategy moves fewer bytes
    # than fetching whole city subtrees (the paper's motivation).
    assert table[("frivolous", "boolean-probe")]["kb"] < \
        table[("frivolous", "fetch-subtree")]["kb"]
