"""Ablation: subquery generalization levels (Section 3.3).

The paper generalizes subqueries so answers are cacheable supersets.
This ablation quantifies the design space on predicate-bearing
workloads (``parkingSpace[available='yes']`` selections):

* ``answer`` (paper-faithful): the smallest cacheable superset -- the
  cache answers repeats of the *same* shape, but ID stubs that failed a
  predicate remotely must be re-checked;
* ``aggressive``: residual subqueries drop non-id predicates, fetching
  whole sibling sets -- more bytes on the first query, zero remote
  traffic on any repeat.
"""

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.arch import hierarchical
from repro.core import GENERALIZE_AGGRESSIVE, GENERALIZE_ANSWER
from repro.net import Cluster, OAConfig
from repro.service import QueryWorkload, build_parking_document

RESULTS_FILE = "BENCH_ablation_generalized.json"


def _run(config):
    table = {}
    for label, generalization in (
        ("answer", GENERALIZE_ANSWER),
        ("aggressive", GENERALIZE_AGGRESSIVE),
    ):
        document = build_parking_document(config)
        cluster = Cluster(
            document, hierarchical(config).plan,
            oa_config=OAConfig(generalization=generalization),
            count_bytes=True)
        workload = QueryWorkload.qw(config, 3, selection="available",
                                    seed=401)
        queries = [workload.sample()[0] for _ in range(40)]

        # First query alone: how much does one miss fetch?
        cluster.query(queries[0])
        first_bytes = cluster.network.traffic.bytes

        # Rest of the cold pass.
        for query in queries[1:]:
            cluster.query(query)
        cold_messages = cluster.network.traffic.messages
        cold_bytes = cluster.network.traffic.bytes

        # Warm pass: identical queries again.
        for query in queries:
            cluster.query(query)
        warm_messages = cluster.network.traffic.messages - cold_messages
        warm_bytes = cluster.network.traffic.bytes - cold_bytes

        table[label] = {
            "first_kb": first_bytes / 1024,
            "cold_messages": cold_messages,
            "cold_kb": cold_bytes / 1024,
            "warm_messages": warm_messages,
            "warm_kb": warm_bytes / 1024,
        }
    return table


def test_ablation_generalization(benchmark, paper_config):
    table = benchmark.pedantic(lambda: _run(paper_config), rounds=1,
                               iterations=1)

    rows = [
        (label,
         round(stats["first_kb"], 1),
         stats["cold_messages"], round(stats["cold_kb"], 1),
         stats["warm_messages"], round(stats["warm_kb"], 1))
        for label, stats in table.items()
    ]
    print_table(
        "Ablation: subquery generalization (40 type-3 predicate queries)",
        ["1st-q KiB", "cold msgs", "cold KiB", "warm msgs", "warm KiB"],
        rows,
        note="answer mode moves fewer bytes per miss but must re-check "
             "predicate-failed stubs (one subquery per incomplete node, "
             "as the paper's QEG does) on every repeat; aggressive mode "
             "over-fetches once and then repeats are free",
    )
    write_report(
        RESULTS_FILE, "ablation_generalized",
        params={"queries": 40, "workload": "QW-3 selection=available",
                "seed": 401},
        metrics={label: {key: round(value, 3)
                         for key, value in stats.items()}
                 for label, stats in table.items()},
    )

    # Aggressive fetches more on the very first miss...
    assert table["aggressive"]["first_kb"] >= table["answer"]["first_kb"]
    # ...and eliminates warm-pass remote traffic entirely.
    assert table["aggressive"]["warm_messages"] == 0
    # The faithful mode keeps paying predicate re-checks on repeats --
    # the cost this ablation quantifies.
    assert table["answer"]["warm_messages"] > 0
