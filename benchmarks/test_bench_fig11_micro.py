"""Figure 11: micro-benchmarks of query processing time.

Paper experiment: a type-1 query is artificially routed to the OA
owning the county / city / neighborhood node, under three settings --
small database with naive XSLT creation, small database with fast XSLT
creation, and large (8x) database with fast creation.  Findings:

* routing directly to the data's site cuts total processing time by
  over 50% versus entering at the county;
* naive XSLT creation dominates total time; direct (fast) creation
  halves the total;
* the 8x database increases per-node processing by less than 20%.

Reproduced in two layers: (a) real wall-clock measurements of this
repository's own QEG/XSLT machinery, and (b) the Figure 11 breakdown
regenerated from the cost model over real query traces.
"""

import time

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.arch import hierarchical
from repro.net import OAConfig
from repro.service import ParkingConfig, build_parking_document, type1_query
from repro.sim import CostModel, SimulatedCluster

RESULTS_FILE = "BENCH_fig11_micro.json"


# ----------------------------------------------------------------------
# (a) Real engine measurements
# ----------------------------------------------------------------------
def _site_db(config, document):
    from repro.core import PartitionPlan

    plan = PartitionPlan({"one": [(("usRegion", config.region),)]})
    return plan.build_databases(document)["one"]


def test_engine_naive_codegen(benchmark, paper_config):
    """Naive creation: generate + compile a QEG stylesheet per query."""
    from repro.core import HierarchySchema, compile_pattern
    from repro.xslt import create_naive

    document = build_parking_document(paper_config)
    schema = HierarchySchema.from_document(document)
    query = type1_query(paper_config, "Pittsburgh", "Oakland", "1")
    pattern = compile_pattern(query, schema=schema)
    benchmark(lambda: create_naive(pattern))


def test_engine_fast_codegen(benchmark, paper_config):
    """Fast creation: shape-cached stylesheet, per-query id bindings."""
    from repro.core import HierarchySchema, compile_pattern
    from repro.xslt import FastQEGCodegen

    document = build_parking_document(paper_config)
    schema = HierarchySchema.from_document(document)
    codegen = FastQEGCodegen()
    queries = [
        compile_pattern(type1_query(paper_config, "Pittsburgh", "Oakland",
                                    block), schema=schema)
        for block in paper_config.block_ids()
    ]
    codegen.create(queries[0])  # prime the shape cache
    state = {"index": 0}

    def create():
        pattern = queries[state["index"] % len(queries)]
        state["index"] += 1
        codegen.create(pattern)

    benchmark(create)


def test_engine_qeg_execution_small(benchmark, paper_config):
    from repro.core import HierarchySchema, compile_pattern, run_qeg

    document = build_parking_document(paper_config)
    db = _site_db(paper_config, document)
    schema = HierarchySchema.from_document(document)
    pattern = compile_pattern(
        type1_query(paper_config, "Pittsburgh", "Oakland", "1"),
        schema=schema)
    benchmark(lambda: run_qeg(db, pattern))


def test_engine_qeg_execution_large(benchmark):
    from repro.core import HierarchySchema, compile_pattern, run_qeg

    config = ParkingConfig.paper_large()
    document = build_parking_document(config)
    db = _site_db(config, document)
    schema = HierarchySchema.from_document(document)
    pattern = compile_pattern(
        type1_query(config, "Pittsburgh", "Oakland", "1"), schema=schema)
    benchmark(lambda: run_qeg(db, pattern))


def test_fast_creation_saves_half(benchmark, paper_config):
    """The headline Section 4 claim, on this repository's own engine."""
    from repro.core import HierarchySchema, compile_pattern
    from repro.xslt import FastQEGCodegen, create_naive

    document = build_parking_document(paper_config)
    schema = HierarchySchema.from_document(document)
    patterns = [
        compile_pattern(type1_query(paper_config, "Pittsburgh", "Oakland",
                                    block), schema=schema)
        for block in paper_config.block_ids()
    ]

    def naive_round():
        for pattern in patterns:
            create_naive(pattern)

    benchmark.pedantic(naive_round, rounds=1, iterations=1)
    started = time.perf_counter()
    naive_round()
    naive_cost = time.perf_counter() - started

    codegen = FastQEGCodegen()
    codegen.create(patterns[0])
    started = time.perf_counter()
    for pattern in patterns:
        codegen.create(pattern)
    fast_cost = time.perf_counter() - started

    print(f"\nnaive creation: {1000 * naive_cost / len(patterns):.3f} ms; "
          f"fast creation: {1000 * fast_cost / len(patterns):.4f} ms "
          f"({naive_cost / fast_cost:.0f}x)")
    assert fast_cost < naive_cost / 2


# ----------------------------------------------------------------------
# (b) The Figure 11 breakdown from the cost model
# ----------------------------------------------------------------------
def _chain_latency(node, cost, fast):
    """Latency of a trace chain with empty queues (children parallel)."""
    service = cost.query_service(0, fast=fast, messages=node.messages,
                                 forwarded=bool(node.children))
    if not node.children:
        return service
    return service + max(
        2 * cost.network_latency + _chain_latency(child, cost, fast)
        for child in node.children
    )


def _routed_total(config, document, entry_level, fast, cost):
    """Total processing time of a type-1 query entered at *entry_level*."""
    needed_sites = (len(config.city_names())
                    * len(config.neighborhood_names())
                    + len(config.city_names()) + 1)
    sim = SimulatedCluster(document.copy(),
                           hierarchical(config, n_sites=needed_sites),
                           oa_config=OAConfig(fast_codegen=fast,
                                              cache_results=False),
                           cost_model=cost)
    query = type1_query(config, "Pittsburgh", "Oakland", "1")
    owner_of = sim.cluster.owner_map
    level_paths = {
        "county": (("usRegion", config.region), ("state", config.state),
                   ("county", config.county)),
        "city": (("usRegion", config.region), ("state", config.state),
                 ("county", config.county), ("city", "Pittsburgh")),
        "neighborhood": (("usRegion", config.region),
                         ("state", config.state),
                         ("county", config.county), ("city", "Pittsburgh"),
                         ("neighborhood", "Oakland")),
    }
    entry = owner_of[level_paths[entry_level]]
    _results, trace = sim.execute_query(query, entry)

    # Components per the cost model, summed over the chain.
    def components(node):
        forwarded = bool(node.children)
        breakdown = cost.breakdown(
            sim.cluster.database(node.site).size(), fast=fast,
            messages=node.messages)
        if forwarded:
            breakdown["create"] *= cost.forward_factor
            breakdown["execute"] *= cost.forward_factor
        for child in node.children:
            child_parts = components(child)
            for key, value in child_parts.items():
                breakdown[key] = breakdown.get(key, 0) + value
        return breakdown

    parts = components(trace)
    parts["total"] = sum(parts.values())
    return parts


def test_figure11_breakdown(benchmark, paper_config):
    small = build_parking_document(paper_config)
    large_config = ParkingConfig.paper_large()
    large = build_parking_document(large_config)
    cost = CostModel()

    def run():
        table = {}
        for label, config, document, fast in (
            ("small+naive", paper_config, small, False),
            ("small+fast", paper_config, small, True),
            ("large+fast", large_config, large, True),
        ):
            for level in ("county", "city", "neighborhood"):
                table[(label, level)] = _routed_total(
                    config, document, level, fast, cost)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label in ("small+naive", "small+fast", "large+fast"):
        for level in ("county", "city", "neighborhood"):
            parts = table[(label, level)]
            rows.append((
                f"{label} @ {level}",
                1000 * parts["create"],
                1000 * parts["execute"],
                1000 * parts["communication"],
                1000 * parts["rest"],
                1000 * parts["total"],
            ))
    print_table("Figure 11: processing time breakdown (ms)",
                ["create", "execute", "comm", "rest", "total"], rows,
                note="paper shape: direct routing >50% cheaper; fast "
                     "creation >50% cheaper; 8x data < +20% execute")
    write_report(
        RESULTS_FILE, "fig11_micro",
        params={"settings": ["small+naive", "small+fast", "large+fast"],
                "entry_levels": ["county", "city", "neighborhood"]},
        metrics={
            f"{label} @ {level}": {
                part: round(1000 * value, 4)
                for part, value in table[(label, level)].items()
            }
            for label in ("small+naive", "small+fast", "large+fast")
            for level in ("county", "city", "neighborhood")
        },
    )

    # Direct routing saves over ~half versus entering at the county.
    for label in ("small+naive", "small+fast", "large+fast"):
        county = table[(label, "county")]["total"]
        direct = table[(label, "neighborhood")]["total"]
        assert direct < 0.65 * county

    # Fast creation halves total time at every level (naive creation
    # dominates, as the paper observes).
    for level in ("county", "city", "neighborhood"):
        naive = table[("small+naive", level)]["total"]
        fast = table[("small+fast", level)]["total"]
        assert table[("small+naive", level)]["create"] > 0.4 * naive
        assert fast < 0.55 * naive

    # The 8x database grows per-query execution by < 25%.
    for level in ("county", "city", "neighborhood"):
        small_exec = table[("small+fast", level)]["execute"]
        large_exec = table[("large+fast", level)]["execute"]
        assert large_exec < 1.25 * small_exec
