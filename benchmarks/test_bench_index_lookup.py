"""Indexed fragment store: id-path lookup and re-serialization cost.

A 10k-node sensor fragment is queried through the database's id-path
index and through the seed's linear child-list scan; the index must
resolve deep paths at least 10x faster.  The serialization memo is
measured the same way: after a point update, re-serializing the whole
document must run at least 5x faster than the uncached serializer,
since only the root-to-leaf spine is rebuilt.

Results are also written to ``BENCH_index_lookup.json`` so CI can
archive the numbers.  ``REPRO_BENCH_QUICK=1`` shrinks the document and
iteration counts for smoke runs.
"""

import os
import random
import time

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.core import SensorDatabase
from repro.xmlkit import Element, serialize

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
GROUPS = 20 if QUICK else 100
SENSORS = 25 if QUICK else 100  # GROUPS * SENSORS IDable leaves
LOOKUPS = 400 if QUICK else 2000
UPDATES = 100 if QUICK else 400
RESERIALIZE_ROUNDS = 3 if QUICK else 10
#: The 10x target is for the full 10k-node fragment; the quick tree is
#: small enough that the linear baseline is legitimately cheap.
MIN_FIND_SPEEDUP = 3.0 if QUICK else 10.0
MIN_SERIALIZE_SPEEDUP = 5.0
RESULTS_FILE = "BENCH_index_lookup.json"


def _build_database():
    root = Element("region", attrib={"id": "R", "status": "id-complete"})
    for group in range(GROUPS):
        node = Element("group", attrib={
            "id": f"g{group:03d}", "status": "owned", "timestamp": "0.0"})
        for sensor in range(SENSORS):
            leaf = Element("sensor", attrib={
                "id": f"s{sensor:03d}", "status": "owned",
                "timestamp": "0.0"})
            leaf.append(Element("value", text=str(sensor)))
            node.append(leaf)
        root.append(node)
    return SensorDatabase(root, clock=lambda: 1.0)


def _sample_paths(rng, count):
    return [
        (("region", "R"),
         ("group", f"g{rng.randrange(GROUPS):03d}"),
         ("sensor", f"s{rng.randrange(SENSORS):03d}"))
        for _ in range(count)
    ]


def _linear_find(root, id_path):
    """The seed's lookup: a linear child-list scan per hop."""
    if (root.tag, root.get("id")) != id_path[0]:
        return None
    current = root
    for tag, identifier in id_path[1:]:
        found = None
        for child in current.children:
            if (isinstance(child, Element) and child.tag == tag
                    and child.get("id") == identifier):
                found = child
                break
        if found is None:
            return None
        current = found
    return current


def _time(thunk):
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started


def _run():
    database = _build_database()
    rng = random.Random(42)
    paths = _sample_paths(rng, LOOKUPS)
    database.find(paths[0])  # build the index outside the timed region

    # No asserts inside the timed loops: pytest's assertion rewriting
    # instruments them heavily enough to mask the lookup cost.
    def indexed():
        missing = 0
        for path in paths:
            if database.find(path) is None:
                missing += 1
        return missing

    def linear():
        missing = 0
        for path in paths:
            if _linear_find(database.root, path) is None:
                missing += 1
        return missing

    assert linear() == 0 and indexed() == 0  # warm up + sanity
    linear_time = _time(linear)
    indexed_time = _time(indexed)

    update_paths = _sample_paths(rng, UPDATES)

    def updates():
        for index, path in enumerate(update_paths):
            database.apply_update(path, values={"value": str(index)})

    update_time = _time(updates)

    # Re-serialization after a point update: memoized vs from scratch.
    serialize(database.root)  # warm the memo
    reserialize_paths = _sample_paths(rng, RESERIALIZE_ROUNDS)

    def reserialize(use_cache):
        def thunk():
            for index, path in enumerate(reserialize_paths):
                database.apply_update(path, values={"value": f"r{index}"})
                serialize(database.root, use_cache=use_cache)
        return thunk

    uncached_time = _time(reserialize(False))
    cached_time = _time(reserialize(True))

    return {
        "nodes": GROUPS * SENSORS + GROUPS + 1,
        "lookups": LOOKUPS,
        "linear_ops_per_s": LOOKUPS / linear_time,
        "indexed_ops_per_s": LOOKUPS / indexed_time,
        "find_speedup": linear_time / indexed_time,
        "update_ops_per_s": UPDATES / update_time,
        "reserialize_rounds": RESERIALIZE_ROUNDS,
        "uncached_serialize_s": uncached_time / RESERIALIZE_ROUNDS,
        "cached_serialize_s": cached_time / RESERIALIZE_ROUNDS,
        "serialize_speedup": uncached_time / cached_time,
        "index_stats": {
            key: database.stats[key]
            for key in ("index_hits", "index_misses", "index_rebuilds")
        },
    }


def test_index_lookup_speedup(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_table(
        f"Id-path lookup over a {outcome['nodes']}-node fragment",
        ["ops/s", "speedup"],
        [
            ("linear scan", outcome["linear_ops_per_s"], 1.0),
            ("indexed", outcome["indexed_ops_per_s"],
             round(outcome["find_speedup"], 1)),
            ("find+apply_update", outcome["update_ops_per_s"], ""),
        ],
    )
    print_table(
        "Whole-document re-serialization after a point update",
        ["s/round", "speedup"],
        [
            ("uncached", outcome["uncached_serialize_s"], 1.0),
            ("memoized", outcome["cached_serialize_s"],
             round(outcome["serialize_speedup"], 1)),
        ],
    )
    write_report(
        RESULTS_FILE, "index_lookup",
        params={"groups": GROUPS, "sensors": SENSORS, "lookups": LOOKUPS,
                "updates": UPDATES,
                "reserialize_rounds": RESERIALIZE_ROUNDS, "quick": QUICK},
        metrics=outcome,
    )

    assert outcome["index_stats"]["index_rebuilds"] <= 2
    assert outcome["find_speedup"] >= MIN_FIND_SPEEDUP
    assert outcome["serialize_speedup"] >= MIN_SERIALIZE_SPEEDUP
