"""Figure 10: caching throughputs on the hierarchical architecture.

Paper configurations: no caching; caching with 0% hits (overhead only);
50% hits; 100% hits.  Findings to reproduce:

* caching induces minimal overhead (0%-hit ≈ no-caching);
* type 1/2 workloads are unaffected (their queries already run at the
  site holding all the data);
* type 3/4 throughput *drops* as the hit ratio rises: the few top-level
  sites stop forwarding (cheap) and start serving full answers
  (expensive), becoming the bottleneck;
* the realistic mix gains up to ~33%, because the otherwise idle
  top-level sites absorb load from the lower levels.

The hit ratio is controlled the way the paper's setup implies: before a
"miss" query, the entry site's cached fragments are evicted, so the
query must re-gather; "hit" queries find the cache warm.
"""

import random

from benchmarks.conftest import print_table, run_point, workload_suite
from benchmarks.reporting import write_report
from repro.arch import hierarchical
from repro.net import OAConfig

RESULTS_FILE = "BENCH_fig10_caching.json"


def _pre_query_evictor(sim, probability, seed):
    """Evict the entry site's cache before a query with *probability*."""
    rng = random.Random(seed)

    def pre_query(query, _query_type):
        if rng.random() < probability:
            entry = sim.architecture.entry_site(sim.cluster, query)
            sim.cluster.database(entry).evict_all_cached()

    return pre_query


def _run(config, document):
    configurations = [
        ("no-caching", OAConfig(cache_results=False), None),
        ("cache-0%hits", OAConfig(cache_results=True), 1.0),
        ("cache-50%hits", OAConfig(cache_results=True), 0.5),
        ("cache-100%hits", OAConfig(cache_results=True), 0.0),
    ]
    table = {}
    for name, workload in workload_suite(config):
        for label, oa_config, evict_probability in configurations:
            arch = hierarchical(config)
            from repro.sim import CostModel, SimulatedCluster
            from repro.service import UpdateWorkload

            sim = SimulatedCluster(document.copy(), arch,
                                   cost_model=CostModel(),
                                   oa_config=oa_config)
            pre_query = None
            if evict_probability is not None and evict_probability > 0:
                pre_query = _pre_query_evictor(sim, evict_probability,
                                               seed=hash((name, label)) % 997)
            metrics = sim.run(
                workload, n_clients=12, duration=15.0, warmup=4.0,
                update_workload=UpdateWorkload(config, seed=97),
                update_rate=100.0, pre_query=pre_query)
            table[(name, label)] = metrics.throughput
    return configurations, table


def test_figure10_caching_throughputs(benchmark, paper_config,
                                      paper_document):
    configurations, table = benchmark.pedantic(
        lambda: _run(paper_config, paper_document), rounds=1, iterations=1)

    labels = [label for label, _cfg, _p in configurations]
    rows = [
        (name, *(table[(name, label)] for label in labels))
        for name, _ in workload_suite(paper_config)
    ]
    print_table("Figure 10: caching throughputs (Architecture 4)",
                labels, rows,
                note="paper shape: 0%-hits ~ no-caching; QW-3/QW-4 drop "
                     "at 100% hits; QW-Mix gains up to ~33%")
    write_report(
        RESULTS_FILE, "fig10_caching",
        params={"architecture": "hierarchical",
                "configurations": labels},
        metrics={
            "throughput_qps": {
                f"{name}/{label}": value
                for (name, label), value in table.items()
            },
        },
    )

    t = table
    # Minimal overhead: caching with no hits within 25% of no caching.
    for name in ("QW-1", "QW-2", "QW-3", "QW-4", "QW-Mix"):
        assert t[(name, "cache-0%hits")] > 0.7 * t[(name, "no-caching")]

    # Type 1/2 unaffected by the hit ratio (queries already local).
    for name in ("QW-1", "QW-2"):
        low = min(t[(name, label)] for label in labels)
        high = max(t[(name, label)] for label in labels)
        assert high < 1.35 * low

    # Type 3/4: 100% hits concentrates work on the few top-level sites
    # and *reduces* throughput versus forwarding.
    for name in ("QW-3", "QW-4"):
        assert t[(name, "cache-100%hits")] < t[(name, "no-caching")]

    # The realistic mix benefits from caching.
    assert t[("QW-Mix", "cache-100%hits")] > t[("QW-Mix", "no-caching")]
