"""Section 5.2: sensor update handling.

Paper results: a single OA handles about 200 updates/second, and total
update capacity scales linearly with the number of OAs the data is
distributed over.

Measured here two ways: the simulated per-OA capacity under an offered
load sweep, and the real wall-clock rate of this repository's engine
applying updates (which is far faster than the 2003 Java prototype --
the linear-scaling *shape* is the reproduced claim).
"""

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.arch import all_architectures, hierarchical
from repro.service import (
    QueryWorkload,
    UpdateWorkload,
)
from repro.sim import CostModel, SimulatedCluster

RESULTS_FILE = "BENCH_updates.json"


class _IdleWorkload:
    """A query workload that is never sampled (update-only runs)."""

    def sample(self):  # pragma: no cover - only used if clients > 0
        raise AssertionError("no queries expected")


def _sustained_updates(config, document, architecture, offered_rate,
                       duration=20.0):
    """Updates applied per second under *offered_rate* updates/sec."""
    sim = SimulatedCluster(document.copy(), architecture,
                           cost_model=CostModel())
    updates = UpdateWorkload(config, seed=77)
    sim.run(_IdleWorkload(), n_clients=0, duration=duration, warmup=0,
            update_workload=updates, update_rate=offered_rate)
    applied = sum(
        server.served for server in sim.servers.values()
    )
    return applied / duration


def _run(config, document):
    centralized_arch = all_architectures(config)[0]
    results = []
    # One OA saturates around 1/update_cost = 200/s.
    for offered in (100, 200, 400, 800):
        sustained = _sustained_updates(config, document, centralized_arch,
                                       offered)
        results.append(("1 OA", offered, sustained))
    # Nine OAs: capacity scales with the number of sites owning data.
    for offered in (400, 800, 1600):
        sustained = _sustained_updates(config, document,
                                       hierarchical(config), offered)
        results.append(("9 OAs", offered, sustained))
    return results


def test_section52_update_throughput(benchmark, paper_config,
                                     paper_document):
    results = benchmark.pedantic(lambda: _run(paper_config, paper_document),
                                 rounds=1, iterations=1)

    rows = [(f"{label} @ {offered}/s offered", sustained)
            for label, offered, sustained in results]
    print_table("Section 5.2: sustained update rate (updates/sec)",
                ["sustained"], rows,
                note="paper: ~200/s per OA, scaling linearly with #OAs")
    write_report(
        RESULTS_FILE, "updates",
        params={"duration_s": 20.0, "seed": 77},
        metrics={
            f"{label} @ {offered}": round(sustained, 3)
            for label, offered, sustained in results
        },
    )

    by_setup = {}
    for label, offered, sustained in results:
        by_setup.setdefault(label, []).append((offered, sustained))

    # One OA saturates near 200/s (the cost model encodes 5 ms/update).
    single_peak = max(s for _o, s in by_setup["1 OA"])
    assert 150 <= single_peak <= 260

    # Under-saturation offered loads are fully absorbed.
    assert by_setup["1 OA"][0][1] >= 95  # 100/s offered

    # Nine OAs absorb far more than one (the hierarchical placement
    # puts block data on 6 of the 9 sites -> ~6x capacity).
    nine_peak = max(s for _o, s in by_setup["9 OAs"])
    assert nine_peak > 3.5 * single_peak


def test_engine_update_application_rate(benchmark, paper_config,
                                        paper_document):
    """Real wall-clock micro-benchmark of applying one sensor update."""
    from repro.core import PartitionPlan
    from repro.service import all_space_paths

    plan = PartitionPlan({"one": [(("usRegion", paper_config.region),)]})
    db = plan.build_databases(paper_document.copy())["one"]
    paths = all_space_paths(paper_config)
    state = {"index": 0}

    def apply_one():
        path = paths[state["index"] % len(paths)]
        state["index"] += 1
        db.apply_update(path, values={"available": "yes"})

    benchmark(apply_one)
