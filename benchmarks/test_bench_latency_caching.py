"""Section 5.5 (text): caching reduces query latency by 10-33%.

"Our results show that even for our local area set-up, query latencies
are reduced by 10-33% for type 3 and type 4 queries, and for the mixed
workload."  Type 1/2 latencies are unaffected (already local).

Latency is an uncontended measurement (light load, caches warmed
during a long warm-up): the *throughput* interaction of caching under
heavy load is Figure 10's subject.

Results archive to ``BENCH_latency_caching.json``.
"""

from benchmarks.conftest import print_table, run_point, workload_suite
from benchmarks.reporting import write_report
from repro.arch import hierarchical
from repro.net import OAConfig

RESULTS_FILE = "BENCH_latency_caching.json"


def _run(config, document):
    table = {}
    for name, workload in workload_suite(config):
        for label, oa_config in (
            ("no-caching", OAConfig(cache_results=False)),
            ("caching", OAConfig(cache_results=True)),
        ):
            _sim, metrics = run_point(config, document,
                                      hierarchical(config), workload,
                                      oa_config=oa_config, n_clients=2,
                                      update_rate=0, warmup=20.0,
                                      duration=20.0)
            table[(name, label)] = metrics.mean_latency * 1000
    return table


def test_section55_caching_latency(benchmark, paper_config, paper_document):
    table = benchmark.pedantic(lambda: _run(paper_config, paper_document),
                               rounds=1, iterations=1)

    rows = []
    for name, _ in workload_suite(paper_config):
        no_cache = table[(name, "no-caching")]
        cached = table[(name, "caching")]
        saving = 100 * (1 - cached / no_cache)
        rows.append((name, no_cache, cached, round(saving, 1)))
    print_table("Section 5.5: mean latency (ms) with and without caching",
                ["no-caching", "caching", "saving %"], rows,
                note="paper: 10-33% lower latency for QW-3/QW-4/QW-Mix")
    write_report(
        RESULTS_FILE, "latency_caching",
        params={"architecture": "hierarchical", "n_clients": 2,
                "duration_s": 20.0, "warmup_s": 20.0},
        metrics={
            "mean_latency_ms": {
                f"{name}/{label}": value
                for (name, label), value in table.items()
            },
            "saving_pct": {row[0]: row[3] for row in rows},
        },
    )

    # Type 3/4 and the mix get faster with caching.
    for name in ("QW-3", "QW-4", "QW-Mix"):
        assert table[(name, "caching")] < table[(name, "no-caching")]
    # The type-3/4 savings land in the paper's 10-33% band (allowing
    # a little simulation noise at the low end).
    for name in ("QW-3", "QW-4"):
        saving = 1 - table[(name, "caching")] / table[(name, "no-caching")]
        assert 0.08 <= saving <= 0.45
    # Type 1/2 are essentially unaffected.
    for name in ("QW-1", "QW-2"):
        ratio = table[(name, "caching")] / table[(name, "no-caching")]
        assert 0.93 <= ratio <= 1.07
