"""Parallel subquery fan-out: one gather round costs one WAN RTT.

A 16-subquery wildcard gather over a star deployment (one hub owning
the region, each node owned by its own site) is timed on the real TCP
runtime twice: with strictly sequential dispatch and with the default
threaded executor.  A latency interceptor injects a WAN-scale delay per
request, so the sequential gather pays 16 round-trips where the
parallel one pays roughly one.  The answers must be byte-identical,
and the connection pool must serve the second query without dialing a
single new socket.

Results are written to ``BENCH_fanout.json`` so CI can archive the
numbers.  ``REPRO_BENCH_QUICK=1`` shrinks the injected delay and skips
repetitions for CI smoke runs.
"""

import os
import time

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.core import PartitionPlan
from repro.net import OAConfig
from repro.net.tcpruntime import TcpCluster
from repro.xmlkit import Element, canonical_form

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N_NODES = 16
WAN_DELAY = 0.010 if QUICK else 0.030
REPETITIONS = 1 if QUICK else 3
QUERY = "/region[@id='R']/node"
RESULTS_FILE = "BENCH_fanout.json"


def _star_document():
    root = Element("region", attrib={"id": "R"})
    for index in range(N_NODES):
        node = Element("node", attrib={"id": f"n{index:02d}"})
        node.append(Element("value", text=str(index)))
        root.append(node)
    return root


def _star_plan():
    assignments = {"hub": [(("region", "R"),)]}
    for index in range(N_NODES):
        assignments[f"leaf{index:02d}"] = [
            (("region", "R"), ("node", f"n{index:02d}"))
        ]
    return PartitionPlan(assignments)


def _timed_gather(executor):
    """Fresh TCP cluster; returns (best wall time, answers, tcp stats)."""
    oa_config = OAConfig(cache_results=False, executor=executor)
    with TcpCluster(_star_document(), _star_plan(), service="star",
                    oa_config=oa_config) as tcp:
        tcp.network.interceptors.append(
            lambda src, dst, message: time.sleep(WAN_DELAY))
        hub = tcp.cluster.agents["hub"]
        best = float("inf")
        results = None
        for _ in range(REPETITIONS):
            started = time.perf_counter()
            results, _outcome = hub.answer_user_query(QUERY)
            best = min(best, time.perf_counter() - started)
        answers = sorted(canonical_form(_scrubbed(r)) for r in results)
        stats = {
            "max_fanout": hub.driver.stats["max_fanout"],
            "connects_first": tcp.network.pool_stats["connects"],
        }
        # One more gather: every connection must come from the pool.
        hub.answer_user_query(QUERY)
        stats["connects_second"] = tcp.network.pool_stats["connects"]
        stats["reuses"] = tcp.network.pool_stats["reuses"]
        return best, answers, stats


def _scrubbed(element):
    clone = element.copy()
    for node in clone.iter():
        node.delete_attribute("timestamp")
    return clone


def _run():
    serial_time, serial_answers, _ = _timed_gather("serial")
    parallel_time, parallel_answers, stats = _timed_gather(None)
    return {
        "serial": serial_time,
        "parallel": parallel_time,
        "speedup": serial_time / parallel_time,
        "identical": serial_answers == parallel_answers,
        "n_answers": len(parallel_answers),
        **stats,
    }


def test_parallel_fanout_speedup(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_table(
        f"Fan-out of {N_NODES} subqueries over TCP "
        f"({WAN_DELAY * 1000:.0f}ms injected WAN delay)",
        ["time (s)", "speedup"],
        [
            ("sequential", outcome["serial"], 1.0),
            ("parallel+pooled", outcome["parallel"],
             round(outcome["speedup"], 1)),
        ],
        note=f"answers identical: {outcome['identical']}; "
             f"pool reuses: {outcome['reuses']}",
    )
    write_report(
        RESULTS_FILE, "fanout",
        params={"nodes": N_NODES, "wan_delay_s": WAN_DELAY,
                "repetitions": REPETITIONS, "query": QUERY,
                "quick": QUICK},
        metrics=outcome,
    )

    assert outcome["n_answers"] == N_NODES
    assert outcome["identical"], "answers differ across executors"
    assert outcome["max_fanout"] == N_NODES
    # The tentpole claim: one round = one RTT, not N.
    assert outcome["speedup"] >= 3.0
    # The second gather dials no new sockets: all 16 come from the pool.
    assert outcome["connects_second"] == outcome["connects_first"]
    assert outcome["reuses"] >= N_NODES
