"""Semantic cache vs exact-string keys on a jittered workload.

The fig10-style caching benchmarks control the hit ratio artificially;
this one earns it.  Clients re-issue the *same* queries with the
spelling and freshness jitter real templated clients produce --
whitespace, predicate order, ``timestamp > now - N`` sugar with N
drifting in [25, 30] -- and the two cache-keying schemes race on one
live loopback cluster each:

* ``exact``: the pre-semcache behaviour (``SemanticCacheConfig``
  disabled), raw query strings as cache keys;
* ``semantic``: canonicalized keys + freshness buckets
  (:mod:`repro.core.semcache`).

Claims proven into ``BENCH_semcache.json``:

* the semantic scheme's aggregate-cache hit rate is >= 2x the exact
  scheme's on the identical query stream;
* answers are byte-identical between the schemes (scalar values and
  serialized fragment results);
* p99 latency improves (hits skip the distributed gather) and the
  semantic scheme never sends more wire subqueries.

``REPRO_BENCH_QUICK=1`` shrinks the stream for smoke runs.
"""

import os
import random
import time

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.arch import hierarchical
from repro.core.semcache import SemanticCacheConfig
from repro.net import Cluster, OAConfig
from repro.service import ParkingConfig, build_parking_document, parking
from repro.xmlkit.serializer import serialize

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
#: Full mode sizes the stream so cold misses are < 1% of the semantic
#: scheme's lookups -- then p99 compares a cache hit against a full
#: gather, which is the honest shape of the claim.
N_SCALAR = 300 if QUICK else 3000
N_FRAGMENT = 30 if QUICK else 120
RESULTS_FILE = "BENCH_semcache.json"


def _config():
    return ParkingConfig.tiny() if QUICK else ParkingConfig.paper_small()


def _bases(config):
    """A handful of 'cheap spaces in this block' scalar templates."""
    bases = []
    for city in config.city_names():
        for neighborhood in config.neighborhood_names():
            for block in config.block_ids()[:2]:
                bases.append(parking.type1_query(
                    config, city, neighborhood, block, selection="cheap"))
    return bases


def _jitter(base, rng):
    """One client-flavoured respelling of *base* (same semantics)."""
    predicates = ["available='yes'", "price='0'"]
    if rng.random() < 0.5:
        predicates.reverse()
    spelled = "".join(
        "[" + " " * rng.randrange(3) + p.replace("=", " = ", rng.randrange(2))
        + " " * rng.randrange(3) + "]"
        for p in predicates
    )
    query = base.replace("[available='yes'][price='0']", spelled)
    if rng.random() < 0.5:
        tolerance = 25 + round(rng.random() * 5, 1)
        query += f"[timestamp > now - {tolerance:g}]"
    return query


def _scalar_stream(config, count, seed):
    rng = random.Random(seed)
    bases = _bases(config)
    return [f"count({_jitter(rng.choice(bases), rng)})"
            for _ in range(count)]


def _fragment_stream(config, count, seed):
    rng = random.Random(seed)
    bases = [base.rsplit("/parkingSpace", 1)[0] for base in _bases(config)]
    return [_jitter(rng.choice(bases) + "/parkingSpace"
                    "[available='yes'][price='0']", rng)
            for _ in range(count)]


def _percentile(values, fraction):
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _run_mode(config, document, scalars, fragments, enabled):
    semcache = SemanticCacheConfig(enabled=enabled)
    cluster = Cluster(document.copy(), hierarchical(config).plan,
                      oa_config=OAConfig(semcache=semcache))
    answers = []
    latencies = []
    for query in scalars:
        started = time.perf_counter()
        answers.append(cluster.scalar(query, max_age=600))
        latencies.append(time.perf_counter() - started)
    fragment_answers = []
    for query in fragments:
        results, _site, _outcome = cluster.query(query)
        fragment_answers.append(
            "\n".join(serialize(node) for node in results))
    agents = list(cluster.agents.values())
    cache_stats = {
        key: sum(agent.driver.aggregates.stats[key] for agent in agents)
        for key in ("hits", "misses", "stale_rejects",
                    "bucket_coalesced_hits", "stores")
    }
    lookups = cache_stats["hits"] + cache_stats["misses"]
    return {
        "answers": answers,
        "fragment_answers": fragment_answers,
        "hit_rate": cache_stats["hits"] / lookups if lookups else 0.0,
        "cache": cache_stats,
        "subqueries_sent": sum(agent.stats["subqueries_sent"]
                               for agent in agents),
        "p50_ms": _percentile(latencies, 0.50) * 1000,
        "p99_ms": _percentile(latencies, 0.99) * 1000,
    }


def _run():
    config = _config()
    document = build_parking_document(config)
    scalars = _scalar_stream(config, N_SCALAR, seed=31)
    fragments = _fragment_stream(config, N_FRAGMENT, seed=67)
    exact = _run_mode(config, document, scalars, fragments, enabled=False)
    semantic = _run_mode(config, document, scalars, fragments, enabled=True)
    return exact, semantic


def test_semantic_cache_hit_rate_and_latency(benchmark):
    exact, semantic = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_table(
        f"Semantic vs exact-string cache keys "
        f"({N_SCALAR} jittered scalar queries)",
        ["hit rate", "p50 ms", "p99 ms", "wire asks"],
        [
            ("exact-string", exact["hit_rate"], exact["p50_ms"],
             exact["p99_ms"], exact["subqueries_sent"]),
            ("semantic", semantic["hit_rate"], semantic["p50_ms"],
             semantic["p99_ms"], semantic["subqueries_sent"]),
        ],
        note=f"coalesced hits: {semantic['cache']['bucket_coalesced_hits']}"
             f"; answers identical: "
             f"{exact['answers'] == semantic['answers']}",
    )
    write_report(
        RESULTS_FILE, "semcache",
        params={"scalar_queries": N_SCALAR, "fragment_queries": N_FRAGMENT,
                "quick": QUICK},
        metrics={
            "exact": {k: v for k, v in exact.items()
                      if not k.endswith("answers")},
            "semantic": {k: v for k, v in semantic.items()
                         if not k.endswith("answers")},
            "answers_identical": exact["answers"] == semantic["answers"],
            "fragments_identical":
                exact["fragment_answers"] == semantic["fragment_answers"],
        },
    )

    # Byte-identical answers under both keying schemes.
    assert exact["answers"] == semantic["answers"]
    assert exact["fragment_answers"] == semantic["fragment_answers"]

    # The tentpole claim: >= 2x the hit rate on the same stream.
    assert semantic["hit_rate"] >= 0.5
    assert semantic["hit_rate"] >= 2 * exact["hit_rate"]
    assert semantic["cache"]["bucket_coalesced_hits"] > 0

    # Hits skip the distributed gather: the median is a hit vs a full
    # gather in every mode, and in full mode even p99 is a hit (misses
    # are < 1% of the stream).  Quick mode keeps a no-regression bound
    # on the tail (both p99s are cold misses there).
    assert semantic["p50_ms"] < exact["p50_ms"]
    if QUICK:
        assert semantic["p99_ms"] <= exact["p99_ms"] * 2
    else:
        assert semantic["p99_ms"] < exact["p99_ms"]
    assert semantic["subqueries_sent"] <= exact["subqueries_sent"]
