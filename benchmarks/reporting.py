"""The shared ``BENCH_*.json`` result envelope.

Every benchmark that archives numbers for CI writes the same shape::

    {
      "schema_version": 1,
      "name": "<benchmark name>",
      "timestamp": "<UTC ISO-8601>",
      "params": { ...configuration the run used... },
      "metrics": { ...what the run measured... }
    }

``params`` records everything needed to interpret (and re-run) the
numbers -- sizes, rates, seeds, quick-mode -- and ``metrics`` holds the
measurements themselves, so tooling can diff runs without knowing each
benchmark's internals.  :func:`validate_report` /
:func:`validate_file` are what the CI observability job runs over
every emitted file.
"""

import json
from datetime import datetime, timezone

SCHEMA_VERSION = 1

_REQUIRED = ("schema_version", "name", "timestamp", "params", "metrics")


def build_report(name, params, metrics):
    """Assemble one envelope dict (timestamped now, UTC)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": str(name),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "params": dict(params),
        "metrics": metrics,
    }


def write_report(path, name, params, metrics):
    """Write one enveloped report to *path*; returns the envelope."""
    report = build_report(name, params, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def validate_report(data):
    """Check one envelope; returns a list of problems (empty = valid)."""
    problems = []
    if not isinstance(data, dict):
        return [f"report is {type(data).__name__}, expected an object"]
    for key in _REQUIRED:
        if key not in data:
            problems.append(f"missing required field {key!r}")
    if "schema_version" in data and \
            data["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']!r} != {SCHEMA_VERSION}")
    if not isinstance(data.get("name", ""), str) or not data.get("name"):
        problems.append("'name' must be a non-empty string")
    timestamp = data.get("timestamp", "")
    if not isinstance(timestamp, str):
        problems.append("'timestamp' must be a string")
    else:
        try:
            datetime.fromisoformat(timestamp)
        except ValueError:
            problems.append(f"'timestamp' {timestamp!r} is not ISO-8601")
    if not isinstance(data.get("params", {}), dict):
        problems.append("'params' must be an object")
    if "metrics" in data and \
            not isinstance(data["metrics"], (dict, list)):
        problems.append("'metrics' must be an object or an array")
    return problems


def validate_file(path):
    """Validate one ``BENCH_*.json``; returns a list of problems."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable: {exc}"]
    return [f"{path}: {problem}" for problem in validate_report(data)]
