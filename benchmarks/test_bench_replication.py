"""Availability under owner failure: k=0 vs k=2 read replication.

A five-site TCP deployment (one hub owning the region root, four
sites owning one sensor group each) serves a fixed query mix over
real sockets, with caching disabled so every query is exposed to the
failure instead of the first one only.  Four scenarios: replication
off (k=0) and on (k=2), each with zero and one owner killed
mid-deployment.

Reported per scenario: availability (fraction of queries answered
*complete*), raised queries (must always be zero -- failures degrade,
never raise), and mean/p99 latency.  The contract quantified here is
the tentpole's acceptance bar: with k=2 and one owner down, zero
failed queries and >= 99% complete answers; with k=0 the same kill
visibly punches a hole in availability.

Results are written to ``BENCH_replication.json``.
``REPRO_BENCH_QUICK=1`` shrinks the workload for smoke runs.
"""

import os
import time

from benchmarks.conftest import print_table
from benchmarks.reporting import write_report
from repro.core import PartitionPlan
from repro.net import BreakerPolicy, OAConfig, RetryPolicy
from repro.net.tcpruntime import TcpCluster
from repro.replication import ReplicationConfig
from repro.xmlkit import Element

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N_GROUPS = 4
N_SENSORS = 4 if QUICK else 8
N_QUERIES = 80 if QUICK else 240
VICTIM = "s1"
RESULTS_FILE = "BENCH_replication.json"

#: Small but real backoff delays, so failover cost shows up honestly.
RETRIES = dict(max_attempts=3, base_delay=0.001, multiplier=2.0,
               max_delay=0.004, jitter=0.5)


def _document():
    root = Element("region", attrib={"id": "R"})
    for group_index in range(N_GROUPS):
        group = Element("group", attrib={"id": f"g{group_index}"})
        root.append(group)
        for sensor_index in range(N_SENSORS):
            sensor = Element("sensor",
                             attrib={"id": f"s{sensor_index}"})
            sensor.append(Element("value", text=str(sensor_index)))
            group.append(sensor)
    return root


def _plan():
    assignments = {"hub": [(("region", "R"),)]}
    for group_index in range(N_GROUPS):
        assignments[f"s{group_index}"] = [
            (("region", "R"), ("group", f"g{group_index}"))
        ]
    return PartitionPlan(assignments)


def _workload():
    """Alternating single-group fetches and region-wide fan-outs,
    touching the victim's group on a fixed fraction of queries."""
    queries = []
    for index in range(N_QUERIES):
        if index % 5 == 0:
            queries.append("/region[@id='R']/group/sensor[@id='s1']")
        else:
            group = (index * 3) % N_GROUPS
            sensor = (index * 7) % N_SENSORS
            queries.append(f"/region[@id='R']/group[@id='g{group}']"
                           f"/sensor[@id='s{sensor}']")
    return queries


def _run_scenario(k, kill):
    tcp = TcpCluster(
        _document(), _plan(),
        oa_config=OAConfig(
            cache_results=False,
            retry_policy=RetryPolicy(**RETRIES),
            breaker=BreakerPolicy(failure_threshold=3,
                                  reset_timeout=30.0),
            partial_answers=True),
        replication=ReplicationConfig(k=k))
    try:
        if kill:
            tcp.kill_site(VICTIM)
        latencies = []
        complete = 0
        raised = 0
        for query in _workload():
            started = time.perf_counter()
            try:
                _results, _site, outcome = tcp.cluster.query(
                    query, at_site="hub")
            except Exception:
                raised += 1
                latencies.append(time.perf_counter() - started)
                continue
            latencies.append(time.perf_counter() - started)
            if outcome.complete:
                complete += 1
        ordered = sorted(latencies)
        point = {
            "k": k,
            "owners_killed": kill,
            "queries": len(latencies),
            "availability": complete / len(latencies),
            "raised": raised,
            "mean_latency_ms": sum(latencies) / len(latencies) * 1000,
            "p99_latency_ms":
                ordered[int(0.99 * (len(ordered) - 1))] * 1000,
        }
        if k > 0:
            counters = tcp.cluster.metrics()["replication"]
            point["failover_served"] = counters["failover_served"]
        return point
    finally:
        tcp.close()


def _run():
    return {(k, kill): _run_scenario(k, kill)
            for k in (0, 2) for kill in (0, 1)}


def test_availability_under_owner_failure(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_table(
        f"Owner failure on a 5-site TCP cluster "
        f"({N_QUERIES} queries, victim {VICTIM!r})",
        ["avail", "raised", "mean ms", "p99 ms"],
        [
            (f"k={k} kills={kill}",
             round(point["availability"], 3),
             point["raised"],
             round(point["mean_latency_ms"], 2),
             round(point["p99_latency_ms"], 2))
            for (k, kill), point in sorted(table.items())
        ],
        note="availability = fraction answered complete; k=2 serves "
             "the dead owner's region from ring replicas",
    )
    write_report(
        RESULTS_FILE, "replication",
        params={"groups": N_GROUPS, "sensors": N_SENSORS,
                "queries": N_QUERIES, "victim": VICTIM, "quick": QUICK,
                "retry_policy": dict(RETRIES)},
        metrics={f"k={k} kills={kill}": point
                 for (k, kill), point in sorted(table.items())},
    )

    # Queries never raise, in any scenario: they heal or degrade.
    assert all(point["raised"] == 0 for point in table.values())
    # Fault-free runs answer everything, replicated or not.
    assert table[(0, 0)]["availability"] == 1.0
    assert table[(2, 0)]["availability"] == 1.0
    # Without replication, killing an owner punches a hole.
    assert table[(0, 1)]["availability"] < 0.9
    # With k=2, the same kill is absorbed: the acceptance bar.
    assert table[(2, 1)]["availability"] >= 0.99
    assert table[(2, 1)]["failover_served"] > 0
