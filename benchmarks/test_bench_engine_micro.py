"""Micro-benchmarks of the substrate engines (wall-clock, this machine).

Not a paper figure: these keep the building blocks honest -- XML
parsing/serialization throughput, XPath compilation and evaluation,
fragment merging, and full end-to-end cluster queries -- so performance
regressions in the substrates are visible independently of the
simulated experiments.
"""

import pytest

from benchmarks.reporting import write_report
from repro.service import (
    ParkingConfig,
    QueryWorkload,
    build_parking_document,
    type1_query,
    type3_query,
)
from repro.xmlkit import parse_fragment, serialize
from repro.xpath import compile_xpath

RESULTS_FILE = "BENCH_engine_micro.json"


@pytest.fixture(scope="module")
def _engine_report():
    """Collects every micro-benchmark's timings; writes the envelope
    once the module finishes (this file has no single aggregating
    test, so the report spans all of them)."""
    collected = {}
    yield collected
    metrics = {}
    for name, bench in sorted(collected.items()):
        stats = getattr(getattr(bench, "stats", None), "stats", None)
        if stats is None:
            continue
        metrics[name] = {
            "mean_s": stats.mean,
            "min_s": stats.min,
            "max_s": stats.max,
            "rounds": getattr(stats, "rounds", len(stats.data)),
        }
    if metrics:
        write_report(RESULTS_FILE, "engine_micro",
                     params={"config": "paper_small"}, metrics=metrics)


@pytest.fixture(autouse=True)
def _collect_benchmark(request, benchmark, _engine_report):
    yield
    _engine_report[request.node.name] = benchmark


@pytest.fixture(scope="module")
def config():
    return ParkingConfig.paper_small()


@pytest.fixture(scope="module")
def document(config):
    return build_parking_document(config)


@pytest.fixture(scope="module")
def document_text(document):
    return serialize(document)


def test_xml_parse_paper_database(benchmark, document_text):
    benchmark(lambda: parse_fragment(document_text))


def test_xml_serialize_paper_database(benchmark, document):
    benchmark(lambda: serialize(document))


def test_xpath_compile_figure2_query(benchmark, config):
    query = type3_query(config, "Pittsburgh", "Oakland", "Shadyside", "1",
                        selection="available")
    from repro.xpath.compiler import _parse_cached

    def compile_fresh():
        _parse_cached.cache_clear()
        compile_xpath(query)

    benchmark(compile_fresh)


def test_xpath_evaluate_type1(benchmark, config, document):
    query = compile_xpath(type1_query(config, "Pittsburgh", "Oakland", "7"))
    benchmark(lambda: query.select(document))


def test_xpath_evaluate_descendant_predicate(benchmark, document):
    query = compile_xpath(
        "/usRegion[@id='NE']//parkingSpace[available='yes'][price='0']")
    benchmark(lambda: query.select(document))


def test_local_information_extraction(benchmark, document):
    from repro.core import local_information

    neighborhood = next(document.iter("neighborhood"))
    benchmark(lambda: local_information(neighborhood))


def test_fragment_merge(benchmark, config, document):
    from repro.core import PartitionPlan, compile_pattern, run_qeg

    plan = PartitionPlan({"one": [(("usRegion", config.region),)]})
    db = plan.build_databases(document)["one"]
    pattern = compile_pattern(type1_query(config, "Pittsburgh", "Oakland",
                                          "1"))
    fragment = run_qeg(db, pattern).answer

    target = plan.build_databases(document)["one"]
    benchmark(lambda: target.store_fragment(fragment.copy()))


def test_cluster_query_end_to_end(benchmark, config, document):
    from repro.arch import hierarchical
    from repro.net import Cluster

    cluster = Cluster(document.copy(), hierarchical(config).plan)
    workload = QueryWorkload.qw_mix(config, seed=777)

    def one_query():
        cluster.query(workload.sample()[0])

    benchmark(one_query)


def test_message_encode_decode(benchmark, config, document):
    from repro.core import PartitionPlan, compile_pattern, run_qeg
    from repro.net import AnswerMessage, Message

    plan = PartitionPlan({"one": [(("usRegion", config.region),)]})
    db = plan.build_databases(document)["one"]
    pattern = compile_pattern(
        type1_query(config, "Pittsburgh", "Oakland", "1"))
    fragment = run_qeg(db, pattern).answer
    message = AnswerMessage(1, fragment=fragment)

    benchmark(lambda: Message.decode(message.encode()))
