"""Shared machinery for the experiment benchmarks.

Every benchmark regenerates one table or figure from the paper's
Section 5 and prints a paper-vs-measured comparison.  The experiments
run inside ``benchmark.pedantic(..., rounds=1)`` so they integrate with
``pytest --benchmark-only`` while each executing exactly once.
"""

import pytest

from repro.net import OAConfig
from repro.service import (
    ParkingConfig,
    QueryWorkload,
    UpdateWorkload,
    build_parking_document,
)
from repro.sim import CostModel, SimulatedCluster

#: Simulated seconds per experiment point (paper runs were longer; the
#: queueing model reaches steady state quickly).
DURATION = 15.0
WARMUP = 4.0
CLIENTS = 12
UPDATE_RATE = 100.0


@pytest.fixture(scope="session")
def paper_config():
    return ParkingConfig.paper_small()


@pytest.fixture(scope="session")
def paper_document(paper_config):
    return build_parking_document(paper_config)


def run_point(config, document, architecture, workload, oa_config=None,
              n_clients=CLIENTS, duration=DURATION, update_rate=UPDATE_RATE,
              cost_model=None, pre_query=None, schedule=None, warmup=WARMUP):
    """One experiment point: a fresh simulated cluster + workload run."""
    sim = SimulatedCluster(document.copy(), architecture,
                           cost_model=cost_model or CostModel(),
                           oa_config=oa_config or OAConfig())
    metrics = sim.run(
        workload,
        n_clients=n_clients,
        duration=duration,
        warmup=warmup,
        update_workload=UpdateWorkload(config, seed=97),
        update_rate=update_rate,
        pre_query=pre_query,
        schedule=schedule,
    )
    return sim, metrics


def workload_suite(config, selection="block"):
    """The five workloads of Section 5.3."""
    return [
        ("QW-1", QueryWorkload.qw(config, 1, selection=selection, seed=101)),
        ("QW-2", QueryWorkload.qw(config, 2, selection=selection, seed=102)),
        ("QW-3", QueryWorkload.qw(config, 3, selection=selection, seed=103)),
        ("QW-4", QueryWorkload.qw(config, 4, selection=selection, seed=104)),
        ("QW-Mix", QueryWorkload.qw_mix(config, selection=selection,
                                        seed=105)),
    ]


def print_table(title, columns, rows, note=""):
    """Print an aligned results table."""
    width = max(len(str(r[0])) for r in rows) + 2
    col_width = max(12, *(len(c) + 2 for c in columns))
    print(f"\n=== {title} ===")
    header = " " * width + "".join(f"{c:>{col_width}}" for c in columns)
    print(header)
    for row in rows:
        label, *values = row
        cells = "".join(
            f"{(f'{v:.2f}' if isinstance(v, float) else str(v)):>{col_width}}"
            for v in values
        )
        print(f"{str(label):<{width}}{cells}")
    if note:
        print(note)
