"""Recursive-descent parser for XPath 1.0 (unordered fragment).

Follows the XPath 1.0 grammar.  Constructs outside the unordered
fragment -- document-order axes, ``position()``/``last()`` and numeric
(positional) predicates -- raise :class:`XPathUnsupportedError`, per the
paper's data model (Section 3.1).
"""

from repro.xpath import lexer
from repro.xpath.ast import (
    ORDERED_AXES,
    UNORDERED_AXES,
    BinaryOperation,
    FilterExpression,
    FunctionCall,
    Literal,
    LocationPath,
    NameTest,
    NodeTypeTest,
    NumberLiteral,
    Step,
    UnaryMinus,
    VariableReference,
)
from repro.xpath.errors import XPathSyntaxError, XPathUnsupportedError

_PATH_START_KINDS = {
    lexer.SLASH,
    lexer.DOUBLE_SLASH,
    lexer.DOT,
    lexer.DOTDOT,
    lexer.AT,
    lexer.STAR,
    lexer.NAME,
    lexer.AXIS,
    lexer.NODETYPE,
}

_ORDER_DEPENDENT_FUNCTIONS = {"position", "last"}


def _descendant_step():
    """The ``descendant-or-self::node()`` step that ``//`` abbreviates."""
    return Step("descendant-or-self", NodeTypeTest("node"))


class _Parser:
    def __init__(self, source):
        self.source = source
        self.tokens = lexer.tokenize(source)
        self.index = 0

    # -- token helpers -------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, kind):
        if self.current.kind == kind:
            return self.advance()
        return None

    def expect(self, kind, what):
        token = self.accept(kind)
        if token is None:
            raise XPathSyntaxError(
                f"expected {what}, found {self.current.value!r}",
                self.current.offset,
            )
        return token

    def error(self, message):
        return XPathSyntaxError(message, self.current.offset)

    # -- grammar -------------------------------------------------------
    def parse(self):
        expression = self.parse_expression()
        if self.current.kind != lexer.EOF:
            raise self.error(f"unexpected trailing {self.current.value!r}")
        return expression

    def parse_expression(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.accept(lexer.OR):
            left = BinaryOperation("or", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_equality()
        while self.accept(lexer.AND):
            left = BinaryOperation("and", left, self.parse_equality())
        return left

    def parse_equality(self):
        left = self.parse_relational()
        while True:
            if self.accept(lexer.EQ):
                left = BinaryOperation("=", left, self.parse_relational())
            elif self.accept(lexer.NEQ):
                left = BinaryOperation("!=", left, self.parse_relational())
            else:
                return left

    def parse_relational(self):
        left = self.parse_additive()
        operators = {lexer.LT: "<", lexer.LE: "<=", lexer.GT: ">", lexer.GE: ">="}
        while self.current.kind in operators:
            operator = operators[self.advance().kind]
            left = BinaryOperation(operator, left, self.parse_additive())
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        while True:
            if self.accept(lexer.PLUS):
                left = BinaryOperation("+", left, self.parse_multiplicative())
            elif self.accept(lexer.MINUS):
                left = BinaryOperation("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self):
        left = self.parse_unary()
        operators = {lexer.MULTIPLY: "*", lexer.DIV: "div", lexer.MOD: "mod"}
        while self.current.kind in operators:
            operator = operators[self.advance().kind]
            left = BinaryOperation(operator, left, self.parse_unary())
        return left

    def parse_unary(self):
        if self.accept(lexer.MINUS):
            return UnaryMinus(self.parse_unary())
        return self.parse_union()

    def parse_union(self):
        left = self.parse_path()
        while self.accept(lexer.PIPE):
            left = BinaryOperation("|", left, self.parse_path())
        return left

    def parse_path(self):
        kind = self.current.kind
        if kind in (lexer.FUNCTION, lexer.LITERAL, lexer.NUMBER,
                    lexer.VARIABLE, lexer.LPAREN):
            return self.parse_filter_expression()
        if kind in _PATH_START_KINDS:
            return self.parse_location_path()
        raise self.error(f"expected an expression, found {self.current.value!r}")

    def parse_filter_expression(self):
        primary = self.parse_primary()
        predicates = []
        while self.current.kind == lexer.LBRACKET:
            predicates.append(self.parse_predicate())
        path = None
        if self.current.kind in (lexer.SLASH, lexer.DOUBLE_SLASH):
            steps = []
            if self.advance().kind == lexer.DOUBLE_SLASH:
                steps.append(_descendant_step())
            steps.append(self.parse_step())
            steps.extend(self.parse_more_steps())
            path = LocationPath(absolute=False, steps=steps)
        if not predicates and path is None:
            return primary
        return FilterExpression(primary, predicates, path)

    def parse_primary(self):
        token = self.current
        if token.kind == lexer.VARIABLE:
            self.advance()
            return VariableReference(token.value)
        if token.kind == lexer.LITERAL:
            self.advance()
            return Literal(token.value)
        if token.kind == lexer.NUMBER:
            self.advance()
            return NumberLiteral(token.value)
        if token.kind == lexer.LPAREN:
            self.advance()
            inner = self.parse_expression()
            self.expect(lexer.RPAREN, "')'")
            return inner
        if token.kind == lexer.FUNCTION:
            return self.parse_function_call()
        raise self.error(f"expected a primary expression, found {token.value!r}")

    def parse_function_call(self):
        name_token = self.expect(lexer.FUNCTION, "a function name")
        if name_token.value in _ORDER_DEPENDENT_FUNCTIONS:
            raise XPathUnsupportedError(
                f"{name_token.value}() depends on document order, which the "
                "unordered data model does not define"
            )
        self.expect(lexer.LPAREN, "'('")
        arguments = []
        if self.current.kind != lexer.RPAREN:
            arguments.append(self.parse_expression())
            while self.accept(lexer.COMMA):
                arguments.append(self.parse_expression())
        self.expect(lexer.RPAREN, "')'")
        return FunctionCall(name_token.value, arguments)

    def parse_location_path(self):
        absolute = False
        steps = []
        if self.accept(lexer.SLASH):
            absolute = True
            if self.current.kind not in _PATH_START_KINDS or \
                    self.current.kind in (lexer.SLASH, lexer.DOUBLE_SLASH):
                # Bare "/" selects the document root.
                return LocationPath(absolute=True, steps=[])
        elif self.accept(lexer.DOUBLE_SLASH):
            absolute = True
            steps.append(_descendant_step())
        steps.append(self.parse_step())
        steps.extend(self.parse_more_steps())
        return LocationPath(absolute=absolute, steps=steps)

    def parse_more_steps(self):
        steps = []
        while True:
            if self.accept(lexer.SLASH):
                steps.append(self.parse_step())
            elif self.accept(lexer.DOUBLE_SLASH):
                steps.append(_descendant_step())
                steps.append(self.parse_step())
            else:
                return steps

    def parse_step(self):
        token = self.current
        if token.kind == lexer.DOT:
            self.advance()
            return Step("self", NodeTypeTest("node"))
        if token.kind == lexer.DOTDOT:
            self.advance()
            return Step("parent", NodeTypeTest("node"))

        axis = "child"
        if token.kind == lexer.AT:
            self.advance()
            axis = "attribute"
        elif token.kind == lexer.AXIS:
            axis = token.value
            self.advance()
            if axis in ORDERED_AXES:
                raise XPathUnsupportedError(
                    f"axis {axis!r} depends on document order, which the "
                    "unordered data model does not define"
                )
            if axis not in UNORDERED_AXES:
                raise self.error(f"unknown axis {axis!r}")

        node_test = self.parse_node_test()
        predicates = []
        while self.current.kind == lexer.LBRACKET:
            predicates.append(self.parse_predicate())
        return Step(axis, node_test, predicates)

    def parse_node_test(self):
        token = self.current
        if token.kind == lexer.STAR:
            self.advance()
            return NameTest("*")
        if token.kind == lexer.NAME:
            self.advance()
            return NameTest(token.value)
        if token.kind == lexer.NODETYPE:
            self.advance()
            if token.value in ("comment", "processing-instruction"):
                raise XPathUnsupportedError(
                    f"{token.value}() nodes do not occur in sensor documents"
                )
            self.expect(lexer.LPAREN, "'('")
            self.expect(lexer.RPAREN, "')'")
            return NodeTypeTest(token.value)
        raise self.error(f"expected a node test, found {token.value!r}")

    def parse_predicate(self):
        self.expect(lexer.LBRACKET, "'['")
        expression = self.parse_expression()
        self.expect(lexer.RBRACKET, "']'")
        if isinstance(expression, NumberLiteral):
            raise XPathUnsupportedError(
                "numeric (positional) predicates depend on document order, "
                "which the unordered data model does not define"
            )
        return expression


def parse(source):
    """Parse *source* into an AST :class:`~repro.xpath.ast.Expression`."""
    return _Parser(source).parse()
