"""Evaluation of XPath ASTs against the :mod:`repro.xmlkit` node model.

The evaluator implements the unordered fragment of XPath 1.0.  Node-
sets are returned as Python lists in a deterministic traversal order
(so ``string()`` of a node-set is stable), de-duplicated by node
identity.
"""

from repro.xmlkit.nodes import Document, Element, Text
from repro.xpath.ast import (
    BinaryOperation,
    FilterExpression,
    FunctionCall,
    Literal,
    LocationPath,
    NameTest,
    NumberLiteral,
    UnaryMinus,
    VariableReference,
)
from repro.xpath.errors import XPathEvaluationError, XPathTypeError
from repro.xpath.functions import CORE_FUNCTIONS
from repro.xpath.types import (
    AttributeRef,
    compare,
    is_node_set,
    to_boolean,
    to_number,
)


class Context:
    """Evaluation context: a node plus variables, functions and a clock."""

    __slots__ = ("node", "variables", "functions", "now", "document")

    def __init__(self, node, variables=None, functions=None, now=None,
                 document=None):
        self.node = node
        self.variables = variables or {}
        self.functions = functions if functions is not None else CORE_FUNCTIONS
        self.now = now
        if document is None:
            document = _find_document(node)
        self.document = document

    def at(self, node):
        """A context positioned at *node* sharing this context's state."""
        return Context(node, self.variables, self.functions, self.now,
                       self.document)


def _find_document(node):
    if isinstance(node, Document):
        return node
    if isinstance(node, Element):
        return Document(node.root())
    if isinstance(node, Text) and node.parent is not None:
        return Document(node.parent.root())
    return None


def _identity(node):
    if isinstance(node, AttributeRef):
        return (id(node.owner), node.name)
    return id(node)


def _dedup(nodes):
    seen = set()
    out = []
    for node in nodes:
        key = _identity(node)
        if key not in seen:
            seen.add(key)
            out.append(node)
    return out


# ----------------------------------------------------------------------
# Axes
# ----------------------------------------------------------------------
def _axis_child(node):
    if isinstance(node, Document):
        return [node.root]
    if isinstance(node, Element):
        return list(node.children)
    return []


def _axis_descendant(node, include_self):
    out = []
    if include_self:
        out.append(node)
    stack = list(reversed(_axis_child(node)))
    while stack:
        current = stack.pop()
        out.append(current)
        if isinstance(current, Element):
            stack.extend(reversed(current.children))
    return out


def _axis_parent(node, document):
    if isinstance(node, Document):
        return []
    if isinstance(node, AttributeRef):
        return [node.owner]
    parent = node.parent
    if parent is not None:
        return [parent]
    if document is not None and isinstance(node, Element) \
            and node is document.root:
        return [document]
    return []


def _axis_ancestor(node, document, include_self):
    out = [node] if include_self else []
    current = node
    while True:
        parents = _axis_parent(current, document)
        if not parents:
            return out
        current = parents[0]
        out.append(current)


def _axis_attribute(node):
    if isinstance(node, Element):
        return [AttributeRef(node, name) for name in node.attrib]
    return []


# ----------------------------------------------------------------------
# Node tests
# ----------------------------------------------------------------------
def _apply_node_test(axis, node_test, candidates):
    if axis == "attribute":
        if isinstance(node_test, NameTest):
            if node_test.name == "*":
                return [c for c in candidates if isinstance(c, AttributeRef)]
            return [
                c for c in candidates
                if isinstance(c, AttributeRef) and c.name == node_test.name
            ]
        if node_test.node_type == "node":
            return [c for c in candidates if isinstance(c, AttributeRef)]
        return []
    if isinstance(node_test, NameTest):
        if node_test.name == "*":
            return [c for c in candidates if isinstance(c, Element)]
        return [
            c for c in candidates
            if isinstance(c, Element) and c.tag == node_test.name
        ]
    if node_test.node_type == "node":
        return list(candidates)
    if node_test.node_type == "text":
        return [c for c in candidates if isinstance(c, Text)]
    return []


class Evaluator:
    """Evaluates parsed XPath expressions.

    A single instance is stateless across calls and safe to share.
    Extension functions can be layered on top of the core library via
    the *functions* argument.
    """

    def __init__(self, functions=None):
        merged = dict(CORE_FUNCTIONS)
        if functions:
            merged.update(functions)
        self.functions = merged

    # -- public API ----------------------------------------------------
    def evaluate(self, expression, node, variables=None, now=None):
        """Evaluate *expression* with *node* as the context node."""
        context = Context(node, variables=variables, functions=self.functions,
                          now=now)
        return self._eval(expression, context)

    # -- dispatch ------------------------------------------------------
    def _eval(self, expression, context):
        if isinstance(expression, LocationPath):
            return self._eval_location_path(expression, context)
        if isinstance(expression, BinaryOperation):
            return self._eval_binary(expression, context)
        if isinstance(expression, FunctionCall):
            return self._eval_function(expression, context)
        if isinstance(expression, FilterExpression):
            return self._eval_filter(expression, context)
        if isinstance(expression, UnaryMinus):
            return -to_number(self._eval(expression.operand, context))
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, NumberLiteral):
            return expression.value
        if isinstance(expression, VariableReference):
            if expression.name not in context.variables:
                raise XPathEvaluationError(
                    f"unbound variable ${expression.name}"
                )
            return context.variables[expression.name]
        raise XPathEvaluationError(f"cannot evaluate {expression!r}")

    # -- location paths ------------------------------------------------
    def _eval_location_path(self, path, context):
        if path.absolute:
            if context.document is None:
                raise XPathEvaluationError(
                    "absolute path evaluated without a document root"
                )
            nodes = [context.document]
        else:
            nodes = [context.node]
        return self._eval_steps(path.steps, nodes, context)

    def _eval_steps(self, steps, nodes, context):
        for step in steps:
            nodes = self._eval_step(step, nodes, context)
        return nodes

    def _eval_step(self, step, nodes, context):
        gathered = []
        for node in nodes:
            gathered.extend(self._step_candidates(step, node, context))
        selected = _apply_node_test(step.axis, step.node_test, gathered)
        selected = _dedup(selected)
        for predicate in step.predicates:
            selected = [
                node for node in selected
                if to_boolean(self._eval(predicate, context.at(node)))
            ]
        return selected

    def _step_candidates(self, step, node, context):
        axis = step.axis
        if axis == "child":
            return _axis_child(node)
        if axis == "attribute":
            return _axis_attribute(node)
        if axis == "self":
            return [node]
        if axis == "parent":
            return _axis_parent(node, context.document)
        if axis == "ancestor":
            return _axis_ancestor(node, context.document, include_self=False)
        if axis == "ancestor-or-self":
            return _axis_ancestor(node, context.document, include_self=True)
        if axis == "descendant":
            return _axis_descendant(node, include_self=False)
        if axis == "descendant-or-self":
            return _axis_descendant(node, include_self=True)
        raise XPathEvaluationError(f"unsupported axis {axis!r}")

    # -- other expression kinds -----------------------------------------
    def _eval_binary(self, expression, context):
        operator = expression.operator
        if operator == "or":
            return (
                to_boolean(self._eval(expression.left, context))
                or to_boolean(self._eval(expression.right, context))
            )
        if operator == "and":
            return (
                to_boolean(self._eval(expression.left, context))
                and to_boolean(self._eval(expression.right, context))
            )
        left = self._eval(expression.left, context)
        right = self._eval(expression.right, context)
        if operator in ("=", "!=", "<", "<=", ">", ">="):
            return compare(operator, left, right)
        if operator == "|":
            if not (is_node_set(left) and is_node_set(right)):
                raise XPathTypeError("operands of | must be node-sets")
            return _dedup(left + right)
        left_number = to_number(left)
        right_number = to_number(right)
        if operator == "+":
            return left_number + right_number
        if operator == "-":
            return left_number - right_number
        if operator == "*":
            return left_number * right_number
        if operator == "div":
            if right_number == 0:
                return float("nan") if left_number == 0 else \
                    float("inf") if left_number > 0 else float("-inf")
            return left_number / right_number
        if operator == "mod":
            if right_number == 0:
                return float("nan")
            # XPath mod truncates toward zero (like Java %), unlike
            # Python's floor-division remainder.
            result = abs(left_number) % abs(right_number)
            return result if left_number >= 0 else -result
        raise XPathEvaluationError(f"unknown operator {operator!r}")

    def _eval_function(self, expression, context):
        function = context.functions.get(expression.name)
        if function is None:
            raise XPathEvaluationError(f"unknown function {expression.name}()")
        arguments = [self._eval(a, context) for a in expression.arguments]
        return function(context, arguments)

    def _eval_filter(self, expression, context):
        value = self._eval(expression.primary, context)
        if expression.predicates and not is_node_set(value):
            raise XPathTypeError("predicates require a node-set")
        for predicate in expression.predicates:
            value = [
                node for node in value
                if to_boolean(self._eval(predicate, context.at(node)))
            ]
        if expression.path is not None:
            if not is_node_set(value):
                raise XPathTypeError("a path can only follow a node-set")
            value = self._eval_steps(expression.path.steps, value, context)
        return value


_DEFAULT_EVALUATOR = Evaluator()


def evaluate(expression, node, variables=None, now=None):
    """Module-level convenience wrapper around :class:`Evaluator`."""
    return _DEFAULT_EVALUATOR.evaluate(expression, node, variables=variables,
                                       now=now)
