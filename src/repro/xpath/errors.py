"""Exception hierarchy for the XPath engine."""


class XPathError(Exception):
    """Base class for all errors raised by :mod:`repro.xpath`."""


class XPathSyntaxError(XPathError):
    """Raised when a query cannot be tokenized or parsed.

    Carries the 0-based character ``offset`` into the query string.
    """

    def __init__(self, message, offset):
        super().__init__(f"{message} (at offset {offset})")
        self.offset = offset


class XPathUnsupportedError(XPathError):
    """Raised for constructs outside the unordered XPath fragment.

    The paper (Section 3.1) supports "the entire unordered fragment of
    XPath 1.0": ordering-dependent constructs such as ``position()``,
    ``last()`` and the sibling/document-order axes are rejected.
    """


class XPathTypeError(XPathError):
    """Raised when an operand has an inconvertible type."""


class XPathEvaluationError(XPathError):
    """Raised for runtime evaluation failures (unknown function, etc.)."""
