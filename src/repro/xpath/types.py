"""The XPath 1.0 value model: node-sets, booleans, numbers, strings.

Implements the type-conversion and comparison rules of XPath 1.0
sections 3.4 and 3.5, including the existential semantics of
comparisons involving node-sets.
"""

import math

from repro.xmlkit.nodes import Document, Element, Text
from repro.xpath.errors import XPathTypeError


class AttributeRef:
    """An attribute node: an (owner element, name) pair.

    XPath treats attributes as first-class nodes (``@id`` returns a
    node-set); the element model stores attributes in a dict, so the
    evaluator wraps them in this reference type.
    """

    __slots__ = ("owner", "name")

    def __init__(self, owner, name):
        self.owner = owner
        self.name = name

    @property
    def value(self):
        return self.owner.attrib[self.name]

    def string_value(self):
        return self.value

    def __repr__(self):
        return f"AttributeRef({self.owner.tag}/@{self.name}={self.value!r})"

    def __eq__(self, other):
        return (
            isinstance(other, AttributeRef)
            and self.owner is other.owner
            and self.name == other.name
        )

    def __hash__(self):
        return hash((id(self.owner), self.name))


def node_string_value(node):
    """The XPath string-value of any node kind."""
    if isinstance(node, Element):
        return node.string_value()
    if isinstance(node, Text):
        return node.value
    if isinstance(node, AttributeRef):
        return node.value
    if isinstance(node, Document):
        return node.root.string_value()
    raise XPathTypeError(f"not a node: {node!r}")


def is_node(value):
    """True if *value* is a node usable in a node-set."""
    return isinstance(value, (Element, Text, AttributeRef, Document))


def is_node_set(value):
    return isinstance(value, list)


def to_boolean(value):
    """The boolean() conversion."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, str):
        return len(value) > 0
    if is_node_set(value):
        return len(value) > 0
    raise XPathTypeError(f"cannot convert {type(value).__name__} to boolean")


def to_number(value):
    """The number() conversion.  Unconvertible strings become NaN."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return math.nan
    if is_node_set(value):
        return to_number(to_string(value))
    raise XPathTypeError(f"cannot convert {type(value).__name__} to number")


def format_number(value):
    """The XPath string form of a number."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_string(value):
    """The string() conversion.

    For a node-set this is the string-value of the first node in the
    set (empty string for an empty set).  Our documents are unordered,
    but the evaluator produces node-sets in a deterministic traversal
    order, so the result is stable.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    if isinstance(value, str):
        return value
    if is_node_set(value):
        if not value:
            return ""
        return node_string_value(value[0])
    raise XPathTypeError(f"cannot convert {type(value).__name__} to string")


def _compare_atomic(operator, left, right):
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise XPathTypeError(f"unknown comparison operator {operator!r}")


def _atomic_equal(left, right):
    """Equality of two non-node-set values per XPath rules."""
    if isinstance(left, bool) or isinstance(right, bool):
        return to_boolean(left) == to_boolean(right)
    if isinstance(left, float) or isinstance(right, float):
        return to_number(left) == to_number(right)
    return to_string(left) == to_string(right)


def compare(operator, left, right):
    """Evaluate ``left <operator> right`` per XPath 1.0 section 3.4.

    Comparisons involving node-sets are existential: the result is true
    if *some* pair of values drawn from the operands satisfies the
    comparison.
    """
    left_is_set = is_node_set(left)
    right_is_set = is_node_set(right)

    if left_is_set and right_is_set:
        left_values = [node_string_value(n) for n in left]
        right_values = [node_string_value(n) for n in right]
        if operator in ("=", "!="):
            return any(
                _compare_atomic(operator, lv, rv)
                for lv in left_values
                for rv in right_values
            )
        return any(
            _compare_atomic(operator, to_number(lv), to_number(rv))
            for lv in left_values
            for rv in right_values
        )

    if left_is_set or right_is_set:
        node_set, other = (left, right) if left_is_set else (right, left)
        flipped = not left_is_set
        if isinstance(other, bool) and operator in ("=", "!="):
            # A node-set compared with a boolean is itself converted to
            # a boolean (spec 3.4), not compared per-node.
            return _compare_atomic(operator, to_boolean(node_set), other)
        results = []
        for node in node_set:
            value = node_string_value(node)
            if operator in ("=", "!=") and not isinstance(other, float):
                paired = (value, to_string(other))
            else:
                paired = (to_number(value), to_number(other))
            lv, rv = paired if not flipped else (paired[1], paired[0])
            results.append(_compare_atomic(operator, lv, rv))
        return any(results)

    if operator in ("=", "!="):
        equal = _atomic_equal(left, right)
        return equal if operator == "=" else not equal
    return _compare_atomic(operator, to_number(left), to_number(right))
