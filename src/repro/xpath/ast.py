"""Abstract syntax tree for XPath 1.0 expressions.

Every node supports :meth:`unparse`, producing an equivalent query
string.  Unparsing matters in this system: the query-evaluate-gather
algorithm constructs *subqueries* by slicing and re-serializing the
AST of the original query (Section 3.5 of the paper).
"""

# Axis names in the unordered fragment.
UNORDERED_AXES = frozenset(
    {
        "child",
        "descendant",
        "descendant-or-self",
        "self",
        "parent",
        "ancestor",
        "ancestor-or-self",
        "attribute",
    }
)

# Axes that only make sense for ordered documents; rejected at parse time.
ORDERED_AXES = frozenset(
    {
        "following",
        "preceding",
        "following-sibling",
        "preceding-sibling",
        "namespace",
    }
)


class Expression:
    """Base class for all AST nodes."""

    __slots__ = ()

    def unparse(self):
        raise NotImplementedError

    def children(self):
        """Child expressions, used by generic tree walks."""
        return ()

    def __repr__(self):
        return f"{type(self).__name__}({self.unparse()!r})"

    def __eq__(self, other):
        return type(self) is type(other) and self.unparse() == other.unparse()

    def __hash__(self):
        return hash((type(self).__name__, self.unparse()))


class NameTest(Expression):
    """A node test by element name, or ``*`` for any element."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name  # "*" means any element

    def matches(self, tag):
        return self.name == "*" or self.name == tag

    def unparse(self):
        return self.name


class NodeTypeTest(Expression):
    """A node test by type: ``node()`` or ``text()``."""

    __slots__ = ("node_type",)

    def __init__(self, node_type):
        self.node_type = node_type

    def unparse(self):
        return f"{self.node_type}()"


class Step(Expression):
    """One location step: axis, node test and predicates."""

    __slots__ = ("axis", "node_test", "predicates")

    def __init__(self, axis, node_test, predicates=()):
        self.axis = axis
        self.node_test = node_test
        self.predicates = list(predicates)

    def children(self):
        return tuple(self.predicates)

    def is_abbreviatable_attribute(self):
        return self.axis == "attribute"

    def unparse(self):
        if self.axis == "child":
            base = self.node_test.unparse()
        elif self.axis == "attribute":
            base = "@" + self.node_test.unparse()
        elif (
            self.axis == "self"
            and isinstance(self.node_test, NodeTypeTest)
            and self.node_test.node_type == "node"
            and not self.predicates
        ):
            return "."
        elif (
            self.axis == "parent"
            and isinstance(self.node_test, NodeTypeTest)
            and self.node_test.node_type == "node"
            and not self.predicates
        ):
            return ".."
        else:
            base = f"{self.axis}::{self.node_test.unparse()}"
        return base + "".join(f"[{p.unparse()}]" for p in self.predicates)


class LocationPath(Expression):
    """A (possibly absolute) sequence of steps.

    ``//`` is represented, per the spec, as a ``descendant-or-self::node()``
    step between the neighbouring steps.
    """

    __slots__ = ("absolute", "steps")

    def __init__(self, absolute, steps):
        self.absolute = absolute
        self.steps = list(steps)

    def children(self):
        return tuple(self.steps)

    def unparse(self):
        rendered = []
        i = 0
        steps = self.steps
        while i < len(steps):
            step = steps[i]
            if (
                step.axis == "descendant-or-self"
                and isinstance(step.node_test, NodeTypeTest)
                and step.node_test.node_type == "node"
                and not step.predicates
                and i + 1 < len(steps)
            ):
                rendered.append("//" + steps[i + 1].unparse())
                i += 2
                continue
            rendered.append(("/" if rendered else "") + step.unparse())
            i += 1
        body = "".join(rendered)
        if self.absolute:
            if body.startswith("//"):
                return body
            return "/" + body if body else "/"
        return body if body else "."


class FilterExpression(Expression):
    """A primary expression with optional predicates and a trailing path.

    Represents e.g. ``$spots[price=0]/name`` or ``(a | b)/c``.
    """

    __slots__ = ("primary", "predicates", "path")

    def __init__(self, primary, predicates=(), path=None):
        self.primary = primary
        self.predicates = list(predicates)
        self.path = path  # a relative LocationPath or None

    def children(self):
        out = [self.primary]
        out.extend(self.predicates)
        if self.path is not None:
            out.append(self.path)
        return tuple(out)

    def unparse(self):
        text = self.primary.unparse()
        if isinstance(self.primary, (BinaryOperation, UnaryMinus)):
            text = f"({text})"
        text += "".join(f"[{p.unparse()}]" for p in self.predicates)
        if self.path is not None:
            rendered = self.path.unparse()
            joiner = "" if rendered.startswith("/") else "/"
            text += joiner + rendered
        return text


_PRECEDENCE = {
    "or": 1, "and": 2, "=": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "*": 6, "div": 6, "mod": 6, "|": 8,
}
_ASSOCIATIVE = {"or", "and", "+", "*", "|"}


class BinaryOperation(Expression):
    """A binary operation: or, and, comparisons, arithmetic, union."""

    __slots__ = ("operator", "left", "right")

    def __init__(self, operator, left, right):
        self.operator = operator
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def unparse(self):
        own = _PRECEDENCE[self.operator]

        def render(side, is_right):
            text = side.unparse()
            if not isinstance(side, BinaryOperation):
                return text
            child = _PRECEDENCE[side.operator]
            if child < own:
                return f"({text})"
            if child == own and is_right and \
                    self.operator not in _ASSOCIATIVE:
                return f"({text})"
            return text

        return (
            f"{render(self.left, False)} {self.operator} "
            f"{render(self.right, True)}"
        )


class UnaryMinus(Expression):
    """Unary negation."""

    __slots__ = ("operand",)

    def __init__(self, operand):
        self.operand = operand

    def children(self):
        return (self.operand,)

    def unparse(self):
        text = self.operand.unparse()
        if isinstance(self.operand, (BinaryOperation, UnaryMinus)):
            text = f"({text})"
        return f"-{text}"


class FunctionCall(Expression):
    """A call to a core-library or extension function."""

    __slots__ = ("name", "arguments")

    def __init__(self, name, arguments=()):
        self.name = name
        self.arguments = list(arguments)

    def children(self):
        return tuple(self.arguments)

    def unparse(self):
        args = ", ".join(a.unparse() for a in self.arguments)
        return f"{self.name}({args})"


class Literal(Expression):
    """A string literal."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def unparse(self):
        if "'" not in self.value:
            return f"'{self.value}'"
        return f'"{self.value}"'


class NumberLiteral(Expression):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = float(value)

    def unparse(self):
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


class VariableReference(Expression):
    """A ``$name`` variable reference."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def unparse(self):
        return f"${self.name}"


def walk(expression):
    """Yield *expression* and every descendant expression node."""
    stack = [expression]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def iter_location_paths(expression):
    """Yield every :class:`LocationPath` in the expression tree."""
    for node in walk(expression):
        if isinstance(node, LocationPath):
            yield node
