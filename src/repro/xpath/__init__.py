"""XPath 1.0 engine (unordered fragment) and query analysis.

The paper's system is queried in XPATH; this package provides the
complete query pipeline -- lexer, parser, AST, evaluator, core function
library -- plus the static analyses the distributed query processor
needs (ID-path / DNS-name extraction, nesting depth, predicate
splitting).
"""

from repro.xpath.analysis import (
    PredicateSplit,
    classify_predicate,
    dns_name_for_id_path,
    earliest_nested_reference_index,
    extract_id_path,
    nesting_depth,
    result_tag_names,
    sanitize_dns_label,
    single_id_value,
    split_predicates,
)
from repro.xpath.ast import (
    BinaryOperation,
    FilterExpression,
    FunctionCall,
    Literal,
    LocationPath,
    NameTest,
    NodeTypeTest,
    NumberLiteral,
    Step,
    UnaryMinus,
    VariableReference,
    iter_location_paths,
    walk,
)
from repro.xpath.compiler import XPathQuery, compile_xpath, evaluate_xpath
from repro.xpath.errors import (
    XPathError,
    XPathEvaluationError,
    XPathSyntaxError,
    XPathTypeError,
    XPathUnsupportedError,
)
from repro.xpath.evaluator import Evaluator
from repro.xpath.parser import parse
from repro.xpath.types import AttributeRef, to_boolean, to_number, to_string

__all__ = [
    "XPathQuery",
    "compile_xpath",
    "evaluate_xpath",
    "parse",
    "Evaluator",
    "AttributeRef",
    "to_boolean",
    "to_number",
    "to_string",
    "LocationPath",
    "Step",
    "NameTest",
    "NodeTypeTest",
    "BinaryOperation",
    "UnaryMinus",
    "FunctionCall",
    "FilterExpression",
    "Literal",
    "NumberLiteral",
    "VariableReference",
    "walk",
    "iter_location_paths",
    "extract_id_path",
    "single_id_value",
    "dns_name_for_id_path",
    "sanitize_dns_label",
    "nesting_depth",
    "classify_predicate",
    "split_predicates",
    "PredicateSplit",
    "result_tag_names",
    "earliest_nested_reference_index",
    "XPathError",
    "XPathSyntaxError",
    "XPathUnsupportedError",
    "XPathTypeError",
    "XPathEvaluationError",
]
