"""The XPath 1.0 core function library (unordered fragment).

``position()`` and ``last()`` are rejected at parse time; everything
else in the core library that is meaningful for unordered, namespace-
free documents is provided here.

Two extension functions support the paper's query-based consistency
(Section 4): ``current-time()`` returns the evaluation context's clock
reading, and ``timestamp(node-set?)`` returns the ``timestamp``
attribute of a node as a number.
"""

import math

from repro.xmlkit.nodes import Document, Element, Text
from repro.xpath.errors import XPathEvaluationError, XPathTypeError
from repro.xpath.types import (
    AttributeRef,
    is_node_set,
    node_string_value,
    to_boolean,
    to_number,
    to_string,
)


def _require_arity(name, arguments, low, high=None):
    high = low if high is None else high
    if not (low <= len(arguments) <= high):
        expected = str(low) if low == high else f"{low}..{high}"
        raise XPathEvaluationError(
            f"{name}() expects {expected} argument(s), got {len(arguments)}"
        )


def _node_set_argument(name, value):
    if not is_node_set(value):
        raise XPathTypeError(f"{name}() requires a node-set argument")
    return value


# ----------------------------------------------------------------------
# Node-set functions
# ----------------------------------------------------------------------
def fn_count(context, arguments):
    _require_arity("count", arguments, 1)
    return float(len(_node_set_argument("count", arguments[0])))


def _node_name(node):
    if isinstance(node, Element):
        return node.tag
    if isinstance(node, AttributeRef):
        return node.name
    return ""


def fn_name(context, arguments):
    _require_arity("name", arguments, 0, 1)
    if arguments:
        node_set = _node_set_argument("name", arguments[0])
        if not node_set:
            return ""
        return _node_name(node_set[0])
    return _node_name(context.node)


def fn_local_name(context, arguments):
    # No namespaces in this system: identical to name().
    return fn_name(context, arguments)


# ----------------------------------------------------------------------
# String functions
# ----------------------------------------------------------------------
def fn_string(context, arguments):
    _require_arity("string", arguments, 0, 1)
    if arguments:
        return to_string(arguments[0])
    return node_string_value(context.node)


def fn_concat(context, arguments):
    if len(arguments) < 2:
        raise XPathEvaluationError("concat() expects at least 2 arguments")
    return "".join(to_string(a) for a in arguments)


def fn_starts_with(context, arguments):
    _require_arity("starts-with", arguments, 2)
    return to_string(arguments[0]).startswith(to_string(arguments[1]))


def fn_contains(context, arguments):
    _require_arity("contains", arguments, 2)
    return to_string(arguments[1]) in to_string(arguments[0])


def fn_substring_before(context, arguments):
    _require_arity("substring-before", arguments, 2)
    haystack = to_string(arguments[0])
    needle = to_string(arguments[1])
    index = haystack.find(needle)
    return haystack[:index] if index >= 0 else ""


def fn_substring_after(context, arguments):
    _require_arity("substring-after", arguments, 2)
    haystack = to_string(arguments[0])
    needle = to_string(arguments[1])
    index = haystack.find(needle)
    return haystack[index + len(needle):] if index >= 0 else ""


def fn_substring(context, arguments):
    _require_arity("substring", arguments, 2, 3)
    text = to_string(arguments[0])
    start = to_number(arguments[1])
    if math.isnan(start):
        return ""
    start = round(start)
    if len(arguments) == 3:
        length = to_number(arguments[2])
        if math.isnan(length):
            return ""
        end = start + round(length)
    else:
        end = math.inf
    # XPath positions are 1-based; round() semantics per the spec.
    chars = []
    for position, ch in enumerate(text, start=1):
        if position >= start and position < end:
            chars.append(ch)
    return "".join(chars)


def fn_string_length(context, arguments):
    _require_arity("string-length", arguments, 0, 1)
    if arguments:
        return float(len(to_string(arguments[0])))
    return float(len(node_string_value(context.node)))


def fn_normalize_space(context, arguments):
    _require_arity("normalize-space", arguments, 0, 1)
    if arguments:
        text = to_string(arguments[0])
    else:
        text = node_string_value(context.node)
    return " ".join(text.split())


def fn_translate(context, arguments):
    _require_arity("translate", arguments, 3)
    text = to_string(arguments[0])
    source = to_string(arguments[1])
    target = to_string(arguments[2])
    mapping = {}
    for index, ch in enumerate(source):
        if ch not in mapping:
            mapping[ch] = target[index] if index < len(target) else None
    out = []
    for ch in text:
        if ch in mapping:
            replacement = mapping[ch]
            if replacement is not None:
                out.append(replacement)
        else:
            out.append(ch)
    return "".join(out)


# ----------------------------------------------------------------------
# Boolean functions
# ----------------------------------------------------------------------
def fn_boolean(context, arguments):
    _require_arity("boolean", arguments, 1)
    return to_boolean(arguments[0])


def fn_not(context, arguments):
    _require_arity("not", arguments, 1)
    return not to_boolean(arguments[0])


def fn_true(context, arguments):
    _require_arity("true", arguments, 0)
    return True


def fn_false(context, arguments):
    _require_arity("false", arguments, 0)
    return False


# ----------------------------------------------------------------------
# Number functions
# ----------------------------------------------------------------------
def fn_number(context, arguments):
    _require_arity("number", arguments, 0, 1)
    if arguments:
        return to_number(arguments[0])
    return to_number(node_string_value(context.node))


def fn_sum(context, arguments):
    _require_arity("sum", arguments, 1)
    node_set = _node_set_argument("sum", arguments[0])
    values = [to_number(node_string_value(n)) for n in node_set]
    # fsum is correctly rounded: the answer does not depend on document
    # order, and it agrees bit-for-bit with the hierarchical rollup's
    # exact-rational sum.  fsum raises where IEEE accumulation is the
    # wanted semantics (mixed infinities -> NaN, true overflow -> inf).
    try:
        return float(math.fsum(values))
    except (OverflowError, ValueError):
        return float(sum(values))


def fn_floor(context, arguments):
    _require_arity("floor", arguments, 1)
    value = to_number(arguments[0])
    return value if math.isnan(value) else float(math.floor(value))


def fn_ceiling(context, arguments):
    _require_arity("ceiling", arguments, 1)
    value = to_number(arguments[0])
    return value if math.isnan(value) else float(math.ceil(value))


def fn_round(context, arguments):
    _require_arity("round", arguments, 1)
    value = to_number(arguments[0])
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value + 0.5))  # XPath rounds .5 up


# ----------------------------------------------------------------------
# Extension functions for query-based consistency
# ----------------------------------------------------------------------
def fn_current_time(context, arguments):
    """The evaluation context's clock reading, in seconds.

    The paper's consistency predicates are phrased against "now"
    according to the querying site's clock; evaluation contexts carry a
    ``now`` value so results are deterministic and testable.
    """
    _require_arity("current-time", arguments, 0)
    if context.now is None:
        raise XPathEvaluationError(
            "current-time() used but no clock was supplied to the evaluator"
        )
    return float(context.now)


def fn_timestamp(context, arguments):
    """The ``timestamp`` of a node, as a number.

    With no argument, applies to the context node.  A node without its
    own ``timestamp`` attribute inherits the nearest ancestor's: data
    is timestamped at IDable-node granularity, so the value inside
    (say) an ``available`` element is the enclosing parking space's.
    Returns NaN when no ancestor carries a timestamp either.
    """
    _require_arity("timestamp", arguments, 0, 1)
    if arguments:
        node_set = _node_set_argument("timestamp", arguments[0])
        if not node_set:
            return math.nan
        node = node_set[0]
    else:
        node = context.node
    if isinstance(node, Document):
        node = node.root
    if isinstance(node, (Text, AttributeRef)):
        node = node.parent if isinstance(node, Text) else node.owner
    while isinstance(node, Element):
        value = node.get("timestamp")
        if value is not None:
            return to_number(value)
        node = node.parent
    return math.nan


CORE_FUNCTIONS = {
    "count": fn_count,
    "name": fn_name,
    "local-name": fn_local_name,
    "string": fn_string,
    "concat": fn_concat,
    "starts-with": fn_starts_with,
    "contains": fn_contains,
    "substring-before": fn_substring_before,
    "substring-after": fn_substring_after,
    "substring": fn_substring,
    "string-length": fn_string_length,
    "normalize-space": fn_normalize_space,
    "translate": fn_translate,
    "boolean": fn_boolean,
    "not": fn_not,
    "true": fn_true,
    "false": fn_false,
    "number": fn_number,
    "sum": fn_sum,
    "floor": fn_floor,
    "ceiling": fn_ceiling,
    "round": fn_round,
    "current-time": fn_current_time,
    "timestamp": fn_timestamp,
}
