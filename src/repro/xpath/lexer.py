"""Tokenizer for XPath 1.0 expressions.

Implements the lexical structure of XPath 1.0 (spec section 3.7),
including the disambiguation rules that decide whether ``*`` is a
multiplication operator or a wildcard, and whether an NCName is an
operator name (``and``, ``or``, ``div``, ``mod``), a function name, a
node-type test or an ordinary name test.

One deliberate extension: operator names are recognized
case-insensitively, so the paper's ``[@id='Oakland' OR @id='Shadyside']``
parses as written in the figures.
"""

from repro.xpath.errors import XPathSyntaxError

# Token kinds.
SLASH = "SLASH"            # /
DOUBLE_SLASH = "DSLASH"    # //
LBRACKET = "LBRACKET"      # [
RBRACKET = "RBRACKET"      # ]
LPAREN = "LPAREN"          # (
RPAREN = "RPAREN"          # )
AT = "AT"                  # @
COMMA = "COMMA"            # ,
DOT = "DOT"                # .
DOTDOT = "DOTDOT"          # ..
PIPE = "PIPE"              # |
PLUS = "PLUS"              # +
MINUS = "MINUS"            # -
EQ = "EQ"                  # =
NEQ = "NEQ"                # !=
LT = "LT"                  # <
LE = "LE"                  # <=
GT = "GT"                  # >
GE = "GE"                  # >=
MULTIPLY = "MULTIPLY"      # * (operator position)
STAR = "STAR"              # * (wildcard position)
AND = "AND"
OR = "OR"
DIV = "DIV"
MOD = "MOD"
AXIS = "AXIS"              # name followed by ::
NAME = "NAME"              # name test
FUNCTION = "FUNCTION"      # name followed by (
NODETYPE = "NODETYPE"      # node/text/comment/processing-instruction + (
LITERAL = "LITERAL"
NUMBER = "NUMBER"
VARIABLE = "VARIABLE"      # $name
EOF = "EOF"

_OPERATOR_NAMES = {"and": AND, "or": OR, "div": DIV, "mod": MOD}
_NODE_TYPES = {"node", "text", "comment", "processing-instruction"}

# Token kinds after which an NCName / * must be interpreted as a name
# test (not an operator).  Per the spec: "if there is no preceding
# token, or the preceding token is @, ::, (, [, ',' or an Operator".
_OPERAND_EXPECTED_AFTER = {
    None, AT, AXIS, LPAREN, LBRACKET, COMMA, SLASH, DOUBLE_SLASH,
    AND, OR, DIV, MOD, MULTIPLY, PIPE, PLUS, MINUS,
    EQ, NEQ, LT, LE, GT, GE,
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-.")
_DIGITS = set("0123456789")


class Token:
    """A single lexical token with its source offset."""

    __slots__ = ("kind", "value", "offset")

    def __init__(self, kind, value, offset):
        self.kind = kind
        self.value = value
        self.offset = offset

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, @{self.offset})"

    def __eq__(self, other):
        return (
            isinstance(other, Token)
            and (self.kind, self.value) == (other.kind, other.value)
        )

    def __hash__(self):
        return hash((self.kind, self.value))


def _read_name(source, i):
    """Read an NCName (allowing interior hyphens/dots) starting at *i*."""
    j = i + 1
    n = len(source)
    while j < n and source[j] in _NAME_CHARS:
        j += 1
    # A name must not end with '.' followed by a digit run that we
    # should have lexed as part of the name anyway; names like
    # "processing-instruction" contain '-', which is fine.
    return source[i:j], j


def tokenize(source):
    """Tokenize *source*, returning a list of :class:`Token`.

    The list always ends with an ``EOF`` token.  Raises
    :class:`XPathSyntaxError` on illegal characters.
    """
    tokens = []
    previous_kind = None
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
            continue
        start = i
        if ch == "/":
            if source.startswith("//", i):
                tokens.append(Token(DOUBLE_SLASH, "//", start))
                i += 2
            else:
                tokens.append(Token(SLASH, "/", start))
                i += 1
        elif ch == "[":
            tokens.append(Token(LBRACKET, "[", start))
            i += 1
        elif ch == "]":
            tokens.append(Token(RBRACKET, "]", start))
            i += 1
        elif ch == "(":
            tokens.append(Token(LPAREN, "(", start))
            i += 1
        elif ch == ")":
            tokens.append(Token(RPAREN, ")", start))
            i += 1
        elif ch == "@":
            tokens.append(Token(AT, "@", start))
            i += 1
        elif ch == ",":
            tokens.append(Token(COMMA, ",", start))
            i += 1
        elif ch == "|":
            tokens.append(Token(PIPE, "|", start))
            i += 1
        elif ch == "+":
            tokens.append(Token(PLUS, "+", start))
            i += 1
        elif ch == "-":
            tokens.append(Token(MINUS, "-", start))
            i += 1
        elif ch == "=":
            tokens.append(Token(EQ, "=", start))
            i += 1
        elif ch == "!":
            if source.startswith("!=", i):
                tokens.append(Token(NEQ, "!=", start))
                i += 2
            else:
                raise XPathSyntaxError("unexpected '!'", start)
        elif ch == "<":
            if source.startswith("<=", i):
                tokens.append(Token(LE, "<=", start))
                i += 2
            else:
                tokens.append(Token(LT, "<", start))
                i += 1
        elif ch == ">":
            if source.startswith(">=", i):
                tokens.append(Token(GE, ">=", start))
                i += 2
            else:
                tokens.append(Token(GT, ">", start))
                i += 1
        elif ch == "." and (i + 1 >= n or source[i + 1] not in _DIGITS):
            if source.startswith("..", i):
                tokens.append(Token(DOTDOT, "..", start))
                i += 2
            else:
                tokens.append(Token(DOT, ".", start))
                i += 1
        elif ch in "'\"":
            end = source.find(ch, i + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", start)
            tokens.append(Token(LITERAL, source[i + 1:end], start))
            i = end + 1
        elif ch in _DIGITS or ch == ".":
            j = i
            while j < n and source[j] in _DIGITS:
                j += 1
            if j < n and source[j] == ".":
                j += 1
                while j < n and source[j] in _DIGITS:
                    j += 1
            tokens.append(Token(NUMBER, float(source[i:j]), start))
            i = j
        elif ch == "$":
            if i + 1 >= n or source[i + 1] not in _NAME_START:
                raise XPathSyntaxError("expected a variable name after '$'", start)
            name, i = _read_name(source, i + 1)
            tokens.append(Token(VARIABLE, name, start))
        elif ch == "*":
            if previous_kind in _OPERAND_EXPECTED_AFTER:
                tokens.append(Token(STAR, "*", start))
            else:
                tokens.append(Token(MULTIPLY, "*", start))
            i += 1
        elif ch in _NAME_START:
            name, i = _read_name(source, i)
            lowered = name.lower()
            if (
                previous_kind not in _OPERAND_EXPECTED_AFTER
                and lowered in _OPERATOR_NAMES
            ):
                tokens.append(Token(_OPERATOR_NAMES[lowered], lowered, start))
            else:
                # Look ahead past whitespace for '(' or '::'.
                j = i
                while j < n and source[j] in " \t\r\n":
                    j += 1
                if source.startswith("::", j):
                    tokens.append(Token(AXIS, name, start))
                    i = j + 2
                elif j < n and source[j] == "(":
                    if name in _NODE_TYPES:
                        tokens.append(Token(NODETYPE, name, start))
                    else:
                        tokens.append(Token(FUNCTION, name, start))
                    # Leave the '(' itself to be tokenized normally.
                    i = j
                else:
                    tokens.append(Token(NAME, name, start))
        else:
            raise XPathSyntaxError(f"illegal character {ch!r}", start)
        previous_kind = tokens[-1].kind
    tokens.append(Token(EOF, None, n))
    return tokens
