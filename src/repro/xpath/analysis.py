"""Query analysis passes used by the distributed query processor.

These implement the paper's static analyses of an XPATH query:

* **ID-path extraction** (Section 3.4): the longest prefix of
  ``/elementname[@id=x]`` steps, from which the DNS-style name of the
  query's lowest common ancestor (LCA) is built -- with *no* global
  information and no schema knowledge.
* **Nesting depth** (Definition 3.3): the maximum predicate-nesting
  level at which a location path traversing IDable nodes occurs.
* **Predicate splitting** (Section 3.5 / 4): dividing a step's
  predicate set ``P`` into ``P_id`` (predicates only on ``@id``),
  ``P_consistency`` (freshness predicates on timestamps) and
  ``P_rest``, with a *separable* flag when the division is not
  straightforward and QEG must conservatively ask a subquery.
"""

from repro.xpath.ast import (
    BinaryOperation,
    FilterExpression,
    FunctionCall,
    Literal,
    LocationPath,
    NameTest,
    NodeTypeTest,
    NumberLiteral,
    Step,
    VariableReference,
)
from repro.xpath.errors import XPathError

# Reference categories for predicate classification.
REF_ID = "id"
REF_CONSISTENCY = "consistency"
REF_OTHER = "other"

_CONSISTENCY_FUNCTIONS = {"timestamp", "current-time"}


# ----------------------------------------------------------------------
# ID-path extraction
# ----------------------------------------------------------------------
def single_id_value(step):
    """The unique ``@id`` value this step pins, or ``None``.

    A step such as ``city[@id='Pittsburgh']`` pins one value; a step
    with an id disjunction (``[@id='a' or @id='b']``) or with no id
    predicate pins none.
    """
    values = set()
    for predicate in step.predicates:
        value = _id_equality_value(predicate)
        if value is not None:
            values.add(value)
        else:
            # An AND chain may still contain an id conjunct.
            for conjunct in _iter_conjuncts(predicate):
                value = _id_equality_value(conjunct)
                if value is not None:
                    values.add(value)
    if len(values) == 1:
        return values.pop()
    return None


def _iter_conjuncts(expression):
    if isinstance(expression, BinaryOperation) and expression.operator == "and":
        yield from _iter_conjuncts(expression.left)
        yield from _iter_conjuncts(expression.right)
    else:
        yield expression


def _is_id_attribute_path(expression):
    return (
        isinstance(expression, LocationPath)
        and not expression.absolute
        and len(expression.steps) == 1
        and expression.steps[0].axis == "attribute"
        and isinstance(expression.steps[0].node_test, NameTest)
        and expression.steps[0].node_test.name == "id"
        and not expression.steps[0].predicates
    )


def _id_equality_value(expression):
    """If *expression* is ``@id = 'literal'`` (either order), the literal."""
    if not isinstance(expression, BinaryOperation) or expression.operator != "=":
        return None
    left, right = expression.left, expression.right
    if _is_id_attribute_path(left) and isinstance(right, Literal):
        return right.value
    if _is_id_attribute_path(right) and isinstance(left, Literal):
        return left.value
    return None


def extract_id_path(expression):
    """The longest ``(tag, id)`` prefix of an absolute location path.

    Returns a list of ``(element name, id value)`` pairs.  The last
    pair names the query's LCA node; an empty list means the query must
    start at the document root's owner.

    Mirrors the paper's "simple parser" that needs no schema: it walks
    the query from the beginning as long as it finds steps of the form
    ``/elementname[@id=x]``.
    """
    if not isinstance(expression, LocationPath) or not expression.absolute:
        return []
    prefix = []
    for step in expression.steps:
        if step.axis != "child" or not isinstance(step.node_test, NameTest) \
                or step.node_test.name == "*":
            break
        value = single_id_value(step)
        if value is None:
            break
        prefix.append((step.node_test.name, value))
    return prefix


def anchor_id_path(query):
    """The anchor id path of a query string or AST, or ``None``.

    Convenience over :func:`extract_id_path`: parses a string,
    unwraps an aggregate ``FunctionCall`` down to its location-path
    argument, and returns the anchor as a tuple of ``(tag, id)``
    tuples -- ``None`` for queries with no usable anchor (or that do
    not parse at all).  Shared by query routing, the per-path load
    tracker, and migration-time cache eviction.
    """
    from repro.xpath import parser as _parser

    try:
        ast = _parser.parse(query) if isinstance(query, str) else query
        if isinstance(ast, FunctionCall) and ast.arguments and \
                isinstance(ast.arguments[0], LocationPath):
            ast = ast.arguments[0]
        anchor = extract_id_path(ast)
    except Exception:
        return None
    if not anchor:
        return None
    return tuple(tuple(entry) for entry in anchor)


def sanitize_dns_label(value):
    """Make an id value usable as a DNS label (lowercase, hyphenated)."""
    cleaned = []
    for ch in value.lower():
        if ch.isalnum():
            cleaned.append(ch)
        elif ch in " _-.":
            cleaned.append("-")
    label = "".join(cleaned).strip("-")
    return label or "x"


def dns_name_for_id_path(id_path, service="parking", zone="intel-iris.net"):
    """DNS-style name for an ID path, most-specific label first.

    ``[(usRegion, NE), ..., (city, Pittsburgh)]`` becomes
    ``pittsburgh.allegheny.pa.ne.parking.intel-iris.net``.
    """
    labels = [sanitize_dns_label(value) for _, value in reversed(id_path)]
    labels.append(service)
    labels.append(zone)
    return ".".join(labels)


# ----------------------------------------------------------------------
# Nesting depth (Definition 3.3)
# ----------------------------------------------------------------------
def _path_traverses_idable(path, is_idable_tag):
    """Whether a location path traverses over IDable element nodes."""
    for step in path.steps:
        if step.axis == "attribute":
            continue
        if step.axis in ("parent", "ancestor", "ancestor-or-self"):
            # Conservative: upward references reach IDable ancestors.
            return True
        if isinstance(step.node_test, NameTest):
            if step.node_test.name == "*" or is_idable_tag(step.node_test.name):
                return True
        elif step.node_test.node_type == "node" and \
                step.axis in ("descendant", "descendant-or-self"):
            # A descendant sweep may cross IDable nodes.
            return True
    return False


def nesting_depth(expression, is_idable_tag=None):
    """Compute the nesting depth of a query (Definition 3.3).

    *is_idable_tag* is a predicate on element names; when omitted,
    every name is assumed IDable (the conservative choice when no
    schema is available).
    """
    if is_idable_tag is None:
        is_idable_tag = lambda tag: True  # noqa: E731 - tiny default
    elif isinstance(is_idable_tag, (set, frozenset)):
        tags = is_idable_tag
        is_idable_tag = lambda tag: tag in tags  # noqa: E731

    best = 0

    def visit(node, level):
        nonlocal best
        if isinstance(node, LocationPath):
            if level >= 1 and _path_traverses_idable(node, is_idable_tag):
                best = max(best, level)
            for step in node.steps:
                for predicate in step.predicates:
                    visit(predicate, level + 1)
        elif isinstance(node, Step):
            for predicate in node.predicates:
                visit(predicate, level + 1)
        elif isinstance(node, FilterExpression):
            visit(node.primary, level)
            for predicate in node.predicates:
                visit(predicate, level + 1)
            if node.path is not None:
                visit(node.path, level)
        else:
            for child in node.children():
                visit(child, level)

    visit(expression, 0)
    return best


# ----------------------------------------------------------------------
# Predicate classification and splitting
# ----------------------------------------------------------------------
def _reference_categories(expression, categories):
    """Accumulate the context-reference categories used by *expression*."""
    if isinstance(expression, LocationPath):
        if expression.absolute:
            categories.add(REF_OTHER)
            return
        if _is_id_attribute_path(expression):
            categories.add(REF_ID)
            return
        if (
            len(expression.steps) == 1
            and expression.steps[0].axis == "attribute"
            and isinstance(expression.steps[0].node_test, NameTest)
            and expression.steps[0].node_test.name == "timestamp"
        ):
            categories.add(REF_CONSISTENCY)
            return
        categories.add(REF_OTHER)
        # Predicates nested inside the path may add references of their
        # own, but the path itself already forces REF_OTHER.
        return
    if isinstance(expression, FunctionCall):
        if expression.name in _CONSISTENCY_FUNCTIONS:
            categories.add(REF_CONSISTENCY)
        elif expression.name in ("string", "number", "string-length",
                                 "normalize-space", "name", "local-name") \
                and not expression.arguments:
            # Zero-argument forms read the context node's value.
            categories.add(REF_OTHER)
        for argument in expression.arguments:
            _reference_categories(argument, categories)
        return
    if isinstance(expression, (Literal, NumberLiteral, VariableReference)):
        return
    for child in expression.children():
        _reference_categories(child, categories)


def classify_predicate(expression):
    """The set of reference categories a predicate uses.

    An empty set means the predicate is context-free (e.g. ``true()``).
    """
    categories = set()
    _reference_categories(expression, categories)
    return frozenset(categories)


class PredicateSplit:
    """The division of a step's predicates into P_id, P_consistency, P_rest.

    ``separable`` is ``False`` when some predicate mixes categories in a
    way that cannot be split along a top-level AND chain; QEG then falls
    back to asking a subquery (Section 3.5, case status=incomplete).
    """

    __slots__ = ("id_predicates", "consistency_predicates", "rest_predicates",
                 "separable")

    def __init__(self, id_predicates, consistency_predicates, rest_predicates,
                 separable):
        self.id_predicates = id_predicates
        self.consistency_predicates = consistency_predicates
        self.rest_predicates = rest_predicates
        self.separable = separable

    @property
    def has_consistency(self):
        return bool(self.consistency_predicates)

    def __repr__(self):
        return (
            f"PredicateSplit(id={[p.unparse() for p in self.id_predicates]}, "
            f"consistency={[p.unparse() for p in self.consistency_predicates]}, "
            f"rest={[p.unparse() for p in self.rest_predicates]}, "
            f"separable={self.separable})"
        )


def split_predicates(predicates):
    """Split a predicate list into id / consistency / rest parts.

    Predicates in a list are implicitly conjoined, so each predicate
    (or each conjunct of a top-level AND chain) can be classified
    independently.  A predicate that mixes categories below an OR (or
    inside a function call) is unsplittable: everything is returned in
    ``rest_predicates`` with ``separable=False``.
    """
    id_predicates = []
    consistency_predicates = []
    rest_predicates = []
    for predicate in predicates:
        for conjunct in _iter_conjuncts(predicate):
            categories = classify_predicate(conjunct)
            if categories <= {REF_ID}:
                id_predicates.append(conjunct)
            elif categories == {REF_CONSISTENCY}:
                consistency_predicates.append(conjunct)
            elif REF_ID in categories or REF_CONSISTENCY in categories:
                return PredicateSplit([], [], list(predicates), separable=False)
            else:
                rest_predicates.append(conjunct)
    return PredicateSplit(id_predicates, consistency_predicates,
                          rest_predicates, separable=True)


# ----------------------------------------------------------------------
# Result-shape analysis
# ----------------------------------------------------------------------
def require_location_path(expression):
    """Return *expression* as an absolute LocationPath or raise."""
    if not isinstance(expression, LocationPath):
        raise XPathError(
            "distributed evaluation requires a location-path query, got "
            f"{type(expression).__name__}"
        )
    if not expression.absolute:
        raise XPathError("distributed evaluation requires an absolute query")
    return expression


def result_tag_names(expression):
    """The element names the query's final step can select.

    Returns a set of names, where ``"*"`` means "any element".  Used to
    seed LOCAL-INFO-REQUIRED; descendant IDable tags are added by the
    schema-aware layer in :mod:`repro.core`.
    """
    path = require_location_path(expression)
    if not path.steps:
        return {"*"}
    last = path.steps[-1]
    if isinstance(last.node_test, NameTest):
        return {last.node_test.name}
    if isinstance(last.node_test, NodeTypeTest) and \
            last.node_test.node_type == "node":
        return {"*"}
    return set()


def earliest_nested_reference_index(expression, is_idable_tag=None):
    """Index of the earliest step referred to by a nested predicate.

    This drives the paper's strategy for nesting depth > 0 (Section 4,
    "Larger nesting depths"): execution pauses at the earliest tag a
    nested predicate refers to, fetches the whole subtree below it, and
    resumes.  An upward reference (``..``) from a predicate at step *i*
    moves the fetch point up to step ``i - levels``.

    Returns ``None`` when the query has nesting depth 0.
    """
    path = require_location_path(expression)
    if nesting_depth(expression, is_idable_tag) == 0:
        return None
    earliest = None
    for index, step in enumerate(path.steps):
        for predicate in step.predicates:
            if nesting_depth(predicate, is_idable_tag) == 0 and \
                    not _contains_idable_path(predicate, is_idable_tag):
                continue
            up_levels = _max_upward_levels(predicate)
            target = max(0, index - up_levels)
            if earliest is None or target < earliest:
                earliest = target
    return earliest


def _contains_idable_path(expression, is_idable_tag):
    return nesting_depth(FilterExpression(NumberLiteral(0), [expression]),
                         is_idable_tag) > 0


def _max_upward_levels(expression):
    """Deepest chain of leading ``..`` steps in any path of *expression*."""
    deepest = 0
    for node in _walk(expression):
        if isinstance(node, LocationPath) and not node.absolute:
            levels = 0
            for step in node.steps:
                if step.axis == "parent":
                    levels += 1
                elif step.axis in ("ancestor", "ancestor-or-self"):
                    levels = max(levels, 99)  # unbounded: clamp at root
                else:
                    break
            deepest = max(deepest, levels)
    return deepest


def _walk(expression):
    stack = [expression]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
