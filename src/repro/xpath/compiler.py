"""Public compile/evaluate API for XPath queries.

``compile_xpath`` parses once and returns a reusable
:class:`XPathQuery`; a small cache makes repeated compilation of the
same query string cheap, mirroring how the organizing agents reuse
compiled queries.
"""

import functools

from repro.xpath import parser
from repro.xpath.ast import LocationPath
from repro.xpath.errors import XPathTypeError
from repro.xpath.evaluator import Evaluator
from repro.xpath.types import is_node_set


class XPathQuery:
    """A compiled XPath query.

    Instances are immutable and safe to share; :meth:`evaluate` returns
    whatever XPath type the expression produces, while :meth:`select`
    insists on a node-set.
    """

    __slots__ = ("source", "ast", "_evaluator")

    def __init__(self, source, ast, evaluator=None):
        self.source = source
        self.ast = ast
        self._evaluator = evaluator or _DEFAULT_EVALUATOR

    def evaluate(self, node, variables=None, now=None):
        """Evaluate against *node*; returns node-set/bool/number/string."""
        return self._evaluator.evaluate(self.ast, node, variables=variables,
                                        now=now)

    def select(self, node, variables=None, now=None):
        """Evaluate and require a node-set result."""
        result = self.evaluate(node, variables=variables, now=now)
        if not is_node_set(result):
            raise XPathTypeError(
                f"query {self.source!r} did not return a node-set"
            )
        return result

    @property
    def is_location_path(self):
        return isinstance(self.ast, LocationPath)

    @property
    def is_absolute(self):
        return isinstance(self.ast, LocationPath) and self.ast.absolute

    def unparse(self):
        """Regenerate an equivalent query string from the AST."""
        return self.ast.unparse()

    def __repr__(self):
        return f"XPathQuery({self.source!r})"

    def __eq__(self, other):
        return isinstance(other, XPathQuery) and self.ast == other.ast

    def __hash__(self):
        return hash(self.ast)


_DEFAULT_EVALUATOR = Evaluator()


@functools.lru_cache(maxsize=4096)
def _parse_cached(source):
    return parser.parse(source)


def compile_xpath(source, extension_functions=None):
    """Compile *source* into an :class:`XPathQuery`.

    *extension_functions* is an optional mapping of name -> callable
    layered over the core function library.
    """
    ast = _parse_cached(source)
    evaluator = (
        Evaluator(extension_functions) if extension_functions else None
    )
    return XPathQuery(source, ast, evaluator)


def evaluate_xpath(source, node, variables=None, now=None):
    """One-shot convenience: compile and evaluate *source* at *node*."""
    return compile_xpath(source).evaluate(node, variables=variables, now=now)
