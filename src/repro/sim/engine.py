"""A small process-based discrete-event simulation engine.

Provides just what the cluster experiments need: an event loop with a
virtual clock, generator-based processes, FIFO resources (one per site,
modelling the paper's one-OA-per-machine deployment) and an all-of
barrier for parallel subqueries.

The API is a deliberate miniature of the well-known process-interaction
style: processes are generators that ``yield`` events; a yielded event
suspends the process until the event fires.
"""

import heapq
import itertools


class SimulationError(Exception):
    """Raised on misuse of the simulation primitives."""


class Event:
    """A one-shot event; processes waiting on it resume when it fires."""

    __slots__ = ("env", "callbacks", "triggered", "processed", "value")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self.triggered = False
        self.processed = False
        self.value = None

    def succeed(self, value=None):
        """Fire the event now."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._schedule(self, 0.0)
        return self

    def add_callback(self, callback):
        """Register *callback*; safe even after the event has fired."""
        if self.processed:
            # Late registration: deliver on a zero-delay trampoline so
            # the callback still runs from the event loop.
            trampoline = Event(self.env)
            trampoline.callbacks.append(
                lambda _e, cb=callback: cb(self)
            )
            trampoline.succeed(self.value)
        else:
            self.callbacks.append(callback)

    def __repr__(self):
        return f"<{type(self).__name__} triggered={self.triggered}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    def __init__(self, env, delay):
        super().__init__(env)
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.triggered = True
        env._schedule(self, delay)


class AllOf(Event):
    """Fires once every event in *events* has fired."""

    def __init__(self, env, events):
        super().__init__(env)
        self._pending = 0
        events = list(events)
        for event in events:
            self._pending += 1
            event.add_callback(self._on_child)
        if self._pending == 0:
            self.succeed()

    def _on_child(self, _event):
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed()


class Process(Event):
    """Drives a generator; fires (as an event) when the generator ends."""

    def __init__(self, env, generator):
        super().__init__(env)
        self.generator = generator
        bootstrap = Event(env)
        bootstrap.callbacks.append(lambda _e: self._resume(None))
        bootstrap.succeed()

    def _resume(self, event):
        try:
            if event is None:
                target = next(self.generator)
            else:
                target = self.generator.send(event.value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected an Event"
            )
        target.add_callback(self._resume)


class Resource:
    """A FIFO server pool (capacity defaults to a single server).

    ``request()`` returns an event that fires when a server is free;
    the holder must call ``release()`` afterwards.  Utilization
    statistics feed the experiment reports.
    """

    def __init__(self, env, capacity=1, name=""):
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting = []
        self.busy_time = 0.0
        self._busy_since = None
        self.served = 0

    def request(self):
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._grant(event)
        else:
            self._waiting.append(event)
        return event

    def _grant(self, event):
        self._in_use += 1
        if self._in_use == 1:
            self._busy_since = self.env.now
        self.served += 1
        event.succeed()

    def release(self):
        if self._in_use <= 0:
            raise SimulationError(f"resource {self.name!r} over-released")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None
        if self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.pop(0))

    def utilization(self, horizon):
        """Fraction of time busy over *horizon* seconds."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        return busy / horizon if horizon > 0 else 0.0

    @property
    def queue_length(self):
        return len(self._waiting)


class Environment:
    """The event loop and virtual clock."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._sequence = itertools.count()

    def _schedule(self, event, delay):
        heapq.heappush(self._heap,
                       (self.now + delay, next(self._sequence), event))

    # -- factories -------------------------------------------------------
    def event(self):
        return Event(self)

    def timeout(self, delay):
        return Timeout(self, delay)

    def process(self, generator):
        return Process(self, generator)

    def all_of(self, events):
        return AllOf(self, events)

    def resource(self, capacity=1, name=""):
        return Resource(self, capacity=capacity, name=name)

    # -- running ----------------------------------------------------------
    def step(self):
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        callbacks, event.callbacks = event.callbacks, []
        event.triggered = True
        event.processed = True
        for callback in callbacks:
            callback(event)

    def run(self, until=None):
        """Run until the heap drains or the clock passes *until*."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until
