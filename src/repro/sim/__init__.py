"""Discrete-event simulation of the cluster experiments (Figures 7-11)."""

from repro.sim.costmodel import CostModel
from repro.sim.engine import (
    AllOf,
    Environment,
    Event,
    Process,
    Resource,
    SimulationError,
    Timeout,
)
from repro.sim.metrics import WorkloadMetrics
from repro.sim.simcluster import SimulatedCluster
from repro.sim.trace import TraceNode, TracingNetwork

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Resource",
    "AllOf",
    "SimulationError",
    "CostModel",
    "WorkloadMetrics",
    "SimulatedCluster",
    "TraceNode",
    "TracingNetwork",
]
