"""Execution tracing: capture the RPC tree of a real query execution.

The simulator runs every query *for real* against the cluster engine
(so caching, routing and subquery fan-out are genuine) and records the
tree of inter-site calls.  The trace is then replayed through the
discrete-event queues with cost-model service times, which is what
turns correct answers into the paper's throughput/latency numbers.
"""

from repro.net.messages import QueryMessage, UpdateMessage
from repro.net.transport import LoopbackNetwork


class TraceNode:
    """One handled message at one site, with its nested calls."""

    __slots__ = ("site", "kind", "children", "request_size", "reply_size")

    def __init__(self, site, kind):
        self.site = site
        self.kind = kind
        self.children = []
        self.request_size = 0
        self.reply_size = 0

    @property
    def messages(self):
        """Messages constructed/parsed at this site for this call."""
        # The incoming request + its reply, plus one request/reply pair
        # per nested call issued from here.
        return 2 + 2 * len(self.children)

    def total_calls(self):
        return 1 + sum(child.total_calls() for child in self.children)

    def sites_touched(self):
        out = {self.site}
        for child in self.children:
            out |= child.sites_touched()
        return out

    def __repr__(self):
        return f"TraceNode({self.site}, {self.kind}, children={len(self.children)})"


class TracingNetwork(LoopbackNetwork):
    """Loopback delivery that builds :class:`TraceNode` trees.

    The trace is a single tree grown on a plain stack, so agents must
    dispatch their fan-out sequentially through this network; the
    flag below makes organizing agents do so automatically (the
    simulator models fan-out parallelism in virtual time instead --
    see the wave replay in :mod:`repro.sim.simcluster`).
    """

    requires_serial_dispatch = True

    def __init__(self, count_bytes=False):
        super().__init__(count_bytes=count_bytes)
        self.count_bytes = count_bytes
        self._stack = []

    def request(self, src, dst, message):
        if isinstance(message, QueryMessage):
            kind = "query"
        elif isinstance(message, UpdateMessage):
            kind = "update"
        else:
            kind = message.kind
        node = TraceNode(dst, kind)
        if self.count_bytes:
            node.request_size = message.encoded_size()
        if self._stack:
            self._stack[-1].children.append(node)
        self._stack.append(node)
        try:
            reply = super().request(src, dst, message)
        finally:
            self._stack.pop()
        if self.count_bytes and reply is not None:
            node.reply_size = reply.encoded_size()
        return reply

    def capture(self, entry_site, kind, fn):
        """Run *fn* attributing its work to *entry_site*; returns
        ``(fn result, trace root)``."""
        root = TraceNode(entry_site, kind)
        self._stack.append(root)
        try:
            result = fn()
        finally:
            self._stack.pop()
        return result, root
