"""The per-site processing cost model used by the simulator.

The paper evaluates on nine 2 GHz Pentium-IV machines running Java 1.3
with Xindice + Xalan; that testbed is gone, so the simulator charges
each processed message a service time assembled from the same
components the paper's micro-benchmarks measure (Figure 11):

* **QEG/XSLT creation** -- dominated by compilation when done naively;
  the "fast" path (pre-compiled skeleton, Section 4) is several times
  cheaper;
* **QEG/XSLT execution** -- grows sublinearly with the fragment size
  (the paper reports < 20% growth for an 8x database);
* **communication CPU** -- constructing/deconstructing messages;
* **rest** -- dispatch, bookkeeping.

Default constants are set to the magnitudes of Figure 11, which makes
single-site query service ≈ 0.1-0.5s and one OA sustain ≈ 200
updates/s (Section 5.2), so all throughput *shapes* of Figures 7-10
emerge from queueing rather than hand-tuned outputs.
``CostModel.calibrated()`` instead measures this repository's own
engine and scales it to the paper's magnitudes.
"""

import time


class CostModel:
    """Service-time parameters (seconds)."""

    def __init__(self,
                 codegen_naive=0.220,
                 codegen_fast=0.040,
                 execute_base=0.065,
                 execute_reference_nodes=9737,
                 execute_size_exponent=0.09,
                 comm_cpu=0.008,
                 network_latency=0.001,
                 dns_hop_latency=0.010,
                 rest=0.012,
                 update_cost=0.005,
                 migration_cost=0.050,
                 forward_factor=0.35,
                 fanout_width=0):
        self.codegen_naive = codegen_naive
        self.codegen_fast = codegen_fast
        self.execute_base = execute_base
        self.execute_reference_nodes = execute_reference_nodes
        self.execute_size_exponent = execute_size_exponent
        self.comm_cpu = comm_cpu
        self.network_latency = network_latency
        self.dns_hop_latency = dns_hop_latency
        self.rest = rest
        self.update_cost = update_cost
        self.migration_cost = migration_cost
        # Section 5.5: "the time taken to forward a query to another
        # node is much less than the time taken to process the query
        # when the answer is present at a node".  Hops that gather from
        # other sites run QEG over a sparse fragment and splice
        # placeholders, so their creation+execution demand is scaled by
        # this factor (communication CPU is unaffected).
        self.forward_factor = forward_factor
        # How many subqueries of one gather round travel concurrently:
        # 0 (or None) means unbounded -- the whole round is one wave
        # and costs the max over its round-trips; a positive width W
        # dispatches the round in sequential waves of W.
        self.fanout_width = fanout_width

    # ------------------------------------------------------------------
    def codegen(self, fast):
        """QEG program creation cost (naive vs pre-compiled skeleton)."""
        return self.codegen_fast if fast else self.codegen_naive

    def execute(self, db_nodes):
        """QEG execution cost as a function of the fragment size."""
        if db_nodes <= 0:
            return self.execute_base
        ratio = db_nodes / self.execute_reference_nodes
        return self.execute_base * (ratio ** self.execute_size_exponent)

    def query_service(self, db_nodes, fast, messages=2, forwarded=False):
        """Total CPU demand of one query processed at one site.

        *messages* counts wire messages constructed/parsed at the site
        (at minimum the incoming request and the outgoing reply).
        *forwarded* marks hops that gathered the answer from other
        sites rather than serving it from local data; their QEG work is
        discounted by ``forward_factor`` (Section 5.5).
        """
        processing = self.codegen(fast) + self.execute(db_nodes)
        if forwarded:
            processing *= self.forward_factor
        return processing + self.comm_cpu * messages + self.rest

    def breakdown(self, db_nodes, fast, messages=2):
        """Fig. 11-style component breakdown for one hop."""
        return {
            "create": self.codegen(fast),
            "execute": self.execute(db_nodes),
            "communication": self.comm_cpu * messages,
            "rest": self.rest,
        }

    def dns_lookup_latency(self, hops):
        return hops * self.dns_hop_latency

    def round_latency(self, latencies):
        """Latency charged for one gather round's subquery fan-out.

        The round's subqueries travel concurrently, so a wave costs
        the *max* over its members, not the sum; with a bounded
        ``fanout_width`` W the round runs as sequential waves of W.
        """
        latencies = list(latencies)
        if not latencies:
            return 0.0
        width = self.fanout_width or len(latencies)
        total = 0.0
        for start in range(0, len(latencies), width):
            total += max(latencies[start:start + width])
        return total

    # ------------------------------------------------------------------
    @classmethod
    def calibrated(cls, document=None, query=None, scale_to_paper=True,
                   repetitions=5):
        """Measure this repository's engine and derive the constants.

        Compiles and runs a representative query over *document* (the
        paper-small parking database by default), measuring actual
        pattern-compilation and QEG-execution times.  With
        ``scale_to_paper`` the measured times are rescaled so that the
        naive-creation component matches the paper's magnitude -- the
        2003 Java/Xalan stack is far slower than this engine, but the
        ratios (creation vs execution, fast vs naive) are ours.
        """
        from repro.core.partition import PartitionPlan
        from repro.core.qeg import compile_pattern, run_qeg
        from repro.core.schema import HierarchySchema
        from repro.service import parking
        from repro.xpath.parser import _Parser  # noqa: F401 (warm import)

        if document is None:
            config = parking.ParkingConfig.paper_small()
            document = parking.build_parking_document(config)
            query = query or parking.type1_query(
                config, config.city_names()[0],
                config.neighborhood_names()[0], "1")
        plan = PartitionPlan({"one": [((document.tag, document.id),)]})
        db = plan.build_databases(document)["one"]
        schema = HierarchySchema.from_document(document)

        # Bypass the compile cache: this measures compilation itself,
        # and a cache hit would report a near-zero "naive" time.
        naive = _best_time(
            lambda: compile_pattern(query, schema=schema, use_cache=False),
            repetitions)
        pattern = compile_pattern(query, schema=schema)
        # The "fast" path reuses the compiled pattern and only rebinds
        # query-dependent slots; approximated by a re-walk of the items.
        fast = _best_time(lambda: [item.unparse() for item in pattern.items],
                          repetitions)
        execute = _best_time(lambda: run_qeg(db, pattern), repetitions)

        model = cls()
        if scale_to_paper and naive > 0:
            scale = model.codegen_naive / naive
        else:
            scale = 1.0
        model.codegen_naive = naive * scale
        model.codegen_fast = max(fast * scale, model.codegen_naive / 20)
        model.execute_base = execute * scale
        model.execute_reference_nodes = db.size()
        return model


def _best_time(fn, repetitions):
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best
