"""The simulated cluster: real engine execution + queueing simulation.

Every query is executed *for real* by the cluster engine (so answers,
caching and subquery fan-out are genuine) while its RPC tree is
captured and replayed through per-site FIFO servers with cost-model
service times.  Closed-loop client processes and an open-loop sensor
update stream then reproduce the paper's throughput and latency
experiments on a laptop.
"""

from repro.net.cluster import Cluster
from repro.net.dns import DnsResolver
from repro.net.oa import OAConfig
from repro.net.sa import SensingAgent
from repro.sim.costmodel import CostModel
from repro.sim.engine import Environment
from repro.sim.metrics import WorkloadMetrics
from repro.sim.trace import TracingNetwork

_DB_SIZE_REFRESH = 200


class SimulatedCluster:
    """A cluster wrapped in a discrete-event queueing model."""

    def __init__(self, document, architecture, cost_model=None,
                 oa_config=None, service="parking", count_bytes=False):
        self.env = Environment()
        self.cost = cost_model or CostModel()
        self.architecture = architecture
        self.oa_config = oa_config or OAConfig()
        # The tracing network builds one RPC tree per capture on a
        # plain stack: real threads would interleave it.  Parallelism
        # is modelled in *virtual* time instead (fan-out waves below),
        # so the live engine must dispatch strictly sequentially.
        self.oa_config.executor = "serial"
        self.cluster = Cluster(
            document, architecture.plan, service=service,
            oa_config=self.oa_config, clock=lambda: self.env.now,
        )
        # Swap the loopback network for the tracing variant.
        self.network = TracingNetwork(count_bytes=count_bytes)
        for site, agent in self.cluster.agents.items():
            agent.network = self.network
            self.network.register(site, agent)
        self.cluster.network = self.network

        self.servers = {
            site: self.env.resource(capacity=1, name=site)
            for site in self.cluster.sites
        }
        self._db_size_cache = {}
        self._db_size_age = {}

    # ------------------------------------------------------------------
    def _db_size(self, site):
        age = self._db_size_age.get(site, 0)
        if site not in self._db_size_cache or age >= _DB_SIZE_REFRESH:
            self._db_size_cache[site] = \
                self.cluster.agents[site].database.size()
            self._db_size_age[site] = 0
        self._db_size_age[site] = self._db_size_age.get(site, 0) + 1
        return self._db_size_cache[site]

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def _service_time(self, node):
        if node.kind == "update":
            return self.cost.update_cost
        if node.kind == "adopt":
            return self.cost.migration_cost
        return self.cost.query_service(
            self._db_size(node.site),
            fast=self.oa_config.fast_codegen,
            messages=node.messages,
            forwarded=bool(node.children),
        )

    def _replay(self, node):
        if node.site in self.servers:
            server = self.servers[node.site]
            grant = server.request()
            yield grant
            yield self.env.timeout(self._service_time(node))
            server.release()
        if node.children:
            # One gather round fans out in parallel: replay the child
            # RPCs as concurrent waves of ``cost.fanout_width`` each
            # (0 = unbounded, the whole round in one wave).
            width = self.cost.fanout_width or len(node.children)
            for start in range(0, len(node.children), width):
                wave = [
                    self.env.process(self._replay_remote(child))
                    for child in node.children[start:start + width]
                ]
                yield self.env.all_of(wave)

    def _replay_remote(self, node):
        yield self.env.timeout(self.cost.network_latency)
        yield from self._replay(node)
        yield self.env.timeout(self.cost.network_latency)

    # ------------------------------------------------------------------
    # Real execution with capture
    # ------------------------------------------------------------------
    def execute_query(self, query, entry_site):
        agent = self.cluster.agents[entry_site]
        (results, _outcome), trace = self.network.capture(
            entry_site, "query", lambda: agent.answer_user_query(query)
        )
        return results, trace

    def execute_update(self, sensing_agent, path, values):
        _, trace = self.network.capture(
            "sa", "sa-tick",
            lambda: sensing_agent.send_update(path, values=values),
        )
        return trace

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _client_process(self, workload, metrics, stop_at, warmup,
                        pre_query=None):
        while self.env.now < stop_at:
            query, query_type = workload.sample()
            if pre_query is not None:
                pre_query(query, query_type)
            started = self.env.now
            entry = self.architecture.entry_site(self.cluster, query)
            if self.architecture.uses_dns_routing:
                yield self.env.timeout(self.cost.dns_hop_latency)
            _results, trace = self.execute_query(query, entry)
            yield self.env.timeout(self.cost.network_latency)
            yield from self._replay(trace)
            yield self.env.timeout(self.cost.network_latency)
            if self.env.now >= warmup:
                metrics.record(self.env.now, self.env.now - started,
                               query_type)

    def _update_process(self, update_workload, rate, stop_at):
        resolver = DnsResolver(self.cluster.dns, clock=lambda: self.env.now)
        sensing_agent = SensingAgent("sim-sa", [], self.network, resolver,
                                     clock=lambda: self.env.now)
        interval = 1.0 / rate
        while self.env.now < stop_at:
            path, values = update_workload.sample()
            trace = self.execute_update(sensing_agent, path, values)
            for child in trace.children:
                self.env.process(self._replay(child))
            yield self.env.timeout(interval)

    def _window_process(self, metrics, warmup):
        yield self.env.timeout(warmup)
        metrics.begin_window(self.env.now)

    def _controller_process(self, schedule):
        """Run timed actions (e.g. Fig. 9's delegation requests).

        *schedule* is a list of ``(time, callable)`` pairs; each
        callable runs against the live cluster at its simulated time
        and its RPC trace is replayed for cost accounting.
        """
        last = 0.0
        for when, action in sorted(schedule, key=lambda item: item[0]):
            if when > last:
                yield self.env.timeout(when - last)
                last = when
            _, trace = self.network.capture("controller", "control", action)
            for child in trace.children:
                self.env.process(self._replay(child))

    # ------------------------------------------------------------------
    def run(self, workload, n_clients=8, duration=60.0, warmup=10.0,
            update_workload=None, update_rate=0.0, pre_query=None,
            schedule=None):
        """Run a closed-loop experiment; returns :class:`WorkloadMetrics`.

        *workload* must expose ``sample() -> (query, type)``.  With
        *update_rate* > 0 an open-loop sensor stream runs alongside.
        *schedule* holds timed control actions (ownership migrations).
        """
        metrics = WorkloadMetrics()
        stop_at = warmup + duration
        for _ in range(n_clients):
            self.env.process(self._client_process(workload, metrics, stop_at,
                                                  warmup,
                                                  pre_query=pre_query))
        if update_workload is not None and update_rate > 0:
            self.env.process(self._update_process(update_workload,
                                                  update_rate, stop_at))
        self.env.process(self._window_process(metrics, warmup))
        if schedule:
            self.env.process(self._controller_process(schedule))
        self.env.run(until=stop_at)
        metrics.close_window(self.env.now)
        return metrics

    # ------------------------------------------------------------------
    def utilizations(self, horizon):
        return {
            site: round(server.utilization(horizon), 3)
            for site, server in self.servers.items()
        }

    def engine_counters(self):
        """Index and serialization cache counters across all sites."""
        from repro.sim.metrics import collect_engine_counters

        return collect_engine_counters(
            {site: agent.database
             for site, agent in self.cluster.agents.items()}
        )
