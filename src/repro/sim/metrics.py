"""Metrics collection for simulated experiments.

The aggregation helpers that started here moved to the unified
registry in :mod:`repro.obs.registry`; ``collect_engine_counters`` and
``collect_fault_counters`` remain as back-compat aliases with their
original names and output shapes.
"""

from repro.obs.registry import (
    durability_counters,
    engine_counters,
    fault_counters,
)


def collect_engine_counters(databases):
    """Aggregate hot-path engine counters across site databases.

    Back-compat alias for :func:`repro.obs.registry.engine_counters`
    (same input conventions, same output shape).
    """
    return engine_counters(databases)


def collect_fault_counters(agents):
    """Aggregate the fault-handling counters across organizing agents.

    Back-compat alias for :func:`repro.obs.registry.fault_counters`
    (same input conventions, same output shape).
    """
    return fault_counters(agents)


def collect_durability_counters(agents):
    """Aggregate WAL/checkpoint/recovery counters across agents.

    Back-compat-style alias for
    :func:`repro.obs.registry.durability_counters` (same input
    conventions, same output shape).
    """
    return durability_counters(agents)


class WorkloadMetrics:
    """Throughput and latency accounting over a measurement window."""

    def __init__(self):
        self.window_start = 0.0
        self.window_end = 0.0
        self.completed = 0
        self.completed_by_type = {}
        self.latencies = []
        self.latencies_by_type = {}
        self.timeline = []  # (time, cumulative completed) samples

    def begin_window(self, now):
        """Start measuring (end of warm-up)."""
        self.window_start = now
        self.completed = 0
        self.completed_by_type = {}
        self.latencies = []
        self.latencies_by_type = {}
        self.timeline = []

    def record(self, now, latency, query_type=None):
        self.completed += 1
        self.latencies.append(latency)
        if query_type is not None:
            self.completed_by_type[query_type] = \
                self.completed_by_type.get(query_type, 0) + 1
            self.latencies_by_type.setdefault(query_type, []).append(latency)
        self.timeline.append((now, self.completed))

    def close_window(self, now):
        self.window_end = now

    # ------------------------------------------------------------------
    @property
    def duration(self):
        return max(self.window_end - self.window_start, 0.0)

    @property
    def throughput(self):
        """Completed queries per simulated second."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_latency(self):
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def mean_latency_of(self, query_type):
        values = self.latencies_by_type.get(query_type, [])
        if not values:
            return 0.0
        return sum(values) / len(values)

    def percentile_latency(self, fraction):
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def throughput_trace(self, bin_seconds=5.0):
        """(bin end time, completions in bin) pairs, as in Figure 9."""
        if not self.timeline:
            return []
        bins = {}
        for when, _cum in self.timeline:
            key = int((when - self.window_start) // bin_seconds)
            bins[key] = bins.get(key, 0) + 1
        horizon = int(self.duration // bin_seconds) + 1
        return [
            (self.window_start + (k + 1) * bin_seconds, bins.get(k, 0))
            for k in range(horizon)
        ]

    def summary(self):
        return {
            "throughput": round(self.throughput, 2),
            "completed": self.completed,
            "mean_latency_ms": round(self.mean_latency * 1000, 2),
            "p95_latency_ms": round(self.percentile_latency(0.95) * 1000, 2),
            "by_type": dict(sorted(self.completed_by_type.items())),
        }

    def __repr__(self):
        return f"WorkloadMetrics({self.summary()})"
