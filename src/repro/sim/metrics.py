"""Metrics collection for simulated experiments."""


def collect_engine_counters(databases):
    """Aggregate hot-path engine counters across site databases.

    Sums the id-path index hit/miss/rebuild counters of every
    :class:`~repro.core.database.SensorDatabase` in *databases* (a
    mapping of site -> database or an iterable of databases) and
    snapshots the process-wide serialization reuse counters, so
    experiments can report how much of the engine work was served from
    the caches.
    """
    from repro.xmlkit.serializer import serialization_stats

    if hasattr(databases, "values"):
        databases = databases.values()
    totals = {"index_hits": 0, "index_misses": 0, "index_rebuilds": 0}
    for database in databases:
        for key in totals:
            totals[key] += database.stats.get(key, 0)
    serialization = serialization_stats()
    reused = serialization["cache_hits"]
    rebuilt = serialization["cache_misses"]
    totals["serialization_reused"] = reused
    totals["serialization_rebuilt"] = rebuilt
    total_lookups = totals["index_hits"] + totals["index_misses"]
    totals["index_hit_ratio"] = (
        round(totals["index_hits"] / total_lookups, 3) if total_lookups else 0.0
    )
    totals["serialization_reuse_ratio"] = (
        round(reused / (reused + rebuilt), 3) if reused + rebuilt else 0.0
    )
    return totals


def collect_fault_counters(agents):
    """Aggregate the fault-handling counters across organizing agents.

    Sums each OA's retry/failure/breaker/DNS-refresh stats and its
    gather driver's degradation counters, and merges every per-peer
    circuit-breaker snapshot into ``breakers`` (keyed
    ``observing_site -> peer``), so experiments can report how much
    fault machinery a run exercised.
    """
    if hasattr(agents, "values"):
        agents = agents.values()
    totals = {
        "retries": 0,
        "subquery_failures": 0,
        "circuit_fast_fails": 0,
        "dns_refreshes": 0,
        "failed_subqueries": 0,
        "partial_gathers": 0,
        "stale_served": 0,
    }
    breakers = {}
    for agent in agents:
        for key in ("retries", "subquery_failures",
                    "circuit_fast_fails", "dns_refreshes"):
            totals[key] += agent.stats.get(key, 0)
        driver_stats = getattr(agent.driver, "stats", {})
        for key in ("failed_subqueries", "partial_gathers", "stale_served"):
            totals[key] += driver_stats.get(key, 0)
        snapshot = agent.health_snapshot()
        if snapshot:
            breakers[agent.site_id] = snapshot
    totals["breakers"] = breakers
    return totals


class WorkloadMetrics:
    """Throughput and latency accounting over a measurement window."""

    def __init__(self):
        self.window_start = 0.0
        self.window_end = 0.0
        self.completed = 0
        self.completed_by_type = {}
        self.latencies = []
        self.latencies_by_type = {}
        self.timeline = []  # (time, cumulative completed) samples

    def begin_window(self, now):
        """Start measuring (end of warm-up)."""
        self.window_start = now
        self.completed = 0
        self.completed_by_type = {}
        self.latencies = []
        self.latencies_by_type = {}
        self.timeline = []

    def record(self, now, latency, query_type=None):
        self.completed += 1
        self.latencies.append(latency)
        if query_type is not None:
            self.completed_by_type[query_type] = \
                self.completed_by_type.get(query_type, 0) + 1
            self.latencies_by_type.setdefault(query_type, []).append(latency)
        self.timeline.append((now, self.completed))

    def close_window(self, now):
        self.window_end = now

    # ------------------------------------------------------------------
    @property
    def duration(self):
        return max(self.window_end - self.window_start, 0.0)

    @property
    def throughput(self):
        """Completed queries per simulated second."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_latency(self):
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def mean_latency_of(self, query_type):
        values = self.latencies_by_type.get(query_type, [])
        if not values:
            return 0.0
        return sum(values) / len(values)

    def percentile_latency(self, fraction):
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def throughput_trace(self, bin_seconds=5.0):
        """(bin end time, completions in bin) pairs, as in Figure 9."""
        if not self.timeline:
            return []
        bins = {}
        for when, _cum in self.timeline:
            key = int((when - self.window_start) // bin_seconds)
            bins[key] = bins.get(key, 0) + 1
        horizon = int(self.duration // bin_seconds) + 1
        return [
            (self.window_start + (k + 1) * bin_seconds, bins.get(k, 0))
            for k in range(horizon)
        ]

    def summary(self):
        return {
            "throughput": round(self.throughput, 2),
            "completed": self.completed,
            "mean_latency_ms": round(self.mean_latency * 1000, 2),
            "p95_latency_ms": round(self.percentile_latency(0.95) * 1000, 2),
            "by_type": dict(sorted(self.completed_by_type.items())),
        }

    def __repr__(self):
        return f"WorkloadMetrics({self.summary()})"
