"""Reproduction of "Cache-and-Query for Wide Area Sensor Databases".

This package is a from-scratch, pure-Python reproduction of the IrisNet
query-processing system described in:

    Amol Deshpande, Suman Nath, Phillip B. Gibbons, Srinivasan Seshan.
    "Cache-and-Query for Wide Area Sensor Databases". SIGMOD 2003.

The package layout mirrors the system inventory in ``DESIGN.md``:

``repro.xmlkit``
    XML data model, parser, serializer, unordered comparison and merging.
``repro.xpath``
    An XPath 1.0 engine restricted to the unordered fragment of the
    language, plus the query-analysis passes the paper relies on
    (ID-path extraction, nesting depth, LOCAL-INFO-REQUIRED).
``repro.xslt``
    A miniature XSLT-like transform engine with an explicit compile
    stage, and the query-evaluate-gather (QEG) code generator.
``repro.core``
    The paper's primary contribution: hierarchical fragmentation with
    IDable nodes, storage/cache invariants, status tags, the QEG
    algorithm, partial-match caching, query-based consistency and
    ownership migration.
``repro.net``
    The distributed substrate: DNS-style name service, message
    transport, organizing agents (OAs), sensing agents (SAs) and
    cluster assembly, plus a live threaded runtime.
``repro.sim``
    A discrete-event simulator with a calibrated cost model used to
    regenerate the paper's cluster experiments (Figures 7-11).
``repro.service``
    The Parking Space Finder application: database generator, update
    streams, query workloads QW-1..QW-4, QW-Mix and skewed variants.
``repro.arch``
    The four architectures of Figure 6 and the balanced placements used
    in the load-balancing experiments.

The most commonly used names are re-exported lazily at the top level,
so ``import repro`` stays cheap and subpackages remain independently
importable.
"""

__version__ = "1.0.0"

_EXPORTS = {
    "Element": ("repro.xmlkit", "Element"),
    "parse_document": ("repro.xmlkit", "parse_document"),
    "parse_fragment": ("repro.xmlkit", "parse_fragment"),
    "serialize": ("repro.xmlkit", "serialize"),
    "XPathQuery": ("repro.xpath", "XPathQuery"),
    "compile_xpath": ("repro.xpath", "compile_xpath"),
    "evaluate_xpath": ("repro.xpath", "evaluate_xpath"),
    "SensorDatabase": ("repro.core", "SensorDatabase"),
    "Status": ("repro.core", "Status"),
    "local_information": ("repro.core", "local_information"),
    "local_id_information": ("repro.core", "local_id_information"),
    "HierarchySchema": ("repro.core", "HierarchySchema"),
    "Cluster": ("repro.net", "Cluster"),
    "OrganizingAgent": ("repro.net", "OrganizingAgent"),
    "SensingAgent": ("repro.net", "SensingAgent"),
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__():
    return __all__
