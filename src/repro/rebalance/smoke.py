"""Rebalancing smoke check: a hot site splits and tail latency drops.

``python -m repro.rebalance.smoke`` (needs ``PYTHONPATH=src:.``) stands
up a three-site TCP deployment from the scenario generator (root +
``oa-z0`` + ``oa-z1``), then:

* calibrates the single-site query cost and offers a zipf-skewed
  open-loop window at ~1.4x one site's capacity, 90% of it aimed at
  sub-zones of ``z0`` -- the hot site saturates and its backlog is
  charged to tail latency, open-loop style;
* runs one balancer tick: the load tracker's deltas flag ``oa-z0``,
  the planner splits its fragment along the ``z0/z*`` IDable
  boundary, and the move executes live over the same TCP sockets the
  load uses;
* offers an identical second window against the post-migration
  routing and requires p99 to drop.

Every query in both windows must be answered (zero errors, zero
drops) -- the migration happens *under* load in the first window's
drain and must not lose anything.  Query-result caches are disabled so
offered load translates into evaluator work at the owner: the skewed
suite only has a handful of distinct queries, and a semantic cache
would serve them all without any site ever getting hot (a fine
production outcome, but this check is about the balancer).

A JSON summary (per-window latency, the executed moves, the balancer
and migration counters) is written under ``--artifacts`` (default
``rebalance-smoke/``) so CI can archive what the balancer actually did.
"""

import argparse
import json
import os
import sys
import time


def _run():
    from repro.core.semcache import SemanticCacheConfig
    from repro.net import BreakerPolicy, OAConfig, RetryPolicy
    from repro.net.tcpruntime import TcpCluster
    from repro.rebalance import RebalanceConfig
    from repro.service.scenarios import (
        ScenarioConfig,
        ScenarioWorkload,
        build_document,
        build_plan,
        rollup_query,
        site_name,
    )
    from repro.service.workload import run_open_loop

    problems = []
    config = ScenarioConfig(fanout=2, depth=2, sensors_per_group=25,
                            site_depth=1, seed=7)
    oa_config = OAConfig(
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0,
                                 max_delay=0.0, jitter=0.0,
                                 sleep=lambda seconds: None),
        breaker=BreakerPolicy(failure_threshold=8, reset_timeout=0.05),
        partial_answers=True,
        cache_results=False,
        semcache=SemanticCacheConfig(enabled=False))
    # ``service_delay`` gives every site a per-machine service time
    # (slept under the agent lock, GIL-free): per-*site* capacity is
    # real even though all sites share this interpreter, so a hot site
    # saturates while its peers sit idle -- the regime rebalancing is
    # for.
    tcp = TcpCluster(
        build_document(config), build_plan(config),
        oa_config=oa_config, max_pending=4096, service_delay=0.025,
        rebalance=RebalanceConfig(min_queries=32, overload_ratio=1.5))
    try:
        cluster = tcp.cluster
        hot_site = site_name((0,))

        # Calibrate the full-path cost of one sub-zone rollup (client
        # socket -> framing -> agent lock -> service delay -> eval ->
        # reply): 1/cost bounds one site's capacity.  Offer ~1.25x
        # that, 90% of it aimed under ``z0``: the hot site is past
        # saturation and its backlog dominates p99, while the cluster
        # as a whole has ample headroom for the post-split windows.
        from repro.net.messages import QueryMessage

        probe = rollup_query(config, shape="sum", zone=(0, 0))
        network = cluster.network
        network.request("client", hot_site,
                        QueryMessage(probe, scalar=True, sender="client"))
        start = time.monotonic()
        for _ in range(30):
            network.request("client", hot_site,
                            QueryMessage(probe, scalar=True,
                                         sender="client"))
        cost = (time.monotonic() - start) / 30
        capacity = 1.0 / max(cost, 1e-4)
        target_qps = max(10.0, min(600.0, 1.25 * capacity))

        def window(seed):
            workload = ScenarioWorkload(config, shape="sum", skew=0.9,
                                        seed=seed)
            return run_open_loop(cluster, workload,
                                 target_qps=target_qps, duration=3.0,
                                 seed=seed, drain_timeout=60.0)

        before = window(seed=1)
        moves = cluster.balancer.tick()
        after = window(seed=2)

        for stage, result in (("before", before), ("after", after)):
            if result.errors:
                problems.append(
                    f"{stage}: {result.errors} queries raised errors")
            if result.dropped:
                problems.append(
                    f"{stage}: {result.dropped} queries were dropped")
        if not moves:
            problems.append("the balancer executed no migration")
        elif {move.source for move in moves} != {hot_site}:
            problems.append(f"migrations did not come from the hot "
                            f"site {hot_site!r}: {moves}")
        p99_before = before.percentile(0.99)
        p99_after = after.percentile(0.99)
        if not p99_after < p99_before:
            problems.append(
                f"p99 did not drop after rebalancing "
                f"({p99_before * 1000:.1f}ms -> {p99_after * 1000:.1f}ms)")

        counters = cluster.metrics()["rebalance"]
        summary = {
            "scenario": repr(config),
            "calibrated_query_cost_ms": round(cost * 1000, 3),
            "target_qps": round(target_qps, 1),
            "moves": [{"id_path": list(map(list, move.id_path)),
                       "source": move.source, "target": move.target,
                       "load": move.load} for move in moves],
            "before": before.summary(),
            "after": after.summary(),
            "balancer": counters["balancer"],
            "migrations": {
                key: counters[key]
                for key in ("migrations_out", "migrations_in",
                            "migrations_aborted",
                            "held_updates_forwarded",
                            "held_updates_lost",
                            "migration_cache_evictions")},
            "ok": not problems,
        }
        return problems, summary
    finally:
        tcp.close()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="hot-spot split-and-migrate rebalancing smoke check")
    parser.add_argument("--artifacts", default="rebalance-smoke",
                        help="directory for the rebalancing summary")
    args = parser.parse_args(argv)

    problems, summary = _run()

    os.makedirs(args.artifacts, exist_ok=True)
    summary_path = os.path.join(args.artifacts, "rebalance.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    moved = ", ".join(
        "/".join(f"{tag}={value}" for tag, value in move["id_path"])
        + f" -> {move['target']}" for move in summary["moves"])
    print(f"OK: hot site split under load ({moved}); p99 "
          f"{summary['before']['latency_ms']['p99']}ms -> "
          f"{summary['after']['latency_ms']['p99']}ms at "
          f"{summary['target_qps']} qps, zero failed queries.")
    print(f"Artifacts in {args.artifacts}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
