"""Split planning: pure math, no cluster objects.

Two layers:

- :func:`n_new_fragments` -- the split-sizing primitive, shaped like
  partitioned-table capacity planning ("given the load I have and the
  load headed my way, how many fragment-sized chunks must leave so the
  remainder fits under capacity?").  Pure, total over its domain, and
  property-tested.
- :func:`detect_overloaded` / :func:`plan_moves` -- the policy layer:
  which sites are hot relative to the cluster, which owned subtrees
  (IDable boundaries only) should move, and to which underloaded
  peers.  Both take plain dicts so the test suite can drive them
  without building clusters.
"""

import math

__all__ = [
    "Migration",
    "detect_overloaded",
    "n_new_fragments",
    "plan_moves",
]


def n_new_fragments(current_load, capacity, incoming_load=0.0,
                    fragment_load=None):
    """How many fragment-sized chunks must leave an overloaded site.

    ``overflow = (current_load + incoming_load) - capacity``; when it
    is positive, ``ceil(overflow / fragment_load)`` fragments of
    average load *fragment_load* have to move for the remainder to fit
    under *capacity*.  Zero when the site already fits.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if fragment_load is None:
        fragment_load = capacity
    if fragment_load <= 0:
        raise ValueError("fragment_load must be positive")
    overflow = (float(current_load) + float(incoming_load)) - float(capacity)
    if overflow <= 0:
        return 0
    return int(math.ceil(overflow / float(fragment_load)))


def detect_overloaded(site_loads, ratio=2.0, min_load=16):
    """Sites whose load stands out against the cluster mean.

    Returns ``[(site, load), ...]`` hottest first.  A site qualifies
    when its load is at least *min_load* (noise floor) and exceeds
    *ratio* times the mean over **all** sites -- which makes a
    single-site cluster never overloaded (its load *is* the mean), and
    a perfectly balanced cluster stable at any volume.
    """
    if not site_loads:
        return []
    mean = sum(site_loads.values()) / float(len(site_loads))
    hot = [
        (site, load)
        for site, load in site_loads.items()
        if load >= min_load and load > ratio * mean
    ]
    hot.sort(key=lambda entry: (-entry[1], entry[0]))
    return hot


class Migration:
    """One planned subtree move."""

    __slots__ = ("id_path", "source", "target", "load")

    def __init__(self, id_path, source, target, load):
        self.id_path = tuple(tuple(entry) for entry in id_path)
        self.source = source
        self.target = target
        self.load = float(load)

    def __repr__(self):
        path = "/".join(f"{tag}={ident}" for tag, ident in self.id_path)
        return (f"Migration({path!r}: {self.source!r} -> {self.target!r}, "
                f"load={self.load:g})")

    def __eq__(self, other):
        return (isinstance(other, Migration)
                and self.id_path == other.id_path
                and self.source == other.source
                and self.target == other.target)


def _overlaps(path, chosen):
    return any(path[:len(c)] == c or c[:len(path)] == path for c in chosen)


def plan_moves(site, site_loads, unit_loads, headroom=1.25,
               max_moves=4, targets=None):
    """Plan subtree migrations away from overloaded *site*.

    *site_loads* maps every site to its load this tick; *unit_loads*
    maps each candidate migration unit (an IDable subtree the hot site
    could give up without surrendering its whole assignment) to the
    load attributed to it.  Returns a list of :class:`Migration`,
    hottest units first, assigned greedily to the least-loaded peers.

    Invariants the property tests pin down:

    - never plans more than *max_moves* moves, and never more than
      :func:`n_new_fragments` says are needed (fragment-sized at the
      mean positive unit load);
    - chosen units never overlap (no unit is an ancestor or descendant
      of another chosen unit);
    - every target had strictly less load than the source at plan
      time, and a move is only planned while the source remains over
      its capacity target (``headroom`` x cluster mean).
    """
    if site not in site_loads:
        raise ValueError(f"unknown site {site!r}")
    others = [s for s in (targets if targets is not None else site_loads)
              if s != site and s in site_loads]
    if not others:
        return []
    mean = sum(site_loads.values()) / float(len(site_loads))
    capacity = max(headroom * mean, 1.0)
    positive = {path: load for path, load in unit_loads.items() if load > 0}
    if not positive:
        return []
    fragment_load = sum(positive.values()) / float(len(positive))
    budget = n_new_fragments(site_loads[site], capacity,
                             fragment_load=fragment_load)
    budget = min(budget, max_moves)
    if budget <= 0:
        return []

    running = dict(site_loads)
    chosen = []
    moves = []
    units = sorted(positive.items(), key=lambda entry: (-entry[1],
                                                        repr(entry[0])))
    for path, load in units:
        if len(moves) >= budget:
            break
        if running[site] <= capacity:
            break
        if _overlaps(path, chosen):
            continue
        target = min(others, key=lambda s: (running[s], s))
        # A move must improve the imbalance, not just relocate it.
        if running[target] + load >= running[site]:
            continue
        moves.append(Migration(path, site, target, load))
        chosen.append(path)
        running[site] -= load
        running[target] += load
    return moves
