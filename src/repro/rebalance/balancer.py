"""The per-cluster load-balancer control loop.

One :class:`LoadBalancer` watches a whole cluster.  Each tick it

1. snapshots every agent's :class:`~repro.rebalance.tracker
   .PathLoadTracker` and diffs against the previous tick (cumulative
   counters diffed locally -- robust to frozen test clocks and to a
   site restarting with zeroed counters);
2. folds in the runtime's pressure signals when attached (admission
   sheds and queue depth from the TCP servers) -- a site refusing work
   is overloaded even if the refusals keep its served-count low;
3. detects overloaded sites against the cluster mean
   (:func:`~repro.rebalance.planner.detect_overloaded`);
4. plans fragment splits along IDable boundaries
   (:func:`~repro.rebalance.planner.plan_moves`) -- candidate units
   are owned subtrees the site can give up while keeping its
   assignment root, including the IDable children of the assignment
   itself (that is the *split*: a fragment that always moved as one
   block becomes several independently-owned pieces);
5. executes each move through ``Cluster.delegate`` -- the Section-4
   take-ownership protocol with the abort/rollback cover in
   ``OrganizingAgent.delegate`` -- and records the outcome;
6. periodically reconciles ownership against DNS: any site holding an
   OWNED path whose authoritative DNS owner is some other site demotes
   it.  DNS flips are the migration commit point, so DNS is the
   authority; reconciliation is what makes "complete or roll back"
   eventual even when both the adopt reply *and* the abort release are
   lost.

The balancer itself sends nothing on the wire; every wire effect goes
through the agents' existing protocol messages.
"""

import logging
import threading
from collections import deque

from repro.core.ownership import relinquish_ownership
from repro.rebalance.planner import detect_overloaded, plan_moves

logger = logging.getLogger(__name__)

__all__ = ["LoadBalancer"]


class LoadBalancer:
    """Hot-spot detection and live migration for one cluster."""

    def __init__(self, cluster, config):
        self.cluster = cluster
        self.config = config
        self.runtime = None  # optional TcpCluster, for server pressure
        self._prev = {}      # site -> {anchor path: cumulative count}
        self._prev_pressure = {}  # site -> cumulative shed count
        self._lock = threading.Lock()
        self._thread = None
        self._stop_event = None
        self._force_reconcile = False
        self.history = deque(maxlen=128)
        self.stats = {
            "ticks": 0,
            "hotspots": 0,
            "migrations_planned": 0,
            "migrations_executed": 0,
            "migrations_failed": 0,
            "paths_moved": 0,
            "reconcile_runs": 0,
            "reconciled_demotions": 0,
        }

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def attach_runtime(self, runtime):
        """Fold a TCP runtime's server stats into overload detection."""
        self.runtime = runtime
        return self

    def _tracker_deltas(self):
        """Per-site per-anchor served-query deltas since the last tick."""
        deltas = {}
        snapshots = {}
        for site, agent in self.cluster.agents.items():
            tracker = getattr(agent, "load", None)
            if tracker is None:
                continue
            counts = tracker.snapshot()
            snapshots[site] = counts
            previous = self._prev.get(site, {})
            delta = {}
            for path, count in counts.items():
                base = previous.get(path, 0)
                if base > count:
                    base = 0  # tracker reset (site restarted)
                if count > base:
                    delta[path] = count - base
            deltas[site] = delta
        self._prev = snapshots
        return deltas

    def _pressure_deltas(self):
        """Admission-shed deltas per site from the attached runtime."""
        if self.runtime is None:
            return {}
        servers = getattr(self.runtime, "servers", None)
        if not servers:
            return {}
        deltas = {}
        current = {}
        for site, server in servers.items():
            stats = {}
            try:
                stats = server.server_stats()
            except Exception:
                continue
            shed = stats.get("overload_rejections", 0) or 0
            current[site] = shed
            base = self._prev_pressure.get(site, 0)
            if base > shed:
                base = 0
            extra = shed - base
            # Queue depth is instantaneous, not cumulative: count it
            # directly -- a deep queue right now is pressure right now.
            extra += stats.get("queue_depth", 0) or 0
            if extra > 0:
                deltas[site] = extra
        self._prev_pressure = current
        return deltas

    # ------------------------------------------------------------------
    # Planning inputs
    # ------------------------------------------------------------------
    def _assigned_paths(self, site):
        return [path for path, owner in self.cluster.owner_map.items()
                if owner == site]

    def _split_units(self, site, path_delta):
        """Candidate migration units and their attributed loads.

        A unit is an owned IDable subtree the site can shed while
        keeping its assignment root: any non-minimal assigned path,
        plus the IDable children of each minimal assigned path (the
        fragment-split boundary).  Load attribution: a recorded anchor
        contributes to every unit that is a prefix of it -- queries
        anchored *above* every unit (at the assignment root) cannot be
        shed by splitting and stay out of the unit loads.
        """
        from repro.core.idable import id_path_of, idable_children
        from repro.core.status import Status, get_status

        assigned = self._assigned_paths(site)
        if not assigned:
            return {}
        minimal = [p for p in assigned
                   if not any(q != p and p[:len(q)] == q for q in assigned)]
        units = set(assigned) - set(minimal)
        agent = self.cluster.agents.get(site)
        if agent is not None:
            for path in minimal:
                element = agent.database.find(path)
                if element is None:
                    continue
                for child in idable_children(element):
                    if get_status(child) is Status.OWNED:
                        units.add(tuple(tuple(entry) for entry in
                                        id_path_of(child)))
        unit_loads = {}
        for unit in units:
            load = sum(count for anchor, count in path_delta.items()
                       if anchor[:len(unit)] == unit)
            unit_loads[unit] = float(load)
        return unit_loads

    def _live_targets(self):
        """Sites that can adopt right now (killed sites excluded)."""
        live = set(self.cluster.agents)
        network_sites = getattr(self.cluster.network, "sites", None)
        if network_sites:
            live &= set(network_sites)
        return live

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def tick(self):
        """One detection/planning/execution round; returns the moves."""
        with self._lock:
            return self._tick_locked()

    def _tick_locked(self):
        self.stats["ticks"] += 1
        deltas = self._tracker_deltas()
        pressure = self._pressure_deltas()
        site_loads = {site: float(sum(delta.values()))
                      for site, delta in deltas.items()}
        for site, extra in pressure.items():
            site_loads[site] = site_loads.get(site, 0.0) + float(extra)
        hot = detect_overloaded(site_loads,
                                ratio=self.config.overload_ratio,
                                min_load=self.config.min_queries)
        self.stats["hotspots"] += len(hot)
        executed = []
        budget = self.config.max_moves_per_tick
        targets = self._live_targets()
        for site, _load in hot:
            if budget <= 0:
                break
            unit_loads = self._split_units(site, deltas.get(site, {}))
            moves = plan_moves(site, site_loads, unit_loads,
                               headroom=self.config.headroom,
                               max_moves=budget,
                               targets=targets)
            self.stats["migrations_planned"] += len(moves)
            for move in moves:
                budget -= 1
                try:
                    moved = self.cluster.delegate(move.id_path, move.target)
                except Exception as exc:
                    self.stats["migrations_failed"] += 1
                    self._force_reconcile = True
                    logger.warning("migration of %r from %r to %r failed: %s",
                                   move.id_path, move.source, move.target,
                                   exc)
                    continue
                self.stats["migrations_executed"] += 1
                self.stats["paths_moved"] += len(moved)
                self.history.append({
                    "id_path": move.id_path,
                    "source": move.source,
                    "target": move.target,
                    "load": move.load,
                })
                executed.append(move)
        if self._force_reconcile or \
                self.stats["ticks"] % self.config.reconcile_every == 0:
            self.reconcile()
            self._force_reconcile = False
        return executed

    def reconcile(self):
        """Demote owned paths whose DNS authority is another site.

        The commit point of a migration is the DNS flip, so DNS is the
        single authority on ownership.  After a double failure (adopt
        reply lost *and* abort release lost) the would-be adopter can
        be left holding OWNED paths DNS never granted it; this pass
        demotes them, restoring the one-owner invariant without any
        wire traffic.
        """
        from repro.core.errors import CoreError

        self.stats["reconcile_runs"] += 1
        demoted = 0
        dns = self.cluster.dns
        for site, agent in list(self.cluster.agents.items()):
            database = agent.database
            for path in list(database.owned_paths()):
                authority = dns.authoritative_site(path)
                if authority is None or authority == site:
                    continue
                try:
                    relinquish_ownership(database, path)
                except CoreError:
                    continue  # an ancestor demotion already covered it
                demoted += 1
        self.stats["reconciled_demotions"] += demoted
        return demoted

    # ------------------------------------------------------------------
    # Background lifecycle
    # ------------------------------------------------------------------
    def start(self, interval=None):
        """Run ticks on a daemon thread every *interval* seconds."""
        if self._thread is not None:
            return self
        interval = self.config.interval if interval is None else interval
        self._stop_event = threading.Event()

        def loop():
            while not self._stop_event.wait(interval):
                try:
                    self.tick()
                except Exception:
                    logger.exception("rebalance tick failed")

        self._thread = threading.Thread(
            target=loop, name="rebalance-loop", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._stop_event = None

    # ------------------------------------------------------------------
    def counters(self):
        """Metrics-registry view of the balancer's activity."""
        with_history = dict(self.stats)
        with_history["history"] = len(self.history)
        with_history["running"] = 1 if self._thread is not None else 0
        return with_history
