"""Configuration for the adaptive rebalancer."""


class RebalanceConfig:
    """Tuning knobs for the load balancer.

    ``enabled``
        master switch; a disabled config is exactly equivalent to no
        config (parity-tested);
    ``overload_ratio``
        a site is *overloaded* when its served-query delta for the
        tick exceeds ``overload_ratio`` times the cluster mean;
    ``min_queries``
        noise floor: a site under this many queries per tick is never
        overloaded, whatever the ratio says (protects tiny clusters
        and idle periods from jittery migrations);
    ``headroom``
        target capacity multiplier: splits are sized so the hot site's
        projected load drops to ``headroom`` times the cluster mean,
        not all the way to the mean (hysteresis against ping-ponging);
    ``max_moves_per_tick``
        upper bound on migrations one tick may execute -- rebalancing
        is supposed to converge over a few ticks, not thrash;
    ``interval``
        seconds between ticks when the balancer runs its own
        background thread (:meth:`LoadBalancer.start`);
    ``adopt_attempts``
        wire retries for the adopt exchange during one migration
        (adoption is idempotent, so retrying a reset is safe);
    ``reconcile_every``
        run the DNS-authority ownership reconciliation pass every this
        many ticks (it walks every owned path, so at million-node
        scale it should not run on every tick); a failed migration
        forces it on the next tick regardless.
    """

    def __init__(self, enabled=True, overload_ratio=2.0, min_queries=16,
                 headroom=1.25, max_moves_per_tick=4, interval=1.0,
                 adopt_attempts=3, reconcile_every=8):
        if overload_ratio < 1.0:
            raise ValueError("overload_ratio must be >= 1")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if max_moves_per_tick < 1:
            raise ValueError("max_moves_per_tick must be >= 1")
        if adopt_attempts < 1:
            raise ValueError("adopt_attempts must be >= 1")
        if reconcile_every < 1:
            raise ValueError("reconcile_every must be >= 1")
        self.enabled = enabled
        self.overload_ratio = overload_ratio
        self.min_queries = min_queries
        self.headroom = headroom
        self.max_moves_per_tick = max_moves_per_tick
        self.interval = interval
        self.adopt_attempts = adopt_attempts
        self.reconcile_every = reconcile_every

    def __repr__(self):
        return (f"RebalanceConfig(enabled={self.enabled}, "
                f"overload_ratio={self.overload_ratio}, "
                f"min_queries={self.min_queries}, "
                f"headroom={self.headroom}, "
                f"max_moves_per_tick={self.max_moves_per_tick})")
