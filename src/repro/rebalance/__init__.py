"""Adaptive rebalancing: hot-spot detection and live fragment splitting.

The paper's Section 4 ownership-migration protocol moves a subtree
between sites atomically -- but nothing in the paper *drives* it, so a
zipf-skewed workload melts one owner while its peers idle.  This
package closes the loop:

- :class:`~repro.rebalance.tracker.PathLoadTracker` -- per-site,
  per-id-path served-query counters (local, zero wire cost);
- :mod:`~repro.rebalance.planner` -- pure split-sizing and placement
  math: which subtrees leave an overloaded site, and where they go;
- :class:`~repro.rebalance.balancer.LoadBalancer` -- the per-cluster
  control loop: snapshot trackers, detect overload, plan fragment
  splits along IDable boundaries, execute live migrations through the
  Section-4 protocol + DNS re-mapping, and reconcile ownership against
  DNS after failures.

Disabled (``RebalanceConfig(enabled=False)`` or no config at all) the
wire and behaviour are byte-identical to a build without the
subsystem, matching every prior subsystem's convention.
"""

from repro.rebalance.balancer import LoadBalancer
from repro.rebalance.config import RebalanceConfig
from repro.rebalance.planner import (
    Migration,
    detect_overloaded,
    n_new_fragments,
    plan_moves,
)
from repro.rebalance.tracker import PathLoadTracker

__all__ = [
    "LoadBalancer",
    "Migration",
    "PathLoadTracker",
    "RebalanceConfig",
    "detect_overloaded",
    "n_new_fragments",
    "plan_moves",
]
