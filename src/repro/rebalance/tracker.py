"""Per-id-path served-query load counters.

Every organizing agent carries a :class:`PathLoadTracker` and records
the anchor id path of each query it serves.  The counters are
cumulative and strictly local -- no wire traffic, no clock reads -- so
an always-on tracker cannot perturb wire parity; the balancer derives
per-tick *rates* by diffing successive snapshots, which also survives
the test suites' frozen ``lambda: 0.0`` clocks.

Anchor extraction parses the query string, which is not free; a
bounded memo keyed by the raw query string amortizes it to a dict hit
for the repeated queries that constitute any real hot spot.
"""

import threading
from collections import OrderedDict

from repro.xpath.analysis import anchor_id_path

__all__ = ["PathLoadTracker"]


class PathLoadTracker:
    """Thread-safe cumulative per-anchor query counters for one site."""

    def __init__(self, memo_limit=4096):
        self._lock = threading.Lock()
        self._counts = {}
        self._total = 0
        self._unattributed = 0
        self._memo = OrderedDict()  # query string -> anchor (or None)
        self._memo_limit = memo_limit

    def record_path(self, id_path):
        """Count one served query anchored at *id_path*."""
        path = tuple(tuple(entry) for entry in id_path)
        with self._lock:
            self._counts[path] = self._counts.get(path, 0) + 1
            self._total += 1

    def record_query(self, query):
        """Count one served query, extracting its anchor (memoized)."""
        anchor = None
        if isinstance(query, str):
            with self._lock:
                if query in self._memo:
                    anchor = self._memo[query]
                    self._memo.move_to_end(query)
                    if anchor is None:
                        self._unattributed += 1
                        self._total += 1
                    else:
                        self._counts[anchor] = self._counts.get(anchor, 0) + 1
                        self._total += 1
                    return anchor
        anchor = anchor_id_path(query)
        with self._lock:
            if isinstance(query, str):
                self._memo[query] = anchor
                while len(self._memo) > self._memo_limit:
                    self._memo.popitem(last=False)
            if anchor is None:
                self._unattributed += 1
            else:
                self._counts[anchor] = self._counts.get(anchor, 0) + 1
            self._total += 1
        return anchor

    def snapshot(self):
        """A point-in-time copy of the cumulative per-anchor counts."""
        with self._lock:
            return dict(self._counts)

    @property
    def total(self):
        with self._lock:
            return self._total

    def counters(self):
        """Metrics-registry view: totals only, never the path map."""
        with self._lock:
            return {
                "queries": self._total,
                "anchors": len(self._counts),
                "unattributed": self._unattributed,
            }
