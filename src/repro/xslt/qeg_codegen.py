"""Generating QEG programs (stylesheets) from XPATH queries.

This is the paper's Section 3.5 mechanism in its original clothing:
given a query, emit an XSLT program that walks the site document,
dispatches on each node's ``status`` attribute, copies the data that
belongs to the answer and plants ``<asksubquery/>`` placeholders where
remote data is needed.  A post-processing step extracts the subqueries
from the annotated output.

Two creation paths are provided, mirroring Section 4's "Speeding up
XSLT processing":

* :func:`generate_qeg_stylesheet` + :func:`repro.xslt.compiler.compile_stylesheet`
  -- the **naive** path, generating and compiling a fresh program per
  query;
* :class:`FastQEGCodegen` -- the **fast** path: programs are compiled
  once per query *shape* with the id values abstracted into XSLT
  variables; creating the program for a concrete query then costs only
  a variable binding, exactly the paper's "identify the parts of the
  compiled query that depend on the XPATH query and set them directly".

The generated programs cover the depth-0, child-axis, separable-
predicate fragment (the paper's base case); the Python walker in
:mod:`repro.core.qeg` is the engine's general implementation, and the
test suite checks the two agree on this shared fragment.
"""

from repro.core.subquery import render_residual_query
from repro.xmlkit.nodes import Element
from repro.xmlkit.serializer import escape_attribute
from repro.xslt.compiler import compile_stylesheet
from repro.xslt.errors import StylesheetError
from repro.xslt.runtime import TransformContext

ASK_TAG = "asksubquery"


def _conjunction(predicates):
    return " and ".join(f"({p.unparse()})" for p in predicates)


def _pid_test(item, bindings=None, item_index=None):
    """The P_id test, optionally with literals lifted into variables."""
    parts = []
    for pred_index, predicate in enumerate(item.split.id_predicates):
        source = predicate.unparse()
        if bindings is not None:
            from repro.xpath.analysis import single_id_value

            value = single_id_value(item.step)
            if value is not None and source == f"@id = '{value}'":
                name = f"id_{item_index}_{pred_index}"
                bindings[name] = value
                source = f"@id = ${name}"
        parts.append(f"({source})")
    return " and ".join(parts)


def generate_qeg_stylesheet(pattern, variables=None):
    """Generate the QEG stylesheet XML for *pattern*.

    With *variables* (a dict to fill), single-value id predicates are
    replaced by variable references and their values recorded -- the
    fast-creation shape abstraction.
    """
    items = pattern.items
    for item in items:
        if item.descendant:
            raise StylesheetError(
                "the XSLT code generator covers child-axis queries; use "
                "the core walker for // queries"
            )
        if not item.split.separable:
            raise StylesheetError(
                "unseparable predicates require the core walker"
            )
    lines = ["<stylesheet>"]
    root_tag = items[0].step.node_test.unparse() if items else "*"
    lines.append(
        f'<template match="/">'
        f'<apply-templates select="{escape_attribute(root_tag)}" '
        f'mode="m0"/></template>'
    )
    for index, item in enumerate(items):
        lines.append(_item_template(pattern, index, item, variables))
    lines.append("</stylesheet>")
    return "".join(lines)


def _item_template(pattern, index, item, variables):
    tag = item.step.node_test.unparse()
    is_result = index + 1 == len(pattern.items)
    pid = _pid_test(item, variables, index)
    rest = _conjunction(item.split.rest_predicates)
    consistency = _conjunction(item.split.consistency_predicates)

    ask = f'<copy><{ASK_TAG} step="{index}"/></copy>'
    whens = []
    if pid:
        whens.append(f'<when test="not({escape_attribute_text(pid)})"/>')
    whens.append(
        f'<when test="@status=\'incomplete\'">{ask}</when>'
    )
    if is_result or rest or consistency:
        whens.append(f'<when test="@status=\'id-complete\'">{ask}</when>')
    else:
        whens.append(
            f'<when test="@status=\'id-complete\'">'
            f'<copy><apply-templates select="*" mode="m{index + 1}"/></copy>'
            f'</when>'
        )

    # owned/complete: evaluate the rest predicates over local information.
    inner = []
    if is_result:
        success = '<copy-of select="."/>'
    else:
        success = (
            f'<copy><apply-templates select="*" mode="m{index + 1}"/></copy>'
        )
    if consistency:
        # A stale cached copy turns into a subquery; the owner ignores
        # freshness (its copy is the freshest there is).
        stale_guard = (
            f'<choose>'
            f'<when test="@status=\'complete\' and '
            f'not({escape_attribute_text(consistency)})">{ask}</when>'
            f'<otherwise>{success}</otherwise>'
            f'</choose>'
        )
    else:
        stale_guard = success
    if rest:
        inner.append(
            f'<if test="{escape_attribute_text(rest)}">{stale_guard}</if>'
        )
    else:
        inner.append(stale_guard)
    whens.append(f"<otherwise>{''.join(inner)}</otherwise>")

    return (
        f'<template match="{escape_attribute(tag)}" mode="m{index}">'
        f'<choose>{"".join(whens)}</choose>'
        f'</template>'
    )


def escape_attribute_text(text):
    return escape_attribute(text)


# ----------------------------------------------------------------------
# Creation paths
# ----------------------------------------------------------------------
def create_naive(pattern):
    """Naive creation: generate and compile a fresh program.

    Returns ``(stylesheet, variables)`` with an empty binding.
    """
    xml = generate_qeg_stylesheet(pattern)
    return compile_stylesheet(xml), {}


class FastQEGCodegen:
    """Fast creation: compile once per query shape, bind ids per query."""

    def __init__(self):
        self._cache = {}
        self.stats = {"hits": 0, "misses": 0}

    @staticmethod
    def shape_key(pattern):
        return tuple(
            (
                item.step.node_test.unparse(),
                len(item.split.id_predicates),
                tuple(p.unparse() for p in item.split.rest_predicates),
                tuple(p.unparse() for p in item.split.consistency_predicates),
            )
            for item in pattern.items
        )

    def create(self, pattern):
        """Returns ``(stylesheet, variables)`` for *pattern*."""
        key = self.shape_key(pattern)
        cached = self._cache.get(key)
        variables = {}
        if cached is None:
            self.stats["misses"] += 1
            xml = generate_qeg_stylesheet(pattern, variables)
            stylesheet = compile_stylesheet(xml)
            self._cache[key] = stylesheet
            return stylesheet, variables
        self.stats["hits"] += 1
        # Re-derive the bindings only (no compilation).
        generate_bindings(pattern, variables)
        return cached, variables


def generate_bindings(pattern, variables):
    """Fill the id-variable bindings for a shape-cached stylesheet."""
    from repro.xpath.analysis import single_id_value

    for item_index, item in enumerate(pattern.items):
        for pred_index, predicate in enumerate(item.split.id_predicates):
            value = single_id_value(item.step)
            if value is not None and \
                    predicate.unparse() == f"@id = '{value}'":
                variables[f"id_{item_index}_{pred_index}"] = value
    return variables


# ----------------------------------------------------------------------
# Running a QEG program and post-processing its output
# ----------------------------------------------------------------------
def run_qeg_stylesheet(stylesheet, database, variables=None, now=None):
    """Apply a QEG program to a site document.

    Returns ``(annotated answer roots, subqueries)`` where subqueries
    are reconstructed from the ``asksubquery`` placeholders exactly as
    the paper's post-processing step does.
    """
    context = TransformContext(stylesheet, variables=variables, now=now)
    roots = context.transform(database.root)
    subqueries = []
    for root in roots:
        if isinstance(root, Element):
            _collect_subqueries(root, [], subqueries)
    return roots, subqueries


def _collect_subqueries(element, path, out):
    identifier = element.attrib.get("id")
    here = path + [(element.tag, identifier)]
    for child in list(element.element_children()):
        if child.tag == ASK_TAG:
            out.append((tuple(here), int(child.get("step"))))
            element.remove(child)
        else:
            _collect_subqueries(child, here, out)


def subquery_strings(pattern, placeholders):
    """Render placeholder records into the same strings the core walker
    produces, via the shared :func:`render_residual_query`."""
    rendered = []
    for id_path, step_index in placeholders:
        item = pattern.items[step_index]
        rendered.append(render_residual_query(
            id_path, item.residual_predicates,
            pattern.items[step_index + 1:],
        ))
    return rendered
