"""Mini-XSLT engine and the QEG code generator.

The paper drives query-evaluate-gather with XSLT because XPath alone
cannot express "copy what is present and mark what is missing"
(Section 2).  This package provides a namespace-free XSLT 1.0 subset
with an explicit, measurable compile stage, plus the query-to-program
code generator and the fast-creation optimization of Section 4.
"""

from repro.xslt.ast import (
    ApplyTemplates,
    AttributeCtor,
    Choose,
    Copy,
    CopyOf,
    ElementCtor,
    ForEach,
    If,
    LiteralElement,
    Template,
    TextCtor,
    ValueOf,
)
from repro.xslt.compiler import Stylesheet, compile_stylesheet
from repro.xslt.errors import StylesheetError, TransformError, XsltError
from repro.xslt.pattern import MatchPattern
from repro.xslt.qeg_codegen import (
    ASK_TAG,
    FastQEGCodegen,
    create_naive,
    generate_qeg_stylesheet,
    run_qeg_stylesheet,
    subquery_strings,
)
from repro.xslt.runtime import TransformContext, transform

__all__ = [
    "compile_stylesheet",
    "Stylesheet",
    "MatchPattern",
    "TransformContext",
    "transform",
    "Template",
    "ApplyTemplates",
    "ValueOf",
    "Copy",
    "CopyOf",
    "ElementCtor",
    "AttributeCtor",
    "TextCtor",
    "LiteralElement",
    "If",
    "Choose",
    "ForEach",
    "generate_qeg_stylesheet",
    "create_naive",
    "FastQEGCodegen",
    "run_qeg_stylesheet",
    "subquery_strings",
    "ASK_TAG",
    "XsltError",
    "StylesheetError",
    "TransformError",
]
