"""Executing a compiled stylesheet against a document."""

from repro.xmlkit.nodes import Document, Element, Text
from repro.xpath.evaluator import Evaluator
from repro.xpath.types import AttributeRef, to_boolean, to_string
from repro.xslt.ast import (
    ApplyTemplates,
    AttributeCtor,
    Choose,
    Copy,
    CopyOf,
    ElementCtor,
    ForEach,
    If,
    LiteralElement,
    TextCtor,
    ValueOf,
)
from repro.xslt.errors import TransformError

_EVALUATOR = Evaluator()


class _Output:
    """An output tree under construction."""

    def __init__(self):
        self.roots = []
        self.stack = []

    def append_node(self, node):
        if self.stack:
            self.stack[-1].append(node)
        else:
            self.roots.append(node)
        return node

    def append_text(self, text):
        if not text:
            return
        self.append_node(Text(text))

    def push(self, element):
        self.append_node(element)
        self.stack.append(element)

    def pop(self):
        self.stack.pop()

    def current(self):
        return self.stack[-1] if self.stack else None


class TransformContext:
    """One transform run: stylesheet + evaluator state."""

    def __init__(self, stylesheet, variables=None, now=None):
        self.stylesheet = stylesheet
        self.variables = variables or {}
        self.now = now

    # ------------------------------------------------------------------
    def transform(self, document):
        """Apply the stylesheet to *document*; returns the output roots."""
        if isinstance(document, Element):
            document = Document(document)
        output = _Output()
        self._apply_to([document], None, output)
        return output.roots

    def transform_to_element(self, document, wrapper="result"):
        """Transform and wrap the output in a single element."""
        roots = self.transform(document)
        if len(roots) == 1 and isinstance(roots[0], Element):
            return roots[0]
        holder = Element(wrapper)
        for node in roots:
            holder.append(node)
        return holder

    # ------------------------------------------------------------------
    def _apply_to(self, nodes, mode, output):
        for node in nodes:
            template = self.stylesheet.find_template(node, mode)
            if template is not None:
                self._execute(template.body, node, output)
            else:
                self._builtin(node, mode, output)

    def _builtin(self, node, mode, output):
        """XSLT's built-in rules: recurse through elements, copy text."""
        if isinstance(node, Document):
            self._apply_to([node.root], mode, output)
        elif isinstance(node, Element):
            self._apply_to(list(node.children), mode, output)
        elif isinstance(node, Text):
            output.append_text(node.value)
        elif isinstance(node, AttributeRef):
            output.append_text(node.value)

    # ------------------------------------------------------------------
    def _evaluate(self, expression, node):
        return _EVALUATOR.evaluate(expression, node,
                                   variables=self.variables, now=self.now)

    def _execute(self, body, node, output):
        for instruction in body:
            self._execute_one(instruction, node, output)

    def _execute_one(self, instruction, node, output):
        if isinstance(instruction, TextCtor):
            output.append_text(instruction.text)
        elif isinstance(instruction, ValueOf):
            output.append_text(to_string(self._evaluate(instruction.select,
                                                        node)))
        elif isinstance(instruction, ApplyTemplates):
            if instruction.select is not None:
                selected = self._evaluate(instruction.select, node)
                if not isinstance(selected, list):
                    raise TransformError(
                        "apply-templates select must return a node-set"
                    )
            else:
                selected = (list(node.children)
                            if isinstance(node, Element)
                            else [node.root] if isinstance(node, Document)
                            else [])
            self._apply_to(selected, instruction.mode, output)
        elif isinstance(instruction, Copy):
            if isinstance(node, Element):
                clone = Element(node.tag, attrib=node.attrib)
                output.push(clone)
                self._execute(instruction.body, node, output)
                output.pop()
            elif isinstance(node, Text):
                output.append_text(node.value)
            elif isinstance(node, Document):
                self._execute(instruction.body, node, output)
        elif isinstance(instruction, CopyOf):
            value = self._evaluate(instruction.select, node)
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, Element):
                        output.append_node(item.copy())
                    elif isinstance(item, Text):
                        output.append_text(item.value)
                    elif isinstance(item, AttributeRef):
                        current = output.current()
                        if current is not None:
                            current.set(item.name, item.value)
            else:
                output.append_text(to_string(value))
        elif isinstance(instruction, ElementCtor):
            element = Element(instruction.name)
            output.push(element)
            self._execute(instruction.body, node, output)
            output.pop()
        elif isinstance(instruction, AttributeCtor):
            current = output.current()
            if current is None:
                raise TransformError(
                    "attribute constructor outside an element"
                )
            if instruction.select is not None:
                value = to_string(self._evaluate(instruction.select, node))
            else:
                value = instruction.text or ""
            current.set(instruction.name, value)
        elif isinstance(instruction, If):
            if to_boolean(self._evaluate(instruction.test, node)):
                self._execute(instruction.body, node, output)
        elif isinstance(instruction, Choose):
            for test, body in instruction.whens:
                if to_boolean(self._evaluate(test, node)):
                    self._execute(body, node, output)
                    return
            self._execute(instruction.otherwise, node, output)
        elif isinstance(instruction, ForEach):
            selected = self._evaluate(instruction.select, node)
            if not isinstance(selected, list):
                raise TransformError("for-each select must return a node-set")
            for item in selected:
                self._execute(instruction.body, item, output)
        elif isinstance(instruction, LiteralElement):
            element = Element(instruction.tag, attrib=instruction.attributes)
            output.push(element)
            self._execute(instruction.body, node, output)
            output.pop()
        else:
            raise TransformError(
                f"unknown instruction {type(instruction).__name__}"
            )


def transform(stylesheet, document, variables=None, now=None):
    """One-shot transform; returns the list of output root nodes."""
    return TransformContext(stylesheet, variables=variables,
                            now=now).transform(document)
