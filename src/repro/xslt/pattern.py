"""XSLT match patterns.

A pattern matches a node if the node satisfies the pattern's last step
and its ancestors satisfy the preceding steps (anchored at the document
root for absolute patterns, anywhere otherwise) -- XSLT 1.0 semantics
restricted to child/``//`` axes, which is all template rules need.
"""

from repro.xmlkit.nodes import Document, Element, Text
from repro.xpath import parser as xpath_parser
from repro.xpath.ast import LocationPath, NameTest, NodeTypeTest
from repro.xpath.evaluator import Evaluator
from repro.xpath.types import to_boolean
from repro.xslt.errors import StylesheetError

_EVALUATOR = Evaluator()


class MatchPattern:
    """A compiled match pattern."""

    def __init__(self, source):
        self.source = source
        if source == "/":
            self.root_pattern = True
            self.absolute = True
            self.steps = []
            return
        self.root_pattern = False
        ast = xpath_parser.parse(source)
        if not isinstance(ast, LocationPath):
            raise StylesheetError(f"invalid match pattern {source!r}")
        self.absolute = ast.absolute
        self.steps = ast.steps
        for step in self.steps:
            if step.axis not in ("child", "descendant-or-self", "attribute"):
                raise StylesheetError(
                    f"axis {step.axis!r} not allowed in match patterns"
                )

    # ------------------------------------------------------------------
    @property
    def default_priority(self):
        """XSLT-style default priorities for conflict resolution."""
        if self.root_pattern:
            return 0.5
        if len(self.steps) > 1 or self.steps[0].predicates:
            return 0.5
        test = self.steps[0].node_test
        if isinstance(test, NameTest):
            return -0.25 if test.name == "*" else 0.0
        return -0.5  # node type tests

    # ------------------------------------------------------------------
    def matches(self, node):
        if self.root_pattern:
            return isinstance(node, Document)
        if isinstance(node, Document):
            return False
        return self._match_suffix(node, len(self.steps) - 1)

    def _match_suffix(self, node, index):
        while index >= 0 and self._is_gap(self.steps[index]):
            # A trailing // gap just relaxes anchoring of what precedes.
            index -= 1
        if index < 0:
            return not self.absolute or node is None or \
                isinstance(node, Document)
        if node is None or isinstance(node, Document):
            return False
        if not self._step_matches(self.steps[index], node):
            return False
        parent = node.parent
        previous = index - 1
        if previous < 0:
            if not self.absolute:
                return True
            return parent is None  # anchored at the root element
        if self._is_gap(self.steps[previous]):
            # '//': some ancestor (or the anchor point) must match the
            # rest of the pattern.
            target = previous - 1
            if target < 0:
                return True
            ancestor = parent
            while ancestor is not None:
                if self._match_suffix(ancestor, target):
                    return True
                ancestor = ancestor.parent
            return not self.absolute and False
        return parent is not None and self._match_suffix(parent, previous)

    @staticmethod
    def _is_gap(step):
        return (
            step.axis == "descendant-or-self"
            and isinstance(step.node_test, NodeTypeTest)
            and step.node_test.node_type == "node"
            and not step.predicates
        )

    @staticmethod
    def _step_matches(step, node):
        test = step.node_test
        if isinstance(node, Text):
            ok = isinstance(test, NodeTypeTest) and \
                test.node_type in ("text", "node")
        elif isinstance(node, Element):
            if isinstance(test, NameTest):
                ok = test.matches(node.tag)
            else:
                ok = test.node_type == "node"
        else:
            ok = False
        if not ok:
            return False
        for predicate in step.predicates:
            if not to_boolean(_EVALUATOR.evaluate(predicate, node)):
                return False
        return True

    def __repr__(self):
        return f"MatchPattern({self.source!r})"
