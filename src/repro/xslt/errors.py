"""Exception hierarchy for the mini-XSLT engine."""


class XsltError(Exception):
    """Base class for all errors raised by :mod:`repro.xslt`."""


class StylesheetError(XsltError):
    """Raised when a stylesheet is malformed."""


class TransformError(XsltError):
    """Raised when applying a stylesheet to a document fails."""
