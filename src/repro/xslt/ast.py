"""Instruction set of the mini-XSLT engine.

A namespace-free dialect of XSLT 1.0 covering what QEG programs need:
template rules with match patterns and modes, ``apply-templates``,
``value-of``, ``copy``, ``copy-of``, ``element``/``attribute``
constructors, literal result elements, ``if`` and ``choose``.

Select/test expressions are XPath, compiled by :mod:`repro.xpath`; the
explicit compile stage is what the paper's "naive vs fast XSLT
creation" optimization is about, so compilation cost is a first-class
concern here.
"""


class Instruction:
    """Base class for body instructions."""

    __slots__ = ()


class ApplyTemplates(Instruction):
    """Apply matching templates to the selected nodes (default: children)."""

    __slots__ = ("select", "mode")

    def __init__(self, select=None, mode=None):
        self.select = select  # compiled XPath or None
        self.mode = mode


class ValueOf(Instruction):
    """Emit the string value of an expression as text."""

    __slots__ = ("select",)

    def __init__(self, select):
        self.select = select


class Copy(Instruction):
    """Shallow-copy the context node (tag + attributes), then run *body*."""

    __slots__ = ("body",)

    def __init__(self, body):
        self.body = body


class CopyOf(Instruction):
    """Deep-copy the nodes selected by an expression."""

    __slots__ = ("select",)

    def __init__(self, select):
        self.select = select


class ElementCtor(Instruction):
    """Construct an element with a fixed name and a *body*."""

    __slots__ = ("name", "body")

    def __init__(self, name, body):
        self.name = name
        self.body = body


class AttributeCtor(Instruction):
    """Attach an attribute (value from an expression or literal text)."""

    __slots__ = ("name", "select", "text")

    def __init__(self, name, select=None, text=None):
        self.name = name
        self.select = select
        self.text = text


class TextCtor(Instruction):
    """Emit literal text."""

    __slots__ = ("text",)

    def __init__(self, text):
        self.text = text


class LiteralElement(Instruction):
    """A literal result element copied to the output, with a *body*."""

    __slots__ = ("tag", "attributes", "body")

    def __init__(self, tag, attributes, body):
        self.tag = tag
        self.attributes = attributes
        self.body = body


class If(Instruction):
    """Run *body* when the test expression is true."""

    __slots__ = ("test", "body")

    def __init__(self, test, body):
        self.test = test
        self.body = body


class Choose(Instruction):
    """First matching ``when`` wins; *otherwise* may be empty."""

    __slots__ = ("whens", "otherwise")

    def __init__(self, whens, otherwise):
        self.whens = whens  # list of (test, body)
        self.otherwise = otherwise


class ForEach(Instruction):
    """Run *body* once per selected node (as the context node)."""

    __slots__ = ("select", "body")

    def __init__(self, select, body):
        self.select = select
        self.body = body


class Template:
    """One template rule: match pattern + mode + body."""

    __slots__ = ("pattern", "mode", "priority", "body")

    def __init__(self, pattern, mode, priority, body):
        self.pattern = pattern  # a compiled MatchPattern
        self.mode = mode
        self.priority = priority
        self.body = body

    def __repr__(self):
        return (
            f"Template(match={self.pattern.source!r}, mode={self.mode!r}, "
            f"priority={self.priority})"
        )
