"""Stylesheet parsing and compilation.

A stylesheet is written in the namespace-free XSLT dialect::

    <stylesheet>
      <template match="block" mode="2">
        <choose>
          <when test="@status='incomplete'">
            <asksubquery><attribute name="step" select="'2'"/></asksubquery>
          </when>
          <otherwise>
            <copy><apply-templates select="*" mode="3"/></copy>
          </otherwise>
        </choose>
      </template>
    </stylesheet>

Compilation parses every match pattern and select/test expression; it
is the measurable cost the paper's fast-creation optimization attacks
(Section 4, "Speeding up XSLT processing").
"""

from repro.xmlkit.nodes import Text
from repro.xmlkit.parser import parse_fragment
from repro.xpath import parser as xpath_parser
from repro.xslt.ast import (
    ApplyTemplates,
    AttributeCtor,
    Choose,
    Copy,
    CopyOf,
    ElementCtor,
    ForEach,
    If,
    LiteralElement,
    Template,
    TextCtor,
    ValueOf,
)
from repro.xslt.errors import StylesheetError
from repro.xslt.pattern import MatchPattern

_CONTROL_TAGS = {
    "template", "apply-templates", "value-of", "copy", "copy-of",
    "element", "attribute", "text", "if", "choose", "when", "otherwise",
    "for-each", "stylesheet", "transform",
}


class Stylesheet:
    """A compiled stylesheet: ordered template rules by mode."""

    def __init__(self, templates):
        self.templates = templates
        self._by_mode = {}
        for position, template in enumerate(templates):
            bucket = self._by_mode.setdefault(template.mode, [])
            bucket.append((template.priority, position, template))
        for bucket in self._by_mode.values():
            # Highest priority first; among equals, the later definition
            # wins (XSLT's last-rule conflict resolution).
            bucket.sort(key=lambda item: (item[0], item[1]), reverse=True)

    def find_template(self, node, mode=None):
        """The best matching template for *node* in *mode* (or ``None``)."""
        for _priority, _pos, template in self._by_mode.get(mode, ()):
            if template.pattern.matches(node):
                return template
        return None

    def __repr__(self):
        return f"Stylesheet(templates={len(self.templates)})"


def compile_stylesheet(source):
    """Compile a stylesheet from XML text or a parsed element."""
    root = parse_fragment(source) if isinstance(source, str) else source
    if root.tag not in ("stylesheet", "transform"):
        raise StylesheetError(
            f"expected a <stylesheet> root, found <{root.tag}>"
        )
    templates = []
    for child in root.element_children():
        if child.tag != "template":
            raise StylesheetError(
                f"only <template> allowed at the top level, found "
                f"<{child.tag}>"
            )
        match = child.get("match")
        if match is None:
            raise StylesheetError("<template> requires a match attribute")
        pattern = MatchPattern(match)
        priority = child.get("priority")
        templates.append(Template(
            pattern=pattern,
            mode=child.get("mode"),
            priority=(float(priority) if priority is not None
                      else pattern.default_priority),
            body=_compile_body(child),
        ))
    return Stylesheet(templates)


def _compile_expression(source, where):
    try:
        return xpath_parser.parse(source)
    except Exception as exc:
        raise StylesheetError(f"bad expression in {where}: {exc}") from exc


def _compile_body(element):
    body = []
    for child in element.children:
        if isinstance(child, Text):
            if child.value.strip():
                body.append(TextCtor(child.value))
            continue
        body.append(_compile_instruction(child))
    return body


def _compile_instruction(element):
    tag = element.tag
    if tag == "apply-templates":
        select = element.get("select")
        return ApplyTemplates(
            select=_compile_expression(select, tag) if select else None,
            mode=element.get("mode"),
        )
    if tag == "value-of":
        return ValueOf(_compile_expression(element.get("select"), tag))
    if tag == "copy":
        return Copy(_compile_body(element))
    if tag == "copy-of":
        return CopyOf(_compile_expression(element.get("select"), tag))
    if tag == "element":
        return ElementCtor(element.get("name"), _compile_body(element))
    if tag == "attribute":
        select = element.get("select")
        return AttributeCtor(
            element.get("name"),
            select=_compile_expression(select, tag) if select else None,
            text=element.text,
        )
    if tag == "text":
        return TextCtor(element.text or "")
    if tag == "if":
        return If(_compile_expression(element.get("test"), tag),
                  _compile_body(element))
    if tag == "choose":
        whens = []
        otherwise = []
        for child in element.element_children():
            if child.tag == "when":
                whens.append((
                    _compile_expression(child.get("test"), "when"),
                    _compile_body(child),
                ))
            elif child.tag == "otherwise":
                otherwise = _compile_body(child)
            else:
                raise StylesheetError(
                    f"<choose> may only contain when/otherwise, found "
                    f"<{child.tag}>"
                )
        return Choose(whens, otherwise)
    if tag == "for-each":
        return ForEach(_compile_expression(element.get("select"), tag),
                       _compile_body(element))
    if tag in _CONTROL_TAGS:
        raise StylesheetError(f"<{tag}> not allowed here")
    # A literal result element.
    return LiteralElement(tag, dict(element.attrib), _compile_body(element))
