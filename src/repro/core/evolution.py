"""Schema evolution: runtime changes to the document (Section 4).

The paper's XML data model exists partly so the schema can evolve
freely: "Schema changes that do not affect the hierarchy of IDable
nodes can be done locally by the organizing agent that owns the
relevant fragment" -- adding/removing attributes and non-IDable nodes
is just :meth:`SensorDatabase.apply_update`.  Changes to the IDable
hierarchy itself -- adding or deleting IDable nodes -- "are performed by
the organizing agent that owns the parent of the affected IDable node";
this module implements those, leaving caches elsewhere transiently
inconsistent exactly as the paper accepts.
"""

from repro.core.errors import CoreError
from repro.core.idable import (
    format_id_path,
    idable_children,
    node_id,
)
from repro.core.status import Status, get_status, set_status, set_timestamp
from repro.xmlkit.nodes import Element


def add_idable_child(database, parent_path, tag, identifier,
                     attributes=None, values=None):
    """Create a new IDable node under *parent_path* (owner side).

    The caller must own the parent.  The new node starts owned by the
    same site with empty-but-complete local information, timestamped;
    the parent's local information (its child ID list) is extended,
    which is what makes the node visible to queries.

    Returns the created element.  DNS registration is the network
    layer's job (the mapping lives only in DNS).
    """
    parent = database.find(parent_path, required=True)
    if get_status(parent) is not Status.OWNED:
        raise CoreError(
            f"cannot add {tag}={identifier}: site {database.site_id!r} "
            f"does not own the parent {format_id_path(parent_path)}"
        )
    if parent.child(tag, id=identifier) is not None:
        raise CoreError(
            f"{tag}={identifier} already exists under "
            f"{format_id_path(parent_path)}"
        )
    element = Element(tag, attrib={"id": identifier})
    for name, value in (attributes or {}).items():
        if name in ("id", "status"):
            raise CoreError(f"new nodes may not set the {name!r} attribute")
        element.set(name, value)
    for child_tag, text in (values or {}).items():
        element.append(Element(child_tag, text=str(text)))
    set_status(element, Status.OWNED)
    node_ts = database.clock()
    set_timestamp(element, node_ts)
    parent.append(element)
    parent_ts = database.clock()
    set_timestamp(parent, parent_ts)
    database._journal_record(
        "add_node",
        parent=database._journal_path(parent_path),
        tag=tag, id=identifier,
        attributes=dict(attributes) if attributes else None,
        values={k: str(v) for k, v in values.items()} if values else None,
        node_ts=node_ts, parent_ts=parent_ts,
    )
    return element


def remove_idable_child(database, path):
    """Delete the IDable node at *path* (owner-of-parent side).

    The caller must own the parent; the node's whole stored subtree
    goes with it.  Refuses if a descendant is owned by this site under
    a *different* assignment boundary... any owned descendant is fine
    (it is owned here too, and leaves with the node), but a node that
    is merely cached here while owned elsewhere cannot be deleted by
    this site.
    """
    element = database.find(path, required=True)
    parent = element.parent
    if parent is None:
        raise CoreError("cannot remove the document root")
    if get_status(parent) is not Status.OWNED:
        raise CoreError(
            f"cannot remove {format_id_path(path)}: site "
            f"{database.site_id!r} does not own the parent"
        )
    # When only an ID stub is stored here, the node's data is owned
    # elsewhere -- but the parent's owner controls membership
    # (Section 4), so the stub is dropped and the remote copy becomes
    # an orphan the same transient way remote caches do.
    removed = _collect_paths(element, [list(entry) for entry in path])
    parent.remove(element)
    parent_ts = database.clock()
    set_timestamp(parent, parent_ts)
    database._journal_record(
        "remove_node", path=database._journal_path(path),
        parent_ts=parent_ts)
    return removed


def _collect_paths(element, base_path):
    paths = [tuple(tuple(p) for p in base_path)]
    for child in idable_children(element):
        child_path = base_path + [list(node_id(child))]
        paths.extend(_collect_paths(child, child_path))
    return paths


def rename_field(database, path, old_tag, new_tag):
    """A local non-IDable schema change: rename a value field.

    Demonstrates the "transparent schema changes" story: purely local,
    no coordination, transient cache inconsistency elsewhere.
    """
    element = database.find(path, required=True)
    if get_status(element) is not Status.OWNED:
        raise CoreError(
            f"cannot rename fields of {format_id_path(path)}: not owned"
        )
    child = element.child(old_tag)
    if child is None or child.id is not None:
        raise CoreError(
            f"{old_tag!r} is not a non-IDable field of "
            f"{format_id_path(path)}"
        )
    replacement = Element(new_tag)
    text = child.text
    if text is not None:
        replacement.set_text(text)
    for name, value in child.attrib.items():
        replacement.set(name, value)
    element.remove(child)
    element.append(replacement)
    when = database.clock()
    set_timestamp(element, when)
    database._journal_record(
        "rename_field", path=database._journal_path(path),
        old=old_tag, new=new_tag, ts=when)
    return replacement
