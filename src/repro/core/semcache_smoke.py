"""Semantic-cache smoke check: log, prewarm, replay, assert a floor.

``python -m repro.core.semcache_smoke`` drives a skewed parking
workload against a live loopback cluster while capturing the query
log (exactly as ``service.run_live`` does in production), then

* saves the log as JSONL,
* prewarms a **fresh, cold** cluster from the saved log
  (:func:`repro.core.semcache.prewarm`), and
* replays the logged trace against the warmed cluster, asserting that
  at least ``--floor`` of the queries are served entirely from warmed
  caches (zero new wire subqueries).

The report (replay hit rates cold vs warmed, prewarm stats, the
cluster's semcache counters) is written to
``<artifacts>/SEMCACHE_smoke.json`` and the captured log to
``<artifacts>/queries.jsonl`` so CI can archive both.
"""

import argparse
import json
import os
import sys


def _build_cluster():
    from repro.arch.architectures import hierarchical
    from repro.core.semcache import SemanticCacheConfig
    from repro.net import Cluster, OAConfig
    from repro.service import ParkingConfig, build_parking_document

    config = ParkingConfig.tiny()
    architecture = hierarchical(config, n_sites=7)
    cluster = Cluster(
        build_parking_document(config), architecture.plan,
        oa_config=OAConfig(semcache=SemanticCacheConfig()),
    )
    return config, cluster


def _scalar_round(config):
    """Jittered scalar aggregates: ``(stored spelling, jitter)`` pairs.

    Each pair is semantically one query -- whitespace/predicate-order
    jitter or a 28s-vs-30s freshness bound sharing the 30s bucket --
    so the second spelling must hit the entry the first one stored.
    """
    from repro.service import parking

    base = parking.type1_query(
        config, config.city_names()[0], config.neighborhood_names()[0],
        config.block_ids()[0], selection="cheap")
    spaced = base.replace("[available='yes'][price='0']",
                          "[ price = '0' ][ available = 'yes' ]")
    return [
        (f"count({base})", f"count( {spaced} )"),
        (f"count({base}[timestamp > now - 30])",
         f"count({base}[timestamp > now - 28])"),
    ]


def _replay(cluster, entries):
    """Replay logged *entries*; count queries served without the wire."""
    def total_sent():
        return sum(agent.stats["subqueries_sent"]
                   for agent in cluster.agents.values())

    served_warm = 0
    for entry in entries:
        before = total_sent()
        cluster.query(entry["query"])
        if total_sent() == before:
            served_warm += 1
    return served_warm


def run_smoke(artifacts="semcache-smoke", count=40, floor=0.6):
    """Run the smoke; returns a list of problems (empty = pass)."""
    from repro.core.semcache import QueryLog, prewarm
    from repro.obs.registry import build_cluster_registry
    from repro.service import QueryWorkload, run_live

    os.makedirs(artifacts, exist_ok=True)
    log_path = os.path.join(artifacts, "queries.jsonl")
    report_path = os.path.join(artifacts, "SEMCACHE_smoke.json")

    # Live traffic on a cold cluster, query log attached.
    config, cold_cluster = _build_cluster()
    workload = QueryWorkload.qw_mix(config, skew=0.8, seed=11)
    query_log = QueryLog()
    run_live(cold_cluster, workload, count, query_log=query_log)

    # Jittered scalar aggregates exercise the semantic keys directly:
    # the second spelling of each pair must hit the first one's entry.
    scalar_pairs = _scalar_round(config)
    for stored, jitter in scalar_pairs:
        cold_cluster.scalar(stored, max_age=600)
        cold_cluster.scalar(jitter, max_age=600)
        query_log.record(stored)
    cold_snapshot = build_cluster_registry(cold_cluster) \
        .snapshot()["semcache"]

    saved = query_log.save(log_path)

    # A fresh deployment, warmed purely from the saved log.
    _config, warm_cluster = _build_cluster()
    loaded = QueryLog.load(log_path)
    prewarm_report = prewarm(warm_cluster, loaded)

    # Replaying the fragment trace should now mostly bypass the wire,
    # and the jittered scalar spellings must hit the prewarmed entries.
    entries = [e for e in loaded if not e["query"].startswith("count(")]
    served_warm = _replay(warm_cluster, entries)
    warm_rate = served_warm / len(entries) if entries else 0.0
    for _stored, jitter in scalar_pairs:
        warm_cluster.scalar(jitter, max_age=600)
    warm_snapshot = build_cluster_registry(warm_cluster) \
        .snapshot()["semcache"]

    # The same replay against a second cold cluster, for contrast.
    _config, control_cluster = _build_cluster()
    served_cold = _replay(control_cluster, entries)
    cold_rate = served_cold / len(entries) if entries else 0.0

    problems = []
    if saved != count + len(scalar_pairs):
        problems.append(
            f"logged {saved} queries, expected {count + len(scalar_pairs)}")
    if prewarm_report["failures"]:
        problems.append(f"prewarm failures: {prewarm_report['failures']}")
    if prewarm_report["replayed"] == 0:
        problems.append("prewarm replayed nothing")
    if warm_rate < floor:
        problems.append(
            f"warmed replay served {warm_rate:.0%} from cache, "
            f"floor is {floor:.0%}")
    if warm_rate <= cold_rate:
        problems.append(
            f"prewarming did not help: warm {warm_rate:.0%} "
            f"<= cold {cold_rate:.0%}")
    if cold_snapshot["hits"] < len(scalar_pairs):
        problems.append(
            f"jittered scalars hit {cold_snapshot['hits']} times, "
            f"expected >= {len(scalar_pairs)}")
    if cold_snapshot["bucket_coalesced_hits"] < 1:
        problems.append("no bucket-coalesced hit from the 28s/30s pair")
    if warm_snapshot["hits"] < len(scalar_pairs):
        problems.append(
            f"prewarmed scalars hit {warm_snapshot['hits']} times, "
            f"expected >= {len(scalar_pairs)}")

    report = {
        "count": count,
        "floor": floor,
        "prewarm": prewarm_report,
        "replay": {
            "warm_served_from_cache": served_warm,
            "warm_rate": round(warm_rate, 4),
            "cold_served_from_cache": served_cold,
            "cold_rate": round(cold_rate, 4),
        },
        "semcache": {"cold": cold_snapshot, "warm": warm_snapshot},
        "problems": problems,
    }
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"prewarm: {prewarm_report['replayed']} unique queries "
          f"across {sorted(prewarm_report['by_site'])}")
    print(f"replay: warm {warm_rate:.0%} vs cold {cold_rate:.0%} "
          f"served from cache (floor {floor:.0%}) -> {report_path}")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.semcache_smoke", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--artifacts", default="semcache-smoke",
                        help="directory for the log + report artifacts")
    parser.add_argument("--count", type=int, default=40,
                        help="how many workload queries to log")
    parser.add_argument("--floor", type=float, default=0.6,
                        help="minimum warmed-replay cache-served rate")
    args = parser.parse_args(argv)

    problems = run_smoke(artifacts=args.artifacts, count=args.count,
                         floor=args.floor)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
