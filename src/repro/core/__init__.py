"""The paper's primary contribution: fragmentation, QEG and caching.

This package implements Sections 3 and 4 of the paper: IDable nodes
and local (ID) information, data partitioning with invariants I1/I2,
the per-node status scheme, query-evaluate-gather, generalized
(cacheable) subquery answers with invariants C1/C2, query-based
consistency, ownership migration and the nesting-depth extensions.
"""

from repro.core.aggregates import AggregateCache, CachedScalar
from repro.core.answer import AnswerBuilder, Subquery
from repro.core.consistency import (
    extract_tolerance,
    has_consistency_predicates,
    rewrite_consistency_sugar,
    strip_consistency_predicates,
    tolerance_predicate,
    transform_expression,
)
from repro.core.database import SensorDatabase
from repro.core.evolution import (
    add_idable_child,
    remove_idable_child,
    rename_field,
)
from repro.core.errors import (
    CacheError,
    CoreError,
    InvariantViolation,
    PartitionError,
    QueryRoutingError,
    UnknownNodeError,
    UnsupportedDistributedQueryError,
)
from repro.core.executors import (
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)
from repro.core.gather import GatherDriver, GatherError, GatherOutcome
from repro.core.lru import LRUCache
from repro.core.idable import (
    find_by_id_path,
    format_id_path,
    id_path_of,
    id_stub,
    idable_children,
    is_idable,
    iter_idable,
    local_id_information,
    local_information,
    lowest_idable_ancestor_or_self,
    node_id,
    non_idable_children,
)
from repro.core.invariants import (
    fragment_violations,
    ownership_violations,
    structural_violations,
    validate_deployment,
    violations_against_reference,
)
from repro.core.ownership import (
    accept_ownership,
    export_local_information,
    relinquish_ownership,
)
from repro.core.partition import PartitionPlan, build_site_database
from repro.core.qeg import (
    BOOLEAN_PROBE,
    FETCH_SUBTREE,
    GENERALIZE_AGGRESSIVE,
    GENERALIZE_ANSWER,
    CompiledPattern,
    QEGResult,
    compile_pattern,
    run_qeg,
)
from repro.core.schema import HierarchySchema
from repro.core.status import (
    Status,
    get_status,
    get_timestamp,
    set_status,
    set_timestamp,
    strip_internal_attributes,
)
from repro.core.subquery import (
    render_boolean_probe,
    render_id_path_query,
    render_residual_query,
)

__all__ = [
    "SensorDatabase",
    "Status",
    "HierarchySchema",
    "PartitionPlan",
    "build_site_database",
    "GatherDriver",
    "GatherOutcome",
    "GatherError",
    "AggregateCache",
    "CachedScalar",
    "AnswerBuilder",
    "Subquery",
    "CompiledPattern",
    "QEGResult",
    "compile_pattern",
    "run_qeg",
    "FETCH_SUBTREE",
    "BOOLEAN_PROBE",
    "LRUCache",
    "SerialExecutor",
    "ThreadedExecutor",
    "resolve_executor",
    "GENERALIZE_ANSWER",
    "GENERALIZE_AGGRESSIVE",
    "is_idable",
    "idable_children",
    "non_idable_children",
    "node_id",
    "id_path_of",
    "id_stub",
    "format_id_path",
    "find_by_id_path",
    "iter_idable",
    "local_information",
    "local_id_information",
    "lowest_idable_ancestor_or_self",
    "get_status",
    "set_status",
    "get_timestamp",
    "set_timestamp",
    "strip_internal_attributes",
    "structural_violations",
    "violations_against_reference",
    "ownership_violations",
    "fragment_violations",
    "validate_deployment",
    "export_local_information",
    "accept_ownership",
    "relinquish_ownership",
    "rewrite_consistency_sugar",
    "strip_consistency_predicates",
    "has_consistency_predicates",
    "tolerance_predicate",
    "extract_tolerance",
    "transform_expression",
    "add_idable_child",
    "remove_idable_child",
    "rename_field",
    "render_id_path_query",
    "render_residual_query",
    "render_boolean_probe",
    "CoreError",
    "PartitionError",
    "InvariantViolation",
    "UnknownNodeError",
    "CacheError",
    "QueryRoutingError",
    "UnsupportedDistributedQueryError",
]
