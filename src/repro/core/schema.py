"""Hierarchy schema: which element names are IDable, and their nesting.

The paper's analyses (nesting depth, LOCAL-INFO-REQUIRED) need to know
which *element names* denote IDable nodes.  A schema can be declared
explicitly by a service or derived from a sample document.

This also supports the schema-evolution story of Section 4: attributes
and non-IDable content can change freely (no schema involvement), and
IDable tags can be registered or retired at runtime.
"""

from repro.core.idable import idable_children, iter_idable
from repro.core.lru import LRUCache


class HierarchySchema:
    """Knowledge of the IDable hierarchy of a service's document.

    ``parent_to_children`` maps an IDable element name to the set of
    IDable element names that may appear as its children.

    ``compiled_patterns`` is this schema's bounded LRU of compiled
    query patterns (see :func:`repro.core.qeg.compile_pattern`); it is
    cleared whenever the IDable tag set changes, since that knowledge
    is baked into compiled patterns.
    """

    def __init__(self, root_tag, parent_to_children=None,
                 pattern_cache_entries=256):
        self.root_tag = root_tag
        self._children = {root_tag: set()}
        self.compiled_patterns = LRUCache(max_entries=pattern_cache_entries)
        if parent_to_children:
            for parent, children in parent_to_children.items():
                self._children.setdefault(parent, set()).update(children)
                for child in children:
                    self._children.setdefault(child, set())

    # ------------------------------------------------------------------
    @classmethod
    def from_document(cls, root):
        """Derive the schema from a sample (fully materialized) document."""
        schema = cls(root.tag)
        for element in iter_idable(root):
            for child in idable_children(element):
                schema.register_child(element.tag, child.tag)
        return schema

    # ------------------------------------------------------------------
    def register_child(self, parent_tag, child_tag):
        """Declare that *child_tag* IDable nodes may nest under *parent_tag*."""
        if child_tag not in self._children or \
                child_tag not in self._children.get(parent_tag, ()):
            self.compiled_patterns.clear()
        self._children.setdefault(parent_tag, set()).add(child_tag)
        self._children.setdefault(child_tag, set())

    def retire(self, tag):
        """Remove an IDable element name from the schema."""
        self.compiled_patterns.clear()
        self._children.pop(tag, None)
        for children in self._children.values():
            children.discard(tag)

    # ------------------------------------------------------------------
    @property
    def idable_tags(self):
        """The set of IDable element names."""
        return frozenset(self._children)

    def is_idable_tag(self, tag):
        """Whether *tag* names IDable nodes."""
        return tag in self._children

    def children_of(self, tag):
        """IDable child element names of *tag*."""
        return frozenset(self._children.get(tag, ()))

    def descendant_idable_tags(self, tag, include_self=True):
        """All IDable element names reachable below *tag* (cycle-safe)."""
        out = set()
        stack = [tag]
        while stack:
            current = stack.pop()
            for child in self._children.get(current, ()):
                if child not in out:
                    out.add(child)
                    stack.append(child)
        if include_self and tag in self._children:
            out.add(tag)
        return frozenset(out)

    def local_info_required(self, result_tags):
        """Expand result tags to the full LOCAL-INFO-REQUIRED set.

        XPath returns whole subtrees, so if a query's answer includes
        nodes with a given tag, the local information of every IDable
        tag nested below is required too (Section 3.5's example:
        ``.../neighborhood/block`` requires {block, parkingSpace}).

        ``"*"`` in *result_tags* means "any element": every IDable tag
        is required.
        """
        required = set()
        for tag in result_tags:
            if tag == "*":
                return frozenset(self._children)
            required.update(self.descendant_idable_tags(tag, include_self=True))
            # A non-IDable result tag (e.g. "available") requires the
            # local information of its enclosing IDable node, which the
            # QEG walker resolves positionally; nothing to add here.
        return frozenset(required)

    def __repr__(self):
        return (
            f"HierarchySchema(root={self.root_tag!r}, "
            f"tags={sorted(self._children)})"
        )
