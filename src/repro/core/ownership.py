"""Ownership migration of IDable nodes between sites (Section 4).

The paper's four-step protocol, made atomic by the final DNS update:

1. the site taking ownership fetches a copy of the node's local
   information from the current owner;
2. sensor proxies reporting to the old owner are redirected;
3. the new owner sets the node's status to ``owned`` while the old
   owner demotes its copy to ``complete``;
4. the DNS entry for the node is updated to the new owner.

Until step 4 the rest of the system keeps routing queries to the old
owner, which simply holds them during the hand-off and can forward
stragglers that arrive via stale DNS caches afterwards.

This module supplies the database-level pieces; the network layer
(:mod:`repro.net.oa`) sequences them and performs the DNS update.
"""

from repro.core.answer import AnswerBuilder
from repro.core.errors import CoreError
from repro.core.idable import format_id_path
from repro.core.status import Status, get_status


def export_local_information(database, id_path):
    """Step 1, owner side: the wire fragment handing over *id_path*.

    Contains the node's local information plus the local ID information
    of its ancestors, so the receiver can merge it like any cached
    answer (C1/C2 hold) before flipping the status to ``owned``.
    """
    element = database.find(id_path, required=True)
    if get_status(element) is not Status.OWNED:
        raise CoreError(
            f"cannot delegate {format_id_path(id_path)}: not owned at "
            f"site {database.site_id!r}"
        )
    builder = AnswerBuilder(database)
    builder.include_local_information(element)
    return builder.build()


def accept_ownership(database, id_path, fragment):
    """Steps 1+3, new-owner side: merge the fragment and mark owned."""
    database.store_fragment(fragment)
    return database.mark_owned(id_path)


def relinquish_ownership(database, id_path):
    """Step 3, old-owner side: demote the local copy to ``complete``.

    The old owner keeps the (now cached) data, which lets it answer
    stale-DNS stragglers or serve as a warm replica.
    """
    return database.release_ownership(id_path)
