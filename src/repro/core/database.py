"""A site database: one fragment of the global document, with statuses.

Each organizing agent stores a single document fragment rooted at the
global document's root (invariant I2 guarantees the root path is always
present).  IDable nodes carry a ``status`` attribute (Section 3.2) and
owned/complete nodes carry a data ``timestamp``.

Owned data and cached data live in the same document with different
status tags, which is exactly what unifies query processing at a site
(Section 1, contribution 4).
"""

import time

from repro.core.errors import CacheError, CoreError
from repro.core.idable import (
    find_by_id_path,
    format_id_path,
    id_path_of,
    id_stub,
    idable_children,
    iter_idable_with_paths,
    lowest_idable_ancestor_or_self,
    node_id,
    non_idable_children,
)
from repro.core.status import (
    Status,
    get_status,
    get_timestamp,
    set_status,
    set_timestamp,
)
from repro.xmlkit.nodes import Element


class SensorDatabase:
    """The document fragment stored at one site, plus its bookkeeping.

    *clock* is a zero-argument callable returning the site's local time
    in seconds; it defaults to :func:`time.time` and is replaced by the
    simulated clock in the discrete-event experiments.
    """

    def __init__(self, root, clock=None, site_id=None):
        if not isinstance(root, Element):
            raise CoreError("a SensorDatabase needs a root Element")
        self.root = root
        self.clock = clock or time.time
        self.site_id = site_id
        # The id-path index: (tag, id) path tuple -> live element, for
        # every IDable node.  Guarded by the root's subtree version
        # stamp: the database's own mutators maintain it incrementally
        # and re-stamp it; any out-of-band tree mutation (e.g. schema
        # evolution appending under an owned parent) leaves the stamp
        # behind and the next access rebuilds from scratch.
        self._index = {}
        self._index_stamp = None
        self._index_dirty = True
        self._size_cache = None
        # Durability hook: a callable receiving one mutation-record
        # dict after each successful mutation (None = no journalling).
        # Set by DurabilityManager.attach(); the records are what WAL
        # replay feeds back through repro.durability.apply_record.
        self.journal = None
        # Statistics used by the caching experiments.
        self.stats = {
            "updates_applied": 0,
            "fragments_merged": 0,
            "nodes_upgraded": 0,
            "nodes_refreshed": 0,
            "evictions": 0,
            "index_hits": 0,
            "index_misses": 0,
            "index_rebuilds": 0,
        }

    # ------------------------------------------------------------------
    # The durability journal
    # ------------------------------------------------------------------
    def _journal_record(self, kind, **fields):
        """Hand one mutation record to the attached journal (if any).

        Called *after* the in-memory mutation committed and *before*
        the mutation is acknowledged to the caller, so an acknowledged
        mutation is always on the log.
        """
        journal = self.journal
        if journal is not None:
            fields["kind"] = kind
            journal(fields)

    @staticmethod
    def _journal_path(id_path):
        """ID paths as JSON-friendly ``[[tag, id], ...]`` lists."""
        return [[entry[0], entry[1]] for entry in id_path]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, root_tag, root_id, clock=None, site_id=None,
              status=Status.INCOMPLETE):
        """A database holding only the root's ID."""
        root = Element(root_tag, attrib={"id": root_id})
        set_status(root, status)
        return cls(root, clock=clock, site_id=site_id)

    # ------------------------------------------------------------------
    # The id-path index
    # ------------------------------------------------------------------
    def _index_current(self):
        return (not self._index_dirty
                and self._index_stamp == self.root.subtree_version)

    def _ensure_index(self):
        if not self._index_current():
            self._index = dict(iter_idable_with_paths(self.root))
            self._index_stamp = self.root.subtree_version
            self._index_dirty = False
            self.stats["index_rebuilds"] += 1

    def _mark_index_current(self):
        """Re-stamp after an internal mutation maintained the index."""
        if not self._index_dirty:
            self._index_stamp = self.root.subtree_version

    def _invalidate_index(self):
        """Give up on incremental maintenance until the next rebuild."""
        self._index_dirty = True

    def _unregister_descendants(self, element, path):
        """Drop index entries for every IDable node strictly below
        *element* (whose own entry, at *path*, stays)."""
        for child in idable_children(element):
            child_path = path + (node_id(child),)
            self._unregister_descendants(child, child_path)
            self._index.pop(child_path, None)

    @staticmethod
    def _content_carries_ids(children):
        """Whether removing/adding this non-IDable content can change
        which nodes are IDable (id-bearing elements hiding in it)."""
        for child in children:
            if isinstance(child, Element):
                for node in child.iter():
                    if node.attrib.get("id") is not None:
                        return True
        return False

    def debug_verify_index(self, expect_current=True):
        """Check the id-path index against a from-scratch rebuild.

        Returns a list of human-readable inconsistencies (empty =
        consistent).  A stale stamp is legal in general (the next
        access rebuilds) but with ``expect_current=True`` -- the mode
        tests use right after a database operation -- it is reported,
        since the database's own mutators must leave the index live.
        """
        problems = []
        if not self._index_current():
            if expect_current:
                problems.append("index is stale (rebuild pending)")
            return problems
        fresh = dict(iter_idable_with_paths(self.root))
        for path, element in fresh.items():
            stored = self._index.get(path)
            if stored is None:
                problems.append(f"missing entry {format_id_path(path)}")
            elif stored is not element:
                problems.append(
                    f"entry {format_id_path(path)} maps to a dead element"
                )
        for path in self._index:
            if path not in fresh:
                problems.append(f"ghost entry {format_id_path(path)}")
        return problems

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, id_path, required=False):
        """Resolve an ID path to the stored element (or ``None``).

        Well-formed paths (every hop carrying an id) resolve through
        the id-path index in one hash lookup.  Degenerate paths -- and
        index misses, which in exotic trees can still resolve linearly
        (e.g. hops through duplicated sibling ids, which the index
        deliberately excludes) -- fall back to the linear walk.
        """
        if self._index_dirty or self._index_stamp != self.root._version:
            self._ensure_index()
        try:
            # Fast path: callers usually pass the canonical tuple-of-
            # tuples spelling, which is the index key verbatim.  Index
            # keys are always well-formed, so a hit needs no validation.
            element = self._index.get(id_path)
        except TypeError:
            element = None  # list-based spelling; normalized below
        if element is None:
            key = tuple(map(tuple, id_path))
            if key and all(
                len(entry) == 2 and entry[1] is not None for entry in key
            ):
                element = self._index.get(key)
                if element is None:
                    self.stats["index_misses"] += 1
        if element is not None:
            self.stats["index_hits"] += 1
            return element
        return find_by_id_path(self.root, id_path, required=required)

    def status_of(self, element):
        """The status recorded on an IDable element."""
        return get_status(element)

    def effective_status(self, element):
        """The status governing *element*: its own, or its IDable ancestor's.

        Non-IDable nodes implicitly share the status of their lowest
        IDable ancestor (Section 3.2).
        """
        return get_status(lowest_idable_ancestor_or_self(element))

    def owns(self, element):
        return get_status(element) is Status.OWNED

    def iter_idable(self):
        """Yield every IDable node stored at this site, top-down.

        Served from the id-path index (insertion order is ancestors
        before descendants, which is all "top-down" promises).
        """
        self._ensure_index()
        return iter(list(self._index.values()))

    def owned_nodes(self):
        """All nodes this site owns."""
        return [e for e in self.iter_idable() if get_status(e) is Status.OWNED]

    def owned_paths(self):
        """ID paths of all owned nodes.

        One pass over the index -- paths are its keys, so no per-node
        walk to the root happens.
        """
        self._ensure_index()
        return [
            path
            for path, element in self._index.items()
            if get_status(element) is Status.OWNED
        ]

    def size(self):
        """Number of element nodes stored (memoized per tree version)."""
        stamp = self.root.subtree_version
        if self._size_cache is None or self._size_cache[0] != stamp:
            self._size_cache = (stamp, self.root.size())
        return self._size_cache[1]

    # ------------------------------------------------------------------
    # Sensor updates (owner side)
    # ------------------------------------------------------------------
    def apply_update(self, id_path, attributes=None, values=None,
                     require_owned=True, timestamp=None):
        """Apply a sensor update to the node at *id_path*.

        *attributes* maps attribute names to new values; *values* maps
        non-IDable child element names to new text content (children
        are created when absent).  The node's timestamp is set from the
        site clock unless *timestamp* pins it explicitly -- WAL replay
        passes the originally recorded timestamp so a recovered
        partition is byte-identical to one that never crashed.

        Returns the updated element.  Raises :class:`CoreError` when
        the node is not owned here (the caller should forward the
        update to the owner), or :class:`UnknownNodeError` when the
        node is not stored at all.
        """
        self._ensure_index()
        element = self.find(id_path, required=True)
        if require_owned and get_status(element) is not Status.OWNED:
            raise CoreError(
                f"site {self.site_id!r} does not own "
                f"{node_id(element)}; forward the update to the owner"
            )
        for name, value in (attributes or {}).items():
            if name in ("id", "status"):
                raise CoreError(f"updates may not modify the {name!r} attribute")
            element.set(name, value)
        for tag, text in (values or {}).items():
            child = element.child(tag)
            if child is not None and child.id is not None:
                raise CoreError(
                    f"update value {tag!r} addresses an IDable child; "
                    "updates apply only to local information"
                )
            if child is None:
                child = Element(tag)
                element.append(child)
            child.set_text(text)
        when = self.clock() if timestamp is None else float(timestamp)
        set_timestamp(element, when)
        self.stats["updates_applied"] += 1
        # Updates touch only local information (no id/status changes,
        # created value children carry no id), so the IDable node set
        # is unchanged: re-stamp the index instead of rebuilding.
        self._mark_index_current()
        self._journal_record(
            "update",
            path=self._journal_path(id_path_of(element)),
            attributes=dict(attributes) if attributes else None,
            values=dict(values) if values else None,
            ts=when,
            require_owned=bool(require_owned),
        )
        return element

    # ------------------------------------------------------------------
    # Merging answer fragments (caching)
    # ------------------------------------------------------------------
    def store_fragment(self, fragment):
        """Merge a wire-format answer *fragment* into this database.

        The fragment is a tree rooted at the global root in which each
        IDable node carries the status the *receiver* should record
        (``complete``, ``id-complete`` or ``incomplete``) plus a
        timestamp on data-bearing nodes.  Invariants C1/C2 hold for
        every fragment produced by :mod:`repro.core.answer`, so merging
        preserves I1/I2.

        Merge policy per matched node (by ``(tag, id)``):

        * an ``owned`` node is never modified by a cache merge -- the
          owner's copy is authoritative (only child ID stubs it already
          has are reconciled);
        * a higher-ranked incoming status upgrades the node and brings
          its content along;
        * equal ``complete`` ranks are resolved by timestamp: newer
          data replaces older ("replaces it if a fresh copy of the same
          data is available", Section 3.3).
        """
        if node_id(fragment) != node_id(self.root):
            raise CacheError(
                f"fragment rooted at {node_id(fragment)} does not match "
                f"database root {node_id(self.root)}"
            )
        self._ensure_index()
        self._merge_node(self.root, fragment, (node_id(self.root),))
        self.stats["fragments_merged"] += 1
        self._mark_index_current()
        if self.journal is not None:
            # The merge never mutates the incoming fragment, so its
            # wire bytes journal the cache fill verbatim (and reuse the
            # serialization memo the wire path already populated).
            from repro.xmlkit.serializer import serialize

            self._journal_record("fragment", xml=serialize(fragment))

    def _merge_node(self, target, incoming, path):
        target_status = get_status(target)
        incoming_status = get_status(incoming)

        if target_status is Status.OWNED:
            pass  # authoritative; never touched by cached data
        elif incoming_status.rank > target_status.rank:
            self._adopt_content(target, incoming, incoming_status)
            self.stats["nodes_upgraded"] += 1
        elif (
            incoming_status.rank == target_status.rank
            and incoming_status.has_local_information
        ):
            new_time = get_timestamp(incoming)
            old_time = get_timestamp(target)
            if new_time is not None and (old_time is None or new_time > old_time):
                self._adopt_content(target, incoming, incoming_status)
                self.stats["nodes_refreshed"] += 1

        # Recurse into matched IDable children; graft unmatched ones.
        index = {node_id(c): c for c in idable_children(target)}
        for child in idable_children(incoming):
            key = node_id(child)
            existing = index.get(key)
            if existing is None:
                grafted = self._graft_stub(target, child, path)
                self._merge_node(grafted, child, path + (key,))
            else:
                self._merge_node(existing, child, path + (key,))

    def _graft_stub(self, target, incoming_child, parent_path):
        stub = id_stub(incoming_child)
        set_status(stub, Status.INCOMPLETE)
        target.append(stub)
        key = node_id(stub)
        if key[1] is not None and sum(
            1 for sibling in target.element_children(stub.tag)
            if sibling.attrib.get("id") == key[1]
        ) == 1:
            self._index[parent_path + (key,)] = stub
        else:
            # The graft collided with same-id siblings (possible only
            # in degenerate trees): IDability around it changed in ways
            # not worth tracking incrementally.
            self._invalidate_index()
        return stub

    def _adopt_content(self, target, incoming, incoming_status):
        """Replace *target*'s own-level content with *incoming*'s."""
        if incoming_status.has_local_information:
            # Replace attributes (except id) and non-IDable children.
            for name in list(target.attrib):
                if name != "id":
                    target.delete_attribute(name)
            for name, value in incoming.attrib.items():
                if name != "id":
                    target.set(name, value)
            outgoing = list(non_idable_children(target))
            adopted = non_idable_children(incoming)
            # Swapping non-IDable content cannot change the IDable node
            # set -- unless id-bearing elements hide inside it (sibling
            # id collisions and the like); then stop maintaining the
            # index incrementally and let the next access rebuild.
            if self._content_carries_ids(outgoing) or \
                    self._content_carries_ids(adopted):
                self._invalidate_index()
            for child in outgoing:
                target.remove(child)
            for child in adopted:
                target.append(child.copy())
        set_status(target, incoming_status)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict(self, id_path, keep_ids=False):
        """Drop cached data for the node at *id_path*.

        Data is always removed in units of local informations
        (Section 3.3, "Evicting (cached) data").  With ``keep_ids``
        the node is demoted to ``id-complete`` (its own local info is
        dropped, child IDs stay); otherwise the node is demoted to
        ``incomplete`` and its whole subtree is removed.

        Owned data cannot be evicted, nor can a subtree containing an
        owned node.
        """
        self._ensure_index()
        element = self.find(id_path, required=True)
        if get_status(element) is Status.OWNED:
            raise CacheError(f"cannot evict owned node {node_id(element)}")
        for descendant in element.descendants():
            if get_status(descendant, default=None) is Status.OWNED:
                raise CacheError(
                    f"cannot evict {node_id(element)}: descendant "
                    f"{node_id(descendant)} is owned here"
                )
        # Unregister under the element's *canonical* path, not the
        # caller's spelling: find() also accepts degenerate paths (e.g.
        # a (tag, None) hop resolved by the linear fallback), whose
        # spelling is not an index key.  If the element is not indexed
        # under its canonical path either (duplicated sibling ids), stop
        # maintaining incrementally and let the next access rebuild.
        path = tuple(id_path_of(element))
        if self._index.get(path) is not element:
            self._invalidate_index()
        if keep_ids:
            dropped = list(non_idable_children(element))
            if self._content_carries_ids(dropped):
                self._invalidate_index()
            for child in dropped:
                element.remove(child)
            for child in idable_children(element):
                self._unregister_descendants(child, path + (node_id(child),))
                self._demote_to_stub(child)
            set_status(element, Status.ID_COMPLETE)
        else:
            self._unregister_descendants(element, path)
            self._demote_to_stub(element)
        self.stats["evictions"] += 1
        self._mark_index_current()
        self._journal_record("evict", path=self._journal_path(path),
                             keep_ids=bool(keep_ids))
        return element

    def evict_all_cached(self):
        """Evict every cached (``complete``) node that can be evicted.

        Owned data, and any subtree containing owned data, stays.  Used
        by experiments that control cache hit ratios.  Returns the
        number of nodes evicted.
        """
        self._ensure_index()
        evicted = 0
        stack = [(self.root, (node_id(self.root),))]
        while stack:
            element, path = stack.pop()
            status = get_status(element)
            if status is Status.COMPLETE:
                has_owned_below = any(
                    get_status(d) is Status.OWNED
                    for d in element.descendants()
                )
                if not has_owned_below:
                    self._unregister_descendants(element, path)
                    self._demote_to_stub(element)
                    self.stats["evictions"] += 1
                    evicted += 1
                    continue
            stack.extend(
                (child, path + (node_id(child),))
                for child in idable_children(element)
            )
        self._mark_index_current()
        self._journal_record("evict_all")
        return evicted

    def _demote_to_stub(self, element):
        """Strip *element* to a bare ID stub.

        Callers are responsible for unregistering any IDable
        descendants from the index first.
        """
        element.clear_children()
        for name in list(element.attrib):
            if name != "id":
                element.delete_attribute(name)
        set_status(element, Status.INCOMPLETE)

    # ------------------------------------------------------------------
    # Ownership transitions (used by the migration protocol)
    # ------------------------------------------------------------------
    def mark_owned(self, id_path):
        """Promote a complete node to owned (migration step 3, new owner)."""
        self._ensure_index()
        element = self.find(id_path, required=True)
        if not get_status(element).has_local_information:
            raise CoreError(
                f"cannot take ownership of {node_id(element)}: local "
                "information is not stored (fetch it first)"
            )
        set_status(element, Status.OWNED)
        self._mark_index_current()  # status flips keep the node set
        self._journal_record(
            "mark_owned", path=self._journal_path(id_path_of(element)))
        return element

    def release_ownership(self, id_path):
        """Demote an owned node to complete (migration step 3, old owner)."""
        self._ensure_index()
        element = self.find(id_path, required=True)
        if get_status(element) is not Status.OWNED:
            raise CoreError(f"{node_id(element)} is not owned here")
        set_status(element, Status.COMPLETE)
        self._mark_index_current()
        self._journal_record(
            "release_ownership",
            path=self._journal_path(id_path_of(element)))
        return element

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path):
        """Write the site fragment (statuses, timestamps and all) to a
        file, so an organizing agent can restart from disk."""
        from repro.xmlkit.serializer import write_file

        write_file(self.root, path, pretty=True)

    @classmethod
    def load(cls, path, clock=None, site_id=None):
        """Restore a database previously written by :meth:`save`."""
        from repro.xmlkit.parser import parse_file

        document = parse_file(path)
        return cls(document.root, clock=clock, site_id=site_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self):
        """A compact status summary, for debugging and tests."""
        self._ensure_index()
        lines = []
        for path, element in self._index.items():
            status = get_status(element)
            stamp = get_timestamp(element)
            suffix = f" t={stamp:.0f}" if stamp is not None else ""
            lines.append(f"{format_id_path(path)} [{status.value}]{suffix}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"SensorDatabase(site={self.site_id!r}, root={node_id(self.root)}, "
            f"nodes={self.size()})"
        )
