"""Wire-format answers: cacheable fragments exchanged between sites.

Every inter-site answer in this system is a *generalized* fragment
(Section 3.3): rather than the bare XPath result, a site returns the
smallest superset of the answer that satisfies the cache invariants

* **(C1)** the fragment is a union of local informations and local ID
  informations of document nodes, and
* **(C2)** whenever it contains (ID) information for a node it also
  contains the local ID information of the node's parent (hence of all
  ancestors).

Such a fragment is rooted at the global document root and can be merged
into any site database while preserving invariants I1/I2 -- this is
what makes the paper's aggressive, partial-match caching sound.  The
receiving site re-extracts the user-visible answer by evaluating the
original query over the merged data.

Statuses are rewritten for the receiver: the sender's ``owned`` and
``complete`` nodes arrive as ``complete``, ID-only nodes as
``id-complete``/``incomplete``.

The paper splices subquery answers into ``asksubquery`` placeholders
inside an annotated result document; because our wire fragments are
root-rooted, splicing is simply a merge, and the placeholder metadata
travels alongside the fragment as :class:`Subquery` records.
"""

from repro.core.errors import CoreError
from repro.core.idable import (
    id_path_of,
    id_stub,
    idable_children,
    node_id,
    non_idable_children,
)
from repro.core.status import (
    Status,
    get_status,
    get_timestamp,
    set_status,
    set_timestamp,
)


class Subquery:
    """A pending subquery: what to ask, where it is anchored, and why.

    ``consumed`` records how many pattern items the anchor path has
    satisfied and ``descendant_gap``/``subtree`` describe the residual
    shape; together they let the gather driver recognize when a newly
    emitted subquery is *subsumed* by one already answered (its data,
    if it existed, would have arrived in the earlier generalized
    answer), so authoritative answers are never re-asked in narrower
    form.
    """

    __slots__ = ("query", "anchor_path", "reason", "scalar", "consumed",
                 "descendant_gap", "subtree")

    # Reasons mirror the QEG cases of Section 3.5 / 4.
    INCOMPLETE = "incomplete"            # only the node's ID is stored
    ID_COMPLETE = "id-complete"          # local information missing
    UNSEPARABLE = "unseparable-predicates"
    STALE = "stale-cache"                # consistency predicate failed
    MISSING_SUBTREE = "missing-subtree"  # result subtree partly absent
    NESTED_FETCH = "nested-fetch"        # nesting depth > 0 collect point
    NESTED_PROBE = "nested-probe"        # boolean probe strategy

    def __init__(self, query, anchor_path, reason, scalar=False,
                 consumed=None, descendant_gap=False, subtree=False):
        self.query = query
        self.anchor_path = tuple(tuple(entry) for entry in anchor_path)
        self.reason = reason
        self.scalar = scalar
        self.consumed = consumed
        self.descendant_gap = descendant_gap
        self.subtree = subtree

    def __repr__(self):
        kind = "scalar " if self.scalar else ""
        return f"Subquery({kind}{self.query!r}, reason={self.reason})"

    def __eq__(self, other):
        return isinstance(other, Subquery) and self.query == other.query \
            and self.scalar == other.scalar

    def __hash__(self):
        return hash((self.query, self.scalar))


class AnswerBuilder:
    """Builds a wire-format fragment from a site database.

    The builder lazily materializes the root path of every included
    node with local ID information (satisfying C2) and marks statuses
    from the receiver's point of view.
    """

    def __init__(self, database):
        self.database = database
        self.root = None
        self._mapping = {}  # id(db element) -> answer element

    @property
    def is_empty(self):
        return self.root is None

    # ------------------------------------------------------------------
    def _ensure(self, element):
        """Answer-side element for *element*, creating ancestors as needed."""
        key = id(element)
        if key in self._mapping:
            return self._mapping[key]
        chain = element.path_from_root()
        if self.root is None:
            top = chain[0]
            self.root = id_stub(top)
            set_status(self.root, Status.INCOMPLETE)
            self._mapping[id(top)] = self.root
        current = self._mapping[id(chain[0])]
        for db_node in chain[1:]:
            key = id(db_node)
            if key in self._mapping:
                current = self._mapping[key]
                continue
            identifier = node_id(db_node)
            found = None
            for child in current.element_children(identifier[0]):
                if child.id == identifier[1]:
                    found = child
                    break
            if found is None:
                found = id_stub(db_node)
                set_status(found, Status.INCOMPLETE)
                current.append(found)
            self._mapping[key] = found
            current = found
        return current

    def _upgrade_status(self, answer_element, status):
        if get_status(answer_element).rank < status.rank:
            set_status(answer_element, status)

    # ------------------------------------------------------------------
    def include_id_information(self, element):
        """Include the local ID information of *element* (pass-through node).

        The sender must itself hold at least the node's local ID
        information (guaranteed by I2 for any node it stores data
        below).
        """
        if not get_status(element).has_id_information:
            raise CoreError(
                f"cannot include ID information of {node_id(element)}: "
                f"sender only has status {get_status(element).value}"
            )
        self.include_ancestors(element)
        target = self._ensure(element)
        self._upgrade_status(target, Status.ID_COMPLETE)
        existing = {node_id(c) for c in idable_children(target)}
        for child in idable_children(element):
            if node_id(child) not in existing:
                stub = id_stub(child)
                set_status(stub, Status.INCOMPLETE)
                target.append(stub)
        return target

    def include_ancestors(self, element):
        """Include local ID information of every proper ancestor (C2)."""
        for ancestor in element.ancestors():
            self.include_id_information(ancestor)

    def include_local_information(self, element):
        """Include the full local information of *element*.

        The receiver records the node as ``complete`` (a cached copy),
        regardless of whether the sender owned it.
        """
        status = get_status(element)
        if not status.has_local_information:
            raise CoreError(
                f"cannot include local information of {node_id(element)}: "
                f"sender only has status {status.value}"
            )
        self.include_ancestors(element)
        target = self._ensure(element)
        # Attributes (system status replaced by the receiver-view one).
        for name, value in element.attrib.items():
            if name != "status":
                target.set(name, value)
        set_status(target, Status.COMPLETE)
        stamp = get_timestamp(element)
        if stamp is not None:
            set_timestamp(target, stamp)
        # Non-IDable content, replacing whatever scaffolding was there.
        for child in list(non_idable_children(target)):
            target.remove(child)
        for child in non_idable_children(element):
            target.append(child.copy())
        # Child ID stubs.
        existing = {node_id(c) for c in idable_children(target)}
        for child in idable_children(element):
            if node_id(child) not in existing:
                stub = id_stub(child)
                set_status(stub, Status.INCOMPLETE)
                target.append(stub)
        return target

    def include_subtree(self, element, on_missing=None):
        """Include local information of *element* and all its descendants.

        XPath answers are whole subtrees, so a result node drags in the
        local information of every IDable node beneath it.  For
        descendants whose local information the sender lacks,
        *on_missing(descendant)* is invoked (the QEG walker emits a
        subquery there); with no callback the gap is silently included
        as ID-only data.
        """
        stack = [element]
        while stack:
            node = stack.pop()
            status = get_status(node)
            if status.has_local_information:
                self.include_local_information(node)
                stack.extend(idable_children(node))
            else:
                if status.has_id_information:
                    self.include_id_information(node)
                if on_missing is not None:
                    on_missing(node)

    # ------------------------------------------------------------------
    def build(self):
        """The finished fragment (or ``None`` when nothing was included)."""
        return self.root


def subquery_for_subtree(element):
    """The subquery fetching everything below *element* (by its ID path)."""
    from repro.core.subquery import render_id_path_query

    path = id_path_of(element)
    return Subquery(render_id_path_query(path), path,
                    Subquery.MISSING_SUBTREE, subtree=True)
