"""Query-Evaluate-Gather (QEG), the paper's core algorithm (Section 3.5).

Given an XPATH query and a site's document fragment, QEG determines

1. which data in the local fragment is part of the query result, and
2. how to gather the missing parts,

in a single pass over the fragment, driven entirely by the per-node
``status`` tags.  The output is a generalized, cacheable answer
fragment (see :mod:`repro.core.answer`) plus a list of
:class:`~repro.core.answer.Subquery` records describing exactly which
remote IDable nodes must be contacted -- the paper's ``asksubquery``
placeholders.

The walker treats the query's main path as a pattern of child steps
with optional ``//`` gaps and simulates it NFA-style: each stored node
carries the set of pattern positions it has matched, so a node can
simultaneously be an intermediate match and sit inside a ``//`` scan.

Per-node behaviour matches the four status cases of Section 3.5:

``incomplete``
    evaluate the id-only predicates P_id if separable; on success the
    rest of the query becomes a subquery (we cannot even enumerate the
    node's children);
``id-complete``
    P_id can be checked and recursion can continue through IDable
    children; a subquery is needed when the node's local information is
    required (result region, non-id predicates, or non-IDable content);
``owned``
    everything is evaluated locally; consistency predicates are ignored
    because the owner is freshest;
``complete``
    like owned, but consistency predicates are honoured and a stale
    copy turns into a subquery to the owner.

Nesting depth > 0 (Section 4) is handled by either of two strategies:

``fetch-subtree`` (the paper's implemented approach)
    stop at the earliest tag referenced by a nested predicate, fetch
    the whole subtree below it, then evaluate the remainder locally;
``boolean-probe`` (the paper's proposed future approach)
    fire ``boolean(...)`` probes that evaluate nested predicates
    remotely, avoiding the bulk fetch.
"""

from repro.core.answer import AnswerBuilder, Subquery
from repro.core.lru import LRUCache
from repro.core.consistency import strip_consistency_predicates
from repro.core.errors import UnsupportedDistributedQueryError
from repro.core.semcache import canonicalize_expression
from repro.core.idable import (
    id_path_of,
    idable_children,
    lowest_idable_ancestor_or_self,
)
from repro.core.status import Status, get_status
from repro.core.subquery import (
    render_boolean_probe,
    render_id_path_query,
    render_residual_query,
)
from repro.xmlkit.nodes import Element, Text
from repro.xpath import parser as xpath_parser
from repro.xpath.analysis import (
    REF_ID,
    classify_predicate,
    split_predicates,
)
from repro.xpath.ast import (
    BinaryOperation,
    LocationPath,
    NameTest,
    NodeTypeTest,
    Step,
    iter_location_paths,
)
from repro.xpath.errors import XPathError
from repro.xpath.evaluator import Evaluator
from repro.xpath.types import to_boolean

FETCH_SUBTREE = "fetch-subtree"
BOOLEAN_PROBE = "boolean-probe"

#: Generalization levels for subqueries (Section 3.3).  "answer" fetches
#: the smallest cacheable superset of the answer; "aggressive" drops
#: non-id predicates from residual items so whole sibling sets are
#: fetched and later predicate queries hit the cache.
GENERALIZE_ANSWER = "answer"
GENERALIZE_AGGRESSIVE = "aggressive"

_EVALUATOR = Evaluator()


def _iter_conjuncts(expression):
    if isinstance(expression, BinaryOperation) and expression.operator == "and":
        yield from _iter_conjuncts(expression.left)
        yield from _iter_conjuncts(expression.right)
    else:
        yield expression


def _path_is_nested(path, is_idable_tag):
    """Whether a location path inside a predicate crosses IDable nodes."""
    if path.absolute:
        return True
    for step in path.steps:
        if step.axis == "attribute":
            continue
        if step.axis in ("parent", "ancestor", "ancestor-or-self"):
            return True
        if isinstance(step.node_test, NameTest):
            if step.node_test.name == "*" or is_idable_tag(step.node_test.name):
                return True
        elif step.node_test.node_type == "node" and \
                step.axis in ("descendant", "descendant-or-self"):
            return True
    return False


def _predicate_is_nested(predicate, is_idable_tag):
    return any(
        _path_is_nested(path, is_idable_tag)
        for path in iter_location_paths(predicate)
    )


def _max_upward_levels(predicate):
    deepest = 0
    for path in iter_location_paths(predicate):
        if path.absolute:
            return 999
        levels = 0
        for step in path.steps:
            if step.axis == "parent":
                levels += 1
            elif step.axis in ("ancestor", "ancestor-or-self"):
                levels = 999
                break
            else:
                break
        deepest = max(deepest, levels)
    return deepest


class PatternItem:
    """One named child step of the query's main path."""

    __slots__ = ("step", "descendant", "plain_predicates", "nested_predicates",
                 "split", "residual_predicates")

    def __init__(self, step, descendant, is_idable_tag):
        self.step = step
        self.descendant = descendant
        self.nested_predicates = [
            p for p in step.predicates if _predicate_is_nested(p, is_idable_tag)
        ]
        self.plain_predicates = [
            p for p in step.predicates
            if not _predicate_is_nested(p, is_idable_tag)
        ]
        self.split = split_predicates(self.plain_predicates)
        # Predicates to re-attach when the step turns into a subquery:
        # everything except pure id pins (the id is pinned by the path).
        residual = []
        for predicate in step.predicates:
            conjuncts = [
                c for c in _iter_conjuncts(predicate)
                if classify_predicate(c) != frozenset({REF_ID})
            ]
            if len(conjuncts) == len(list(_iter_conjuncts(predicate))):
                residual.append(predicate)
            else:
                for conjunct in conjuncts:
                    residual.append(conjunct)
        self.residual_predicates = residual

    @property
    def has_nested(self):
        return bool(self.nested_predicates)

    @property
    def generalized_predicates(self):
        """Predicates kept when the item appears in an aggressive
        (superset-fetching) subquery: id pins and freshness bounds."""
        if not self.split.separable:
            return list(self.step.predicates)
        return list(self.split.id_predicates) + \
            list(self.split.consistency_predicates)

    def test_matches(self, node):
        test = self.step.node_test
        if isinstance(node, Text):
            return isinstance(test, NodeTypeTest) and \
                test.node_type in ("text", "node")
        if isinstance(test, NameTest):
            return test.matches(node.tag)
        return test.node_type == "node"

    def unparse(self):
        return self.step.unparse()


class CompiledPattern:
    """A query compiled for distributed (QEG) evaluation."""

    def __init__(self, source, ast, items, extraction_ast, collect_index,
                 is_idable_tag):
        self.source = source
        self.ast = ast
        self.items = items
        self.extraction_ast = extraction_ast
        self.collect_index = collect_index
        self.is_idable_tag = is_idable_tag

    @property
    def has_nesting(self):
        return self.collect_index is not None

    def __repr__(self):
        return f"CompiledPattern({self.source!r})"


#: Compiled patterns for schema-less compilation, shared process-wide.
#: Schema-aware compilations are cached on the schema object instead
#: (see :class:`~repro.core.schema.HierarchySchema`), which both keeps
#: keys collision-free across schemas and lets schema evolution
#: invalidate exactly the affected entries.
PATTERN_CACHE = LRUCache(max_entries=256)


def _pattern_cache_for(schema):
    if schema is None:
        return PATTERN_CACHE
    # Duck-typed schemas without a cache simply compile every time.
    return getattr(schema, "compiled_patterns", None)


#: Process-wide counters for the two-level (raw spelling -> canonical)
#: compile-cache keying.  ``canonical_aliases`` counts spellings that
#: were answered by an existing canonical entry without recompiling --
#: each one is a compilation the raw-string key would have repeated.
PATTERN_KEY_STATS = {"canonical_aliases": 0, "canonical_compiles": 0}


def pattern_key_stats():
    """Snapshot of the canonical compile-cache keying counters."""
    return dict(PATTERN_KEY_STATS)


def compile_pattern(query, schema=None, rewrite_sugar=True, use_cache=True):
    """Compile *query* (a string or AST) for distributed evaluation.

    *schema* (a :class:`~repro.core.schema.HierarchySchema`) sharpens
    the IDable-tag knowledge used by the nesting analysis; without it,
    every element name is conservatively treated as IDable.

    String queries are served from a bounded LRU compile cache (the
    global :data:`PATTERN_CACHE`, or the schema's own cache when a
    schema is given) so repeated queries skip the parse/unparse/codegen
    path; compiled patterns are immutable and safe to share.  Pass
    ``use_cache=False`` to force a fresh compilation.

    Cache keys are **two-level**: the exact source string is the fast
    path (no parse at all on a repeat), and on a raw miss the query is
    canonicalized (``repro.core.semcache``) and checked again under its
    canonical spelling -- whitespace, predicate-order, and sugar
    variants of one query therefore share a single CompiledPattern (the
    raw spelling is aliased to it for next time) and emit byte-identical
    subqueries.  With ``rewrite_sugar=False`` the raw AST semantics are
    wanted verbatim, so no canonicalization is applied.
    """
    cache = None
    cache_key = None
    if use_cache and isinstance(query, str):
        cache = _pattern_cache_for(schema)
        if cache is not None:
            cache_key = (query, rewrite_sugar)
            cached = cache.get(cache_key)
            if cached is not None:
                return cached
    if isinstance(query, str):
        source = query
        ast = xpath_parser.parse(query)
    else:
        ast = query
        source = ast.unparse()
    if rewrite_sugar:
        ast = canonicalize_expression(ast)  # includes the sugar rewrite
        source = ast.unparse()
        if cache is not None and cache_key is not None:
            canonical_key = (source, rewrite_sugar)
            if canonical_key != cache_key:
                cached = cache.get(canonical_key)
                if cached is not None:
                    # Alias this spelling so its next use is a raw hit.
                    cache.put(cache_key, cached)
                    PATTERN_KEY_STATS["canonical_aliases"] += 1
                    return cached
    if not isinstance(ast, LocationPath) or not ast.absolute:
        raise UnsupportedDistributedQueryError(
            "distributed queries must be absolute location paths; wrap "
            "scalar expressions in boolean()/count() at the agent level"
        )
    if schema is not None:
        is_idable_tag = schema.is_idable_tag
    else:
        is_idable_tag = lambda tag: True  # noqa: E731 - conservative default

    items = []
    pending_descendant = False
    for step in ast.steps:
        if (
            step.axis == "descendant-or-self"
            and isinstance(step.node_test, NodeTypeTest)
            and step.node_test.node_type == "node"
        ):
            if step.predicates:
                raise UnsupportedDistributedQueryError(
                    "predicates on a bare // step are not supported in "
                    "distributed queries"
                )
            pending_descendant = True
            continue
        if step.axis == "self" and isinstance(step.node_test, NodeTypeTest) \
                and step.node_test.node_type == "node" and not step.predicates:
            continue
        if step.axis != "child":
            raise UnsupportedDistributedQueryError(
                f"axis {step.axis!r} is not supported on the main path of a "
                "distributed query (it is supported inside predicates)"
            )
        items.append(PatternItem(step, pending_descendant, is_idable_tag))
        pending_descendant = False
    if pending_descendant:
        raise UnsupportedDistributedQueryError(
            "a distributed query cannot end with //"
        )

    collect_index = None
    for index, item in enumerate(items):
        if item.has_nested:
            up = max(_max_upward_levels(p) for p in item.nested_predicates)
            target = max(0, index - up)
            if collect_index is None or target < collect_index:
                collect_index = target

    extraction_ast = strip_consistency_predicates(ast)
    pattern = CompiledPattern(source, ast, items, extraction_ast,
                              collect_index, is_idable_tag)
    if cache is not None:
        cache.put(cache_key, pattern)
        if rewrite_sugar:
            # Also register the canonical spelling, so every future
            # equivalent spelling aliases to this one compilation.
            canonical_key = (source, rewrite_sugar)
            if canonical_key != cache_key:
                cache.put(canonical_key, pattern)
            PATTERN_KEY_STATS["canonical_compiles"] += 1
    return pattern


class QEGResult:
    """Output of one QEG pass over a site database."""

    def __init__(self, answer, subqueries, stats):
        self.answer = answer
        self.subqueries = subqueries
        self.stats = stats

    @property
    def is_complete(self):
        """True when nothing remote is needed."""
        return not self.subqueries

    def __repr__(self):
        return (
            f"QEGResult(answer={'yes' if self.answer is not None else 'no'}, "
            f"subqueries={len(self.subqueries)})"
        )


# Match outcomes.
_MATCH = "match"
_NO = "no"
_ASK = "ask"


class _Walker:
    def __init__(self, db, pattern, now, probe_results, nesting_strategy,
                 generalization=GENERALIZE_ANSWER, observer=None):
        self.db = db
        self.pattern = pattern
        self.items = pattern.items
        self.now = now
        self.probe_results = probe_results or {}
        self.nesting_strategy = nesting_strategy
        self.aggressive = generalization == GENERALIZE_AGGRESSIVE
        self.builder = AnswerBuilder(db)
        self.subqueries = []
        #: Optional decision observer (EXPLAIN): notified of every
        #: emitted subquery and every IDable-node match verdict.
        self.observer = observer
        self._seen_subqueries = set()
        self.stats = {
            "nodes_visited": 0,
            "results_local": 0,
            "asks": 0,
            "prunes": 0,
            "probes_used": 0,
        }

    # ------------------------------------------------------------------
    def ask(self, subquery):
        if (subquery.query, subquery.scalar) not in self._seen_subqueries:
            self._seen_subqueries.add((subquery.query, subquery.scalar))
            self.subqueries.append(subquery)
            self.stats["asks"] += 1
        if self.observer is not None:
            self.observer.note_ask(subquery)

    def evaluate(self, predicates, node):
        try:
            return all(
                to_boolean(_EVALUATOR.evaluate(p, node, now=self.now))
                for p in predicates
            )
        except XPathError:
            # A predicate that cannot be evaluated on partial data is
            # treated as unsatisfied locally; the conservative paths
            # (ASK) have already been taken for nodes lacking data.
            return False

    # ------------------------------------------------------------------
    def run(self):
        root = self.db.root
        n_items = len(self.items)
        if n_items == 0:
            self._include_result(root)
            return self._finish()

        root_states = set()
        first = self.items[0]
        if first.descendant:
            root_states.add(0)
        if first.test_matches(root):
            outcome = self._match_item(root, 0)
            if outcome == _MATCH:
                root_states.add(1)
        if root_states:
            self._process(root, root_states)
        return self._finish()

    def _finish(self):
        return QEGResult(self.builder.build(), self.subqueries, self.stats)

    # ------------------------------------------------------------------
    def _process(self, element, states):
        """Continue matching below *element*, which holds *states* threads."""
        self.stats["nodes_visited"] += 1
        n_items = len(self.items)

        if n_items in states:
            self._include_result(element)
            states = {j for j in states if j < n_items}
            if not states:
                return

        # Collect-point handling for nesting depth > 0.
        if (
            self.nesting_strategy == FETCH_SUBTREE
            and self.pattern.collect_index is not None
            and (self.pattern.collect_index + 1) in states
        ):
            self._collect_and_evaluate(element)
            states = {
                j for j in states if j != self.pattern.collect_index + 1
            }
            if not states:
                return

        if isinstance(element, Text):
            return

        status = get_status(element) if _locally_idable(element) else None
        if status is Status.ID_COMPLETE:
            states = self._filter_states_for_id_complete(element, states)
            if not states:
                return

        for child in element.children:
            child_states = set()
            for j in sorted(states):
                if j >= n_items:
                    continue
                item = self.items[j]
                if item.descendant:
                    self._handle_descendant_scan(child, j, child_states)
                if item.test_matches(child):
                    outcome = self._match_item(child, j)
                    if outcome == _MATCH:
                        child_states.add(j + 1)
                        if j + 1 < n_items:
                            self._include_pass_through(child, item)
                    elif outcome == _NO:
                        self.stats["prunes"] += 1
            if child_states:
                self._process(child, child_states)

    def _include_pass_through(self, child, item):
        """Ship a matched intermediate node's information.

        At minimum the local ID information travels: that is what lets
        the asker cache *negative* knowledge ("this node has no further
        children of interest") and enables the subsumption effect of
        Section 3.3.

        When the item carried non-id predicates, the node's full local
        information travels instead -- the receiver re-derives the final
        answer by re-evaluating the query, so every attribute and value
        field a predicate touched is part of the smallest correct
        superset (Section 2's numberOfFreeSpots example).  Aggressive
        generalization always ships local information.
        """
        if isinstance(child, Text) or not _locally_idable(child):
            return
        status = get_status(child)
        predicates_touch_content = (
            not item.split.separable
            or item.split.rest_predicates
            or item.split.consistency_predicates
            or item.nested_predicates
        )
        if status.has_local_information and                 (self.aggressive or predicates_touch_content):
            self.builder.include_local_information(child)
        elif status.has_id_information:
            self.builder.include_id_information(child)

    def _handle_descendant_scan(self, child, j, child_states):
        """A // scan passes through *child*: keep the thread alive.

        If *child* is an ID-only stub, its subtree may hide matches the
        site cannot see, so the scan becomes a subquery.
        """
        if isinstance(child, Text):
            return
        if _locally_idable(child) and \
                get_status(child) is Status.INCOMPLETE:
            anchor_path = id_path_of(child)
            self.ask(Subquery(
                render_residual_query(anchor_path, [], self.items[j:],
                                      descendant_gap=True,
                                      aggressive=self.aggressive),
                anchor_path,
                Subquery.INCOMPLETE,
                consumed=j,
                descendant_gap=True,
            ))
            return
        child_states.add(j)

    def _filter_states_for_id_complete(self, element, states):
        """At an id-complete node, threads needing local content must ask.

        The node's non-IDable children are not stored, so any next item
        that could match non-IDable content turns into a subquery; next
        items naming IDable tags continue through the child ID stubs.
        """
        keep = set()
        stub_tags = {child.tag for child in idable_children(element)}
        for j in states:
            if j >= len(self.items):
                keep.add(j)
                continue
            item = self.items[j]
            test = item.step.node_test
            needs_content = True
            if isinstance(test, NameTest) and test.name != "*":
                if test.name in stub_tags or \
                        self.pattern.is_idable_tag(test.name):
                    needs_content = False
            if needs_content:
                anchor_path = id_path_of(element)
                self.ask(Subquery(
                    render_residual_query(anchor_path, [], self.items[j:],
                                          aggressive=self.aggressive),
                    anchor_path,
                    Subquery.ID_COMPLETE,
                    consumed=j,
                ))
            else:
                keep.add(j)
        return keep

    # ------------------------------------------------------------------
    def _match_item(self, node, j):
        """Decide whether *node* satisfies item *j*, notifying the
        EXPLAIN observer (if any) of the verdict on IDable nodes."""
        outcome = self._match_item_inner(node, j)
        if self.observer is not None and not isinstance(node, Text) \
                and _locally_idable(node):
            self.observer.note_decision(node, get_status(node), outcome, j)
        return outcome

    def _match_item_inner(self, node, j):
        """Decide whether *node* satisfies item *j* (the four status cases)."""
        item = self.items[j]
        if isinstance(node, Text):
            return _MATCH if not item.step.predicates else (
                _MATCH if self.evaluate(item.step.predicates, node) else _NO
            )

        in_fetch_mode = (
            self.nesting_strategy == FETCH_SUBTREE
            and self.pattern.collect_index is not None
        )
        if item.has_nested and not in_fetch_mode:
            verdict = self._resolve_nested(node, item, j)
            if verdict == "pending":
                return _ASK  # probes emitted; retried next round
            if not verdict:
                return _NO
        split = item.split
        is_result_item = (j + 1) == len(self.items)

        if not _locally_idable(node):
            # Non-IDable content: physically present, so everything is
            # evaluable; consistency follows the enclosing IDable node.
            effective = self.db.effective_status(node)
            checks = split.id_predicates + split.rest_predicates
            if not self.evaluate(checks, node):
                return _NO
            if effective is Status.COMPLETE and split.consistency_predicates \
                    and not self.evaluate(split.consistency_predicates, node):
                return self._ask_stale_non_idable(node, j)
            return _MATCH

        status = get_status(node)

        if status is Status.OWNED:
            checks = split.id_predicates + split.rest_predicates
            return _MATCH if self.evaluate(checks, node) else _NO

        if status is Status.COMPLETE:
            if not split.separable:
                return self._ask_residual(node, item, j,
                                          Subquery.UNSEPARABLE)
            if not self.evaluate(split.id_predicates + split.rest_predicates,
                                 node):
                return _NO
            if split.consistency_predicates and \
                    not self.evaluate(split.consistency_predicates, node):
                return self._ask_residual(node, item, j, Subquery.STALE)
            return _MATCH

        if status is Status.ID_COMPLETE:
            if not split.separable:
                return self._ask_residual(node, item, j, Subquery.UNSEPARABLE)
            if not self.evaluate(split.id_predicates, node):
                return _NO
            if split.rest_predicates or split.consistency_predicates or \
                    is_result_item:
                return self._ask_residual(node, item, j, Subquery.ID_COMPLETE)
            return _MATCH

        # status INCOMPLETE: only the ID is known.
        if not split.separable:
            return self._ask_residual(node, item, j, Subquery.UNSEPARABLE)
        if not self.evaluate(split.id_predicates, node):
            return _NO
        return self._ask_residual(node, item, j, Subquery.INCOMPLETE)

    def _ask_residual(self, node, item, j, reason):
        anchor_path = id_path_of(node)
        if self.aggressive and item.split.separable:
            extra = list(item.split.consistency_predicates)
        else:
            extra = item.residual_predicates
        self.ask(Subquery(
            render_residual_query(anchor_path, extra, self.items[j + 1:],
                                  aggressive=self.aggressive),
            anchor_path,
            reason,
            consumed=j + 1,
        ))
        return _ASK

    def _ask_stale_non_idable(self, node, j):
        anchor = lowest_idable_ancestor_or_self(node)
        anchor_path = id_path_of(anchor)
        self.ask(Subquery(
            render_residual_query(anchor_path, [], self.items[j:],
                                  descendant_gap=True,
                                  aggressive=self.aggressive),
            anchor_path,
            Subquery.STALE,
            consumed=j,
            descendant_gap=True,
        ))
        return _ASK

    # ------------------------------------------------------------------
    # Nesting depth > 0
    # ------------------------------------------------------------------
    def _subtree_fully_local(self, element):
        stack = [element]
        while stack:
            node = stack.pop()
            if not get_status(node).has_local_information:
                return False
            stack.extend(idable_children(node))
        return True

    def _collect_and_evaluate(self, element):
        """Fetch-subtree strategy at the collect point (Section 4)."""
        if not self._subtree_fully_local(element):
            anchor_path = id_path_of(element)
            self.ask(Subquery(render_id_path_query(anchor_path), anchor_path,
                              Subquery.NESTED_FETCH, subtree=True))
            return
        # All data below is local: evaluate the rest of the query with
        # the plain evaluator, relative to this node.
        k = self.pattern.collect_index
        residual_steps = []
        item_k = self.items[k]
        if item_k.nested_predicates:
            residual_steps.append(
                Step("self", NodeTypeTest("node"),
                     list(item_k.nested_predicates))
            )
        for item in self.items[k + 1:]:
            if item.descendant:
                residual_steps.append(Step("descendant-or-self",
                                           NodeTypeTest("node")))
            residual_steps.append(Step("child", item.step.node_test,
                                       list(item.step.predicates)))
        residual = LocationPath(absolute=False, steps=residual_steps)
        try:
            matches = _EVALUATOR.evaluate(residual, element, now=self.now)
        except XPathError:
            matches = []
        for match in matches if isinstance(matches, list) else []:
            if isinstance(match, Text):
                match = match.parent
            if isinstance(match, Element):
                self._include_result(match)
                self.stats["results_local"] += 1

    def _resolve_nested(self, node, item, j):
        """Boolean-probe strategy: resolve nested predicates at *node*.

        Returns ``True`` when all nested predicates are known to hold
        (locally or via probe answers), ``False`` when one is known to
        fail, and ``"pending"`` after emitting probes whose answers are
        not yet available.
        """
        if not _locally_idable(node):
            return self.evaluate(item.nested_predicates, node)
        if self._subtree_fully_local(node):
            return self.evaluate(item.nested_predicates, node)
        anchor_path = id_path_of(node)
        all_known = True
        verdict = True
        for predicate in item.nested_predicates:
            probe = render_boolean_probe(anchor_path, predicate)
            if probe in self.probe_results:
                self.stats["probes_used"] += 1
                verdict = verdict and bool(self.probe_results[probe])
            else:
                self.ask(Subquery(probe, anchor_path, Subquery.NESTED_PROBE,
                                  scalar=True))
                all_known = False
        if not all_known:
            return "pending"
        # When the verdict is negative the node is pruned; otherwise the
        # walk continues and deeper match attempts ask for any data that
        # is still missing.
        return verdict

    # ------------------------------------------------------------------
    def _include_result(self, element):
        if isinstance(element, Text):
            element = element.parent
        anchor = lowest_idable_ancestor_or_self(element)
        self.builder.include_ancestors(anchor)
        if anchor is element:
            self.builder.include_subtree(
                element,
                on_missing=self._ask_missing_subtree,
            )
        else:
            # Generalized answer: the smallest cacheable superset of a
            # non-IDable result is its enclosing node's local information.
            if get_status(anchor).has_local_information:
                self.builder.include_local_information(anchor)
            else:
                self._ask_missing_subtree(anchor)
        self.stats["results_local"] += 1

    def _ask_missing_subtree(self, element):
        anchor_path = id_path_of(element)
        self.ask(Subquery(render_id_path_query(anchor_path), anchor_path,
                          Subquery.MISSING_SUBTREE, subtree=True))


def _locally_idable(element):
    if isinstance(element, Text):
        return False
    if element.attrib.get("id") is None:
        return False
    parent = element.parent
    if parent is None:
        return True
    count = sum(
        1
        for sibling in parent.element_children(element.tag)
        if sibling.attrib.get("id") == element.attrib.get("id")
    )
    return count == 1


def run_qeg(db, pattern, now=None, probe_results=None,
            nesting_strategy=FETCH_SUBTREE,
            generalization=GENERALIZE_ANSWER, observer=None):
    """Run one QEG pass of *pattern* over the site database *db*.

    *now* is the query's clock reading for consistency predicates;
    *probe_results* maps probe query strings to boolean answers
    gathered in earlier rounds (boolean-probe strategy only);
    *generalization* picks how far subqueries over-fetch for the cache;
    *observer* (see :class:`repro.obs.explain.ExplainObserver`)
    receives every emitted subquery and per-IDable-node verdict --
    the EXPLAIN hook, ``None`` (free) outside explain runs.
    """
    if isinstance(pattern, str):
        pattern = compile_pattern(pattern)
    walker = _Walker(db, pattern, now, probe_results, nesting_strategy,
                     generalization=generalization, observer=observer)
    return walker.run()
