"""IDable nodes, IDs, ID paths, and local (ID) information.

Implements Definitions 3.1 and 3.2 of the paper:

* An **IDable node** has an ``id`` unique among its same-tag siblings
  and an IDable parent; the document root is IDable.
* The **local information** of an IDable node comprises its attributes,
  its non-IDable children (with their whole subtrees) and the IDs of
  its IDable children.
* The **local ID information** is the node's own ID plus the IDs of its
  IDable children.

The fragments corresponding to local informations form a nearly
disjoint partitioning of the document, overlapping only in the IDs of
the IDable nodes -- the property all partitioning and caching in the
system rests on.
"""

from repro.core.errors import UnknownNodeError
from repro.core.status import INTERNAL_ATTRIBUTES, STATUS_ATTRIBUTE
from repro.xmlkit.nodes import Element


def node_id(element):
    """The ID of a node: its ``(element name, id attribute)`` pair."""
    return (element.tag, element.attrib.get("id"))


def is_idable(element):
    """Whether *element* is an IDable node (Definition 3.1).

    The root of a document is IDable.  A non-root element is IDable if
    it has an ``id`` unique among same-tag siblings and its parent is
    IDable.
    """
    current = element
    while current.parent is not None:
        if not _locally_idable(current):
            return False
        current = current.parent
    return True


def _locally_idable(element):
    identifier = element.attrib.get("id")
    if identifier is None:
        return False
    parent = element.parent
    if parent is None:
        return True
    count = sum(
        1
        for sibling in parent.element_children(element.tag)
        if sibling.attrib.get("id") == identifier
    )
    return count == 1


def idable_children(element):
    """The IDable children of an (assumed IDable) *element*.

    A child is IDable here when it carries an ``id`` unique among its
    same-tag siblings.
    """
    seen = {}
    for child in element.element_children():
        identifier = child.attrib.get("id")
        if identifier is None:
            continue
        seen.setdefault((child.tag, identifier), []).append(child)
    return [members[0] for members in seen.values() if len(members) == 1]


def non_idable_children(element):
    """Children of *element* that are part of its local information."""
    idable = {id(child) for child in idable_children(element)}
    return [child for child in element.children if id(child) not in idable]


def id_path_of(element):
    """The root-to-node sequence of ``(tag, id)`` pairs identifying *element*.

    Defined for IDable nodes: each IDable node is uniquely identified
    by the IDs on its root path (Section 3.2).
    """
    return [node_id(node) for node in element.path_from_root()]


def format_id_path(id_path):
    """Human-readable rendering of an ID path, e.g. ``usRegion=NE/state=PA``."""
    return "/".join(f"{tag}={identifier}" for tag, identifier in id_path)


def find_by_id_path(root, id_path, required=False):
    """Resolve *id_path* starting at *root* (whose ID must match).

    Returns the element, or ``None`` when absent (unless *required*).
    """
    if not id_path or node_id(root) != tuple(id_path[0]):
        if required:
            raise UnknownNodeError(
                f"id path {format_id_path(id_path)} does not start at "
                f"{node_id(root)}"
            )
        return None
    current = root
    for tag, identifier in id_path[1:]:
        current = current.child(tag, id=identifier)
        if current is None:
            if required:
                raise UnknownNodeError(
                    f"id path {format_id_path(id_path)} broken at "
                    f"{tag}={identifier}"
                )
            return None
    return current


def id_stub(element, keep_status=False):
    """A bare ID element for *element*: tag + id (+ optionally status)."""
    stub = Element(element.tag)
    identifier = element.attrib.get("id")
    if identifier is not None:
        stub.set("id", identifier)
    if keep_status:
        raw = element.get(STATUS_ATTRIBUTE)
        if raw is not None:
            stub.set(STATUS_ATTRIBUTE, raw)
    return stub


def local_information(element, keep_internal=False):
    """The local information of *element* as a detached fragment.

    Contains (1) all attributes of the node, (2) all non-IDable
    children and their subtrees, and (3) ID stubs for the IDable
    children.  With ``keep_internal=False``, system attributes are
    omitted from the copy.
    """
    clone = Element(element.tag)
    for name, value in element.attrib.items():
        if keep_internal or name not in INTERNAL_ATTRIBUTES:
            clone.set(name, value)
    idable = {id(child) for child in idable_children(element)}
    for child in element.children:
        if isinstance(child, Element) and id(child) in idable:
            clone.append(id_stub(child))
        else:
            clone.append(child.copy())
    return clone


def local_id_information(element):
    """The local ID information of *element* as a detached fragment.

    Contains the node's own ID and ID stubs for its IDable children.
    """
    clone = id_stub(element)
    for child in idable_children(element):
        clone.append(id_stub(child))
    return clone


def iter_idable(root):
    """Yield every IDable node in the tree rooted at *root*, top-down.

    The root is assumed IDable (it is, by definition, when it is a
    document root).
    """
    stack = [root]
    while stack:
        element = stack.pop()
        yield element
        stack.extend(reversed(idable_children(element)))


def iter_idable_with_paths(root):
    """Yield ``(id_path, element)`` for every IDable node, top-down.

    Paths are built incrementally during one preorder traversal --
    O(nodes) total, unlike calling :func:`id_path_of` per node, which
    walks to the root each time (O(nodes x depth)).  This is both the
    fast way to enumerate paths (e.g. ``owned_paths``) and the
    from-scratch construction of the id-path index in
    :class:`~repro.core.database.SensorDatabase`.
    """
    stack = [((node_id(root),), root)]
    while stack:
        path, element = stack.pop()
        yield path, element
        stack.extend(
            (path + (node_id(child),), child)
            for child in reversed(idable_children(element))
        )


def lowest_idable_ancestor_or_self(element):
    """The element itself if IDable-in-place, else its nearest such ancestor.

    "IDable-in-place" uses the local uniqueness test; in a well-formed
    site fragment the chain of such ancestors reaches the root.
    """
    current = element
    while current.parent is not None:
        if _locally_idable(current):
            return current
        current = current.parent
    return current
