"""Subquery dispatch executors for the gather driver's fan-out.

One gather round's pending subqueries name independent remote IDable
nodes, so the round is embarrassingly parallel: an executor maps the
send function over the round's subqueries and returns the replies *in
input order*, which is what keeps gathered answers byte-identical
regardless of reply arrival order.

Two executors are provided:

:class:`ThreadedExecutor` (the default)
    dispatches a round's subqueries from short-lived worker threads so
    a round over N uncached sites costs roughly one WAN round-trip-time
    instead of N.  Fresh threads per round (rather than a shared pool)
    make nested gathers safe: a remote site whose answer requires its
    own fan-out can never starve waiting behind its caller's round.

:class:`SerialExecutor`
    evaluates in plain input order on the calling thread -- fully
    deterministic, used by tests and by the discrete-event simulator
    (which models fan-out parallelism in virtual time instead).

Executors only order *dispatch*; the gather driver always merges
replies back in subquery-emission order.
"""

import threading


class SerialExecutor:
    """Evaluate sends one at a time on the calling thread."""

    def map(self, fn, items):
        return [fn(item) for item in items]

    def __repr__(self):
        return "SerialExecutor()"


class ThreadedExecutor:
    """Evaluate sends concurrently on per-round worker threads.

    ``max_workers`` bounds the fan-out width of one round; a round
    with more subqueries than workers is served in waves as workers
    free up.  Replies come back in input order.  If any send raises,
    the remaining items still run and the exception of the
    earliest-index failing item is re-raised (matching the serial
    executor's "first failure wins" surface).
    """

    def __init__(self, max_workers=16):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def map(self, fn, items):
        items = list(items)
        if len(items) <= 1 or self.max_workers == 1:
            return [fn(item) for item in items]
        results = [None] * len(items)
        errors = [None] * len(items)
        position = {"next": 0}
        position_lock = threading.Lock()

        def worker():
            while True:
                with position_lock:
                    index = position["next"]
                    if index >= len(items):
                        return
                    position["next"] = index + 1
                try:
                    results[index] = fn(items[index])
                except BaseException as exc:  # re-raised below
                    errors[index] = exc

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(min(self.max_workers, len(items)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for error in errors:
            if error is not None:
                raise error
        return results

    def __repr__(self):
        return f"ThreadedExecutor(max_workers={self.max_workers})"


#: The process-wide default used when no executor is configured.
_DEFAULT_EXECUTOR = ThreadedExecutor()

_NAMED = {
    "thread": lambda: _DEFAULT_EXECUTOR,
    "threaded": lambda: _DEFAULT_EXECUTOR,
    "serial": SerialExecutor,
}


def resolve_executor(spec):
    """Turn an executor spec into an executor instance.

    ``None`` means the default :class:`ThreadedExecutor`; the strings
    ``"thread"``/``"threaded"`` and ``"serial"`` name the built-ins;
    anything with a ``map`` method is used as-is.
    """
    if spec is None:
        return _DEFAULT_EXECUTOR
    if isinstance(spec, str):
        try:
            return _NAMED[spec]()
        except KeyError:
            raise ValueError(
                f"unknown executor {spec!r}; expected one of "
                f"{sorted(_NAMED)} or an executor instance"
            ) from None
    if not hasattr(spec, "map"):
        raise TypeError(f"{spec!r} does not look like an executor (no .map)")
    return spec
