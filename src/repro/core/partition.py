"""Data partitioning: assigning document ownership to sites (Section 3.2).

A :class:`PartitionPlan` maps site names to sets of IDable nodes (by
ID path).  A site owns an assigned node and, implicitly, everything
below it up to the next assignment boundary -- matching how the paper's
experiments carve the hierarchy ("assign the 6 neighborhoods to 6
sites, the 2 cities to two sites, and the rest to one site").

The plan validates the paper's two ownership constraints (every node
has exactly one owner; only IDable nodes may be owned separately from
their parent -- automatic here since assignments are ID paths) and
builds each site's initial :class:`~repro.core.database.SensorDatabase`
satisfying invariants I1 and I2.
"""

from repro.core.database import SensorDatabase
from repro.core.errors import PartitionError, UnknownNodeError
from repro.core.idable import (
    find_by_id_path,
    format_id_path,
    id_path_of,
    id_stub,
    idable_children,
    iter_idable,
    node_id,
    non_idable_children,
)
from repro.core.status import Status, set_status, set_timestamp
from repro.xpath.analysis import dns_name_for_id_path


def _as_path(path):
    return tuple(tuple(entry) for entry in path)


class PartitionPlan:
    """An ownership assignment of IDable nodes to sites."""

    def __init__(self, assignments):
        """*assignments* maps site name -> iterable of ID paths."""
        self.assignments = {
            site: [_as_path(path) for path in paths]
            for site, paths in assignments.items()
        }
        self._check_disjoint()

    def _check_disjoint(self):
        seen = {}
        for site, paths in self.assignments.items():
            for path in paths:
                if path in seen and seen[path] != site:
                    raise PartitionError(
                        f"node {format_id_path(path)} assigned to both "
                        f"{seen[path]!r} and {site!r}"
                    )
                seen[path] = site

    @property
    def sites(self):
        return sorted(self.assignments)

    # ------------------------------------------------------------------
    def owner_map(self, global_root):
        """Owner of every IDable node: nearest assigned ancestor-or-self.

        Returns ``{id_path: site}``.  Raises :class:`PartitionError`
        when some node has no owner (the root is unassigned) or an
        assigned path does not exist in the document.
        """
        assigned = {}
        for site, paths in self.assignments.items():
            for path in paths:
                if find_by_id_path(global_root, path) is None:
                    raise PartitionError(
                        f"assigned node {format_id_path(path)} does not "
                        "exist in the document"
                    )
                assigned[path] = site

        owners = {}
        root_path = _as_path(id_path_of(global_root))
        if root_path not in assigned:
            raise PartitionError(
                "the document root must be assigned to a site (every node "
                "needs exactly one owner)"
            )

        def walk(element, current_owner):
            path = _as_path(id_path_of(element))
            current_owner = assigned.get(path, current_owner)
            owners[path] = current_owner
            for child in idable_children(element):
                walk(child, current_owner)

        walk(global_root, assigned[root_path])
        return owners

    # ------------------------------------------------------------------
    def build_databases(self, global_root, clocks=None, default_clock=None):
        """Build every site's initial database from the global document.

        *clocks* optionally maps site name to that site's clock
        callable.  Returns ``{site: SensorDatabase}``.
        """
        owners = self.owner_map(global_root)
        databases = {}
        for site in self.assignments:
            clock = (clocks or {}).get(site, default_clock)
            databases[site] = build_site_database(
                global_root, site, owners, clock=clock
            )
        return databases

    def dns_records(self, global_root, service="parking",
                    zone="intel-iris.net"):
        """DNS entries for every IDable node: ``{dns_name: owner site}``."""
        owners = self.owner_map(global_root)
        return {
            dns_name_for_id_path(path, service=service, zone=zone): site
            for path, site in owners.items()
        }

    def __repr__(self):
        counts = {site: len(paths) for site, paths in self.assignments.items()}
        return f"PartitionPlan({counts})"


def build_site_database(global_root, site, owner_map, clock=None):
    """The initial fragment for *site* under *owner_map* (I1 + I2).

    The fragment holds the local information of every node the site
    owns (status ``owned``, timestamped) and the local ID information
    of all their ancestors (status ``id-complete``); IDable children of
    owned nodes that are owned elsewhere appear as ``incomplete``
    stubs.
    """
    root_stub = id_stub(global_root)
    set_status(root_stub, Status.INCOMPLETE)
    db = SensorDatabase(root_stub, clock=clock, site_id=site)

    for element in iter_idable(global_root):
        path = _as_path(id_path_of(element))
        if owner_map.get(path) == site:
            _materialize_owned(db, element)
    return db


def _materialize_owned(db, source):
    """Copy *source*'s local information into *db* as an owned node."""
    target = _ensure_ancestors(db, source)
    for name, value in source.attrib.items():
        if name != "status":
            target.set(name, value)
    for child in list(non_idable_children(target)):
        target.remove(child)
    for child in non_idable_children(source):
        target.append(child.copy())
    existing = {node_id(c) for c in idable_children(target)}
    for child in idable_children(source):
        if node_id(child) not in existing:
            stub = id_stub(child)
            set_status(stub, Status.INCOMPLETE)
            target.append(stub)
    set_status(target, Status.OWNED)
    set_timestamp(target, db.clock())


def _ensure_ancestors(db, source):
    """Materialize *source*'s root path in *db* with local ID info (I2)."""
    chain = source.path_from_root()
    if node_id(chain[0]) != node_id(db.root):
        raise UnknownNodeError(
            f"document root mismatch: {node_id(chain[0])} vs "
            f"{node_id(db.root)}"
        )
    target = db.root
    for depth, source_node in enumerate(chain):
        if depth > 0:
            identifier = node_id(source_node)
            found = target.child(identifier[0], id=identifier[1])
            if found is None:
                found = id_stub(source_node)
                set_status(found, Status.INCOMPLETE)
                target.append(found)
            target = found
        is_last = depth == len(chain) - 1
        if not is_last and not _status_at_least_id_complete(target):
            _fill_id_information(target, source_node)
    return target


def _status_at_least_id_complete(element):
    from repro.core.status import get_status

    return get_status(element).has_id_information


def _fill_id_information(target, source_node):
    existing = {node_id(c) for c in idable_children(target)}
    for child in idable_children(source_node):
        if node_id(child) not in existing:
            stub = id_stub(child)
            set_status(stub, Status.INCOMPLETE)
            target.append(stub)
    set_status(target, Status.ID_COMPLETE)
