"""Per-node storage status, as defined in Section 3.2 of the paper.

Every IDable node in a site database carries a ``status`` attribute
summarizing what the site stores for it:

``owned``
    The site owns the node: it has the node's local information and at
    least the local ID information of every ancestor (I1 + I2).
``complete``
    Same stored information as ``owned``, but the node is owned
    elsewhere (i.e. this is a cached copy).
``id-complete``
    The site has the node's local ID information (its ID and the IDs
    of its IDable children) but not its full local information.
``incomplete``
    The site has only the node's ID.

Non-IDable nodes implicitly share the status of their lowest IDable
ancestor.
"""

import enum

from repro.core.errors import CoreError

STATUS_ATTRIBUTE = "status"
TIMESTAMP_ATTRIBUTE = "timestamp"

#: Attributes managed by the system, stripped from user-visible answers.
#: Timestamps are deliberately *not* internal: queries may predicate on
#: them (query-based consistency).
INTERNAL_ATTRIBUTES = frozenset({STATUS_ATTRIBUTE})


class Status(enum.Enum):
    """Storage status of an IDable node at a site."""

    OWNED = "owned"
    COMPLETE = "complete"
    ID_COMPLETE = "id-complete"
    INCOMPLETE = "incomplete"

    @property
    def has_local_information(self):
        """Whether the full local information of the node is stored."""
        return self in (Status.OWNED, Status.COMPLETE)

    @property
    def has_id_information(self):
        """Whether at least the local ID information is stored."""
        return self is not Status.INCOMPLETE

    @property
    def rank(self):
        """Information ordering: owned > complete > id-complete > incomplete."""
        return _RANKS[self]


_RANKS = {
    Status.OWNED: 3,
    Status.COMPLETE: 2,
    Status.ID_COMPLETE: 1,
    Status.INCOMPLETE: 0,
}


def parse_status(value):
    """Parse a status attribute value, raising on junk."""
    for status in Status:
        if status.value == value:
            return status
    raise CoreError(f"invalid status attribute value: {value!r}")


def get_status(element, default=Status.INCOMPLETE):
    """The status recorded on *element* (not climbing to ancestors)."""
    raw = element.get(STATUS_ATTRIBUTE)
    if raw is None:
        return default
    return parse_status(raw)


def set_status(element, status):
    """Record *status* on *element*."""
    element.set(STATUS_ATTRIBUTE, status.value)


def get_timestamp(element):
    """The node's data timestamp (seconds), or ``None``."""
    raw = element.get(TIMESTAMP_ATTRIBUTE)
    if raw is None:
        return None
    return float(raw)


def set_timestamp(element, when):
    """Record the data timestamp on *element*."""
    element.set(TIMESTAMP_ATTRIBUTE, repr(float(when)))


def strip_internal_attributes(element):
    """Remove system-managed attributes from *element*'s subtree, in place.

    Returns *element* for chaining.  Used when handing answers back to
    the user so that bookkeeping never leaks.
    """
    for node in element.iter():
        for name in INTERNAL_ATTRIBUTES:
            node.delete_attribute(name)
    return element
