"""A small thread-safe bounded LRU cache.

Shared by the pattern-compile cache (:mod:`repro.core.qeg`) and other
bounded lookaside stores.  Entries are evicted least-recently-used
first once ``max_entries`` is exceeded; hits refresh recency.  All
operations take an internal lock so cached objects can be shared by
the parallel gather fan-out.
"""

import threading
from collections import OrderedDict


class LRUCache:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, max_entries=256):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.stats = {"hits": 0, "misses": 0, "evictions": 0}

    def get(self, key, default=None):
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats["misses"] += 1
                return default
            self._entries.move_to_end(key)
            self.stats["hits"] += 1
            return value

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats["evictions"] += 1

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def __repr__(self):
        return (f"LRUCache({len(self)}/{self.max_entries}, "
                f"hits={self.stats['hits']}, misses={self.stats['misses']}, "
                f"evictions={self.stats['evictions']})")
