"""Checkers for the paper's storage and cache invariants.

* **(I1)** each site stores the local information of the nodes it owns;
* **(I2)** if (at least) the ID of a node is stored, the local ID
  information of its parent is also stored (hence of all ancestors);
* **(C1)/(C2)** cached fragments are unions of local (ID) informations
  closed under "parent's local ID information".

These functions return lists of human-readable violation strings
(empty = clean) so tests and property checks can assert precisely.
"""

from repro.core.idable import (
    find_by_id_path,
    format_id_path,
    id_path_of,
    idable_children,
    node_id,
    non_idable_children,
)
from repro.core.status import Status, get_status, get_timestamp
from repro.xmlkit.compare import canonical_form
from repro.xmlkit.nodes import Element


def _duplicate_sibling_ids(element):
    seen = set()
    duplicates = []
    for child in element.element_children():
        identifier = child.attrib.get("id")
        if identifier is None:
            continue
        key = (child.tag, identifier)
        if key in seen:
            duplicates.append(key)
        seen.add(key)
    return duplicates


def structural_violations(db):
    """Checks needing no reference document.

    * sibling IDs are unique (so ID paths resolve deterministically);
    * every stored IDable node has a parseable status;
    * a node storing more than its ID implies its parent stores local
      ID information (the structural face of I2);
    * ``incomplete`` nodes are bare stubs;
    * data-bearing nodes carry timestamps.
    """
    problems = []
    for element in db.iter_idable():
        path = format_id_path(id_path_of(element))
        for key in _duplicate_sibling_ids(element):
            problems.append(f"{path}: duplicate sibling id {key}")
        try:
            status = get_status(element)
        except Exception as exc:  # invalid attribute value
            problems.append(f"{path}: {exc}")
            continue
        parent = element.parent
        if parent is not None and status is not Status.INCOMPLETE:
            if not get_status(parent).has_id_information:
                problems.append(
                    f"{path}: stored with status {status.value} but parent "
                    "lacks local ID information (violates I2)"
                )
        if status is Status.INCOMPLETE:
            extra_attrs = set(element.attrib) - {"id", "status"}
            if extra_attrs or element.children:
                problems.append(
                    f"{path}: incomplete node is not a bare stub "
                    f"(attrs={sorted(extra_attrs)}, "
                    f"children={len(element.children)})"
                )
        if status.has_local_information and get_timestamp(element) is None:
            problems.append(f"{path}: data-bearing node has no timestamp")
    return problems


def _strip_for_compare(element):
    clone = element.copy()
    for node in clone.iter():
        node.delete_attribute("status")
        node.delete_attribute("timestamp")
    return clone


def _local_info_signature(element):
    """Canonical form of a node's local information (ids of children +
    attributes + non-IDable content), ignoring system attributes."""
    shell = Element(element.tag)
    for name, value in element.attrib.items():
        if name not in ("status", "timestamp"):
            shell.set(name, value)
    for child in non_idable_children(element):
        if isinstance(child, Element):
            shell.append(_strip_for_compare(child))
        else:
            shell.append(child.copy())
    for child in sorted(
        (node_id(c) for c in idable_children(element)), key=repr
    ):
        stub = Element(child[0])
        if child[1] is not None:
            stub.set("id", child[1])
        shell.append(stub)
    return canonical_form(shell)


def violations_against_reference(db, reference_root):
    """Content checks against the ground-truth document.

    * ``owned``/``complete`` nodes carry exactly the reference node's
      local information;
    * ``id-complete`` nodes list exactly the reference node's IDable
      children (local ID information is all-or-nothing).
    """
    problems = []
    for element in db.iter_idable():
        path = id_path_of(element)
        label = format_id_path(path)
        reference = find_by_id_path(reference_root, path)
        if reference is None:
            problems.append(f"{label}: node does not exist in the reference")
            continue
        status = get_status(element)
        if status.has_local_information:
            if _local_info_signature(element) != _local_info_signature(reference):
                problems.append(
                    f"{label}: local information differs from reference"
                )
        elif status is Status.ID_COMPLETE:
            stored = {node_id(c) for c in idable_children(element)}
            expected = {node_id(c) for c in idable_children(reference)}
            if stored != expected:
                problems.append(
                    f"{label}: id-complete node's child IDs differ from "
                    f"reference (missing={sorted(expected - stored, key=repr)}, "
                    f"extra={sorted(stored - expected, key=repr)})"
                )
    return problems


def ownership_violations(databases, owner_map):
    """Check I1 across the whole deployment.

    Every node in *owner_map* must be stored with status ``owned`` at
    its owner, and owned nowhere else.
    """
    problems = []
    for path, site in owner_map.items():
        label = format_id_path(path)
        db = databases.get(site)
        if db is None:
            problems.append(f"{label}: owner site {site!r} has no database")
            continue
        element = db.find(path)
        if element is None:
            problems.append(f"{label}: not stored at its owner {site!r} "
                            "(violates I1)")
        elif get_status(element) is not Status.OWNED:
            problems.append(
                f"{label}: stored at owner {site!r} with status "
                f"{get_status(element).value}, expected owned (violates I1)"
            )
    for site, db in databases.items():
        for element in db.owned_nodes():
            path = tuple(tuple(e) for e in id_path_of(element))
            actual_owner = owner_map.get(path)
            if actual_owner != site:
                problems.append(
                    f"{format_id_path(path)}: marked owned at {site!r} but "
                    f"the owner map says {actual_owner!r}"
                )
    return problems


def fragment_violations(fragment, reference_root=None):
    """C1/C2 checks for a wire-format answer fragment.

    The fragment must be a status-annotated tree whose every node obeys
    the structural rules; with a reference, data-bearing nodes must
    carry full local (ID) information.
    """
    from repro.core.database import SensorDatabase

    db = SensorDatabase(fragment)
    problems = structural_violations(db)
    # Wire fragments may omit timestamps only on ID-only nodes; the
    # structural check already enforces that, so nothing extra here.
    if reference_root is not None:
        problems.extend(violations_against_reference(db, reference_root))
    return problems


def validate_deployment(databases, global_root, owner_map=None):
    """All invariant checks across a set of site databases."""
    problems = []
    for site, db in databases.items():
        for problem in structural_violations(db):
            problems.append(f"[{site}] {problem}")
        for problem in violations_against_reference(db, global_root):
            problems.append(f"[{site}] {problem}")
    if owner_map is not None:
        problems.extend(ownership_violations(databases, owner_map))
    return problems
